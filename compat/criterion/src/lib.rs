//! Offline stand-in for `criterion`.
//!
//! Implements the configuration and measurement surface this workspace's
//! benches use (`criterion_group!` with `config =`, benchmark groups,
//! throughput annotation, `bench_with_input`, `Bencher::iter`). Measurement
//! is a simple calibrated wall-clock loop: enough batches to fill the
//! configured measurement time, reporting mean time per iteration and
//! throughput. No statistics, plots, or comparison to saved baselines.
//!
//! Like real criterion, passing `--test` on the command line (i.e.
//! `cargo bench -- --test`) switches to smoke mode: every benchmark
//! routine runs exactly once, with no warm-up and no timing — a fast
//! does-it-still-run check for CI.

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Whether `--test` was passed on the command line (smoke mode).
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.snapshot();
        run_benchmark(&config, name, None, f);
    }

    fn snapshot(&self) -> Config {
        Config {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        }
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// Throughput annotation: scales reported rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported in decimal units.
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id (`name/parameter`).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Per-group sample-size override (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let config = self.criterion.snapshot();
        run_benchmark(&config, &full, self.throughput, f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the routine handed to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    config: Config,
    /// Mean seconds per iteration, filled by `iter`.
    mean_seconds: f64,
}

impl Bencher {
    /// Measures `routine`, recording mean wall-clock time per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if test_mode() {
            // Smoke mode: one untimed call proves the routine still runs.
            std_black_box(routine());
            return;
        }
        // Warm up and calibrate: how many calls fit in the warm-up window?
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_calls: u64 = 0;
        while Instant::now() < warm_deadline {
            std_black_box(routine());
            warm_calls += 1;
        }
        let per_call = self.config.warm_up_time.as_secs_f64() / warm_calls.max(1) as f64;

        // Split the measurement budget into samples of equal batches.
        let budget = self.config.measurement_time.as_secs_f64();
        let samples = self.config.sample_size as u64;
        let batch = ((budget / per_call) / samples as f64).ceil().max(1.0) as u64;

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_seconds = total.as_secs_f64() / iters.max(1) as f64;
    }
}

fn run_benchmark<F>(config: &Config, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        config: config.clone(),
        mean_seconds: f64::NAN,
    };
    f(&mut bencher);
    if test_mode() {
        println!("{name:<48} ok (test mode: 1 iteration)");
        return;
    }
    let per_iter = bencher.mean_seconds;
    let rate = match throughput {
        _ if !per_iter.is_finite() || per_iter <= 0.0 => String::new(),
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.3} Melem/s", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>12.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<48} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Defines a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3));
        });
        group.finish();
    }
}
