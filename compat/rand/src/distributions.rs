//! The `Standard` distribution and uniform range sampling, following the
//! rand 0.8.5 algorithms bit-for-bit.

use crate::RngCore;

/// Types that can produce values of `T` from a bit source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full-range integers, `[0, 1)`
/// floats, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // rand 0.8: high word first.
        u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
    }
}

macro_rules! standard_small_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}

standard_small_uint!(u8, u16);

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // rand 0.8 samples usize as u64 on 64-bit targets, u32 on 32-bit.
        #[cfg(target_pointer_width = "64")]
        {
            rng.next_u64() as usize
        }
        #[cfg(not(target_pointer_width = "64"))]
        {
            rng.next_u32() as usize
        }
    }
}

macro_rules! standard_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                <Standard as Distribution<$u>>::sample(self, rng) as $t
            }
        }
    )*};
}

standard_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Sign test on the most significant bit, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // Multiply-based [0, 1) with 24 bits of precision.
        let value = rng.next_u32() >> (32 - 24);
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * value as f32
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0, 1) with 53 bits of precision.
        let value = rng.next_u64() >> (64 - 53);
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * value as f64
    }
}

/// Uniform range sampling (`Rng::gen_range`).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Range types accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types uniformly samplable from a range.
    ///
    /// The blanket `SampleRange` impls below relate the range's element
    /// type to `gen_range`'s return type the same way the real crate's
    /// generic impls do, so inference like `let x: f32 =
    /// rng.gen_range(0.5..2.0)` resolves the literal types.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform draw from `low..high`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform draw from `low..=high`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_inclusive(low, high, rng)
        }
    }

    /// 64-bit widening multiply: `(hi, lo)` of `a * b`.
    fn wmul64(a: u64, b: u64) -> (u64, u64) {
        let t = u128::from(a) * u128::from(b);
        ((t >> 64) as u64, t as u64)
    }

    /// 32-bit widening multiply.
    fn wmul32(a: u32, b: u32) -> (u32, u32) {
        let t = u64::from(a) * u64::from(b);
        ((t >> 32) as u32, t as u32)
    }

    // rand 0.8's `UniformInt::sample_single_inclusive`: widening multiply
    // with a rejection zone so the distribution is exactly uniform.
    // `$u_large` is u32 for sub-32-bit types (their zone uses the modulo
    // form), otherwise the type's own width.
    macro_rules! range_int_impl {
        // Types sampled through u32 with the small-type zone computation.
        (small: $($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low < high, "empty range in gen_range");
                    Self::sample_inclusive(low, high - 1, rng)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low <= high, "empty range in gen_range");
                    let range = (high.wrapping_sub(low) as u32).wrapping_add(1);
                    if range == 0 {
                        // The full type range: every u32 draw is acceptable.
                        return crate::Rng::gen::<$t>(rng);
                    }
                    let ints_to_reject = (u32::MAX - range + 1) % range;
                    let zone = u32::MAX - ints_to_reject;
                    loop {
                        let v: u32 = rng.next_u32();
                        let (hi, lo) = wmul32(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }
            }
        )*};
        // Types whose zone uses the leading-zeros form over their own width.
        (large: $($t:ty : $u:ty : $wmul:ident : $next:ident),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low < high, "empty range in gen_range");
                    Self::sample_inclusive(low, high - 1, rng)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low <= high, "empty range in gen_range");
                    let range = (high.wrapping_sub(low) as $u).wrapping_add(1);
                    if range == 0 {
                        return crate::Rng::gen::<$t>(rng);
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$next() as $u;
                        let (hi, lo) = $wmul(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }
            }
        )*};
    }

    range_int_impl!(small: u8, i8, u16, i16);
    range_int_impl!(large: u32: u32: wmul32: next_u32, i32: u32: wmul32: next_u32);
    range_int_impl!(large: u64: u64: wmul64: next_u64, i64: u64: wmul64: next_u64);
    #[cfg(target_pointer_width = "64")]
    range_int_impl!(large: usize: u64: wmul64: next_u64, isize: u64: wmul64: next_u64);
    #[cfg(not(target_pointer_width = "64"))]
    range_int_impl!(large: usize: u32: wmul32: next_u32, isize: u32: wmul32: next_u32);

    // rand 0.8's `UniformFloat::sample_single`: draw a mantissa into
    // [1, 2), shift to [0, 1), then scale — `res = v12 * scale + (low -
    // scale)` so FMA-capable targets fuse it exactly like the real crate.
    macro_rules! range_float_impl {
        ($(($t:ty, $bits:ty, $next:ident, $mant:expr, $exp_one:expr)),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low < high, "empty range in gen_range");
                    let mut scale = high - low;
                    loop {
                        // `$mant` mantissa bits under an exponent of 0
                        // (biased $exp_one) give a float in [1, 2).
                        let mantissa = rng.$next() >> (<$bits>::BITS as usize - $mant);
                        let value1_2 = <$t>::from_bits($exp_one | mantissa);
                        let res = value1_2 * scale + (low - scale);
                        if res < high {
                            return res;
                        }
                        // Boundary rounding pushed us to `high`; tighten the
                        // scale one ULP and retry (rand's decrease_masked).
                        scale = <$t>::from_bits(scale.to_bits() - 1);
                    }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: $t,
                    high: $t,
                    rng: &mut R,
                ) -> $t {
                    assert!(low <= high, "empty range in gen_range");
                    // rand 0.8 nudges `high` up one ULP and samples the
                    // half-open range.
                    let high_open = if high.is_finite() && high > 0.0 {
                        <$t>::from_bits(high.to_bits() + 1)
                    } else if high == 0.0 {
                        <$t>::MIN_POSITIVE
                    } else if high.is_finite() {
                        <$t>::from_bits(high.to_bits() - 1)
                    } else {
                        high
                    };
                    Self::sample_half_open(low, high_open, rng)
                }
            }
        )*};
    }

    range_float_impl!(
        (f32, u32, next_u32, 23, 127u32 << 23),
        (f64, u64, next_u64, 52, 1023u64 << 52),
    );
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use super::{Distribution, Standard};
    use crate::{Rng, RngCore};

    /// A fixed-sequence source for deterministic checks.
    struct Seq(Vec<u64>, usize);

    impl RngCore for Seq {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut r = Seq(vec![0, u64::MAX, 12345678901234567, 1 << 60], 0);
        for _ in 0..16 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Seq(vec![7, u64::MAX, 0, 991, 1 << 63, 42], 0);
        for _ in 0..32 {
            let v = (3usize..17).sample_single(&mut r);
            assert!((3..17).contains(&v));
            let w = (-1isize..=1).sample_single(&mut r);
            assert!((-1..=1).contains(&w));
            let f = (0.5f32..2.0).sample_single(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_sign_bit() {
        let mut hi = Seq(vec![u64::MAX], 0);
        let mut lo = Seq(vec![0], 0);
        assert!(<Standard as Distribution<bool>>::sample(&Standard, &mut hi));
        assert!(!<Standard as Distribution<bool>>::sample(
            &Standard, &mut lo
        ));
    }
}
