//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment cannot reach a registry, so this crate (wired in
//! through `[patch.crates-io]`) reimplements the parts of rand 0.8 the
//! workspace uses. The sampling algorithms follow rand 0.8.5 exactly —
//! `seed_from_u64`'s PCG-based seed expansion, the `Standard` distribution's
//! bit layouts, and uniform ranges via widening multiply (integers) and the
//! `[1, 2)` exponent trick (floats) — so streams drawn through this stub are
//! bit-identical to the real crate for the same underlying generator.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// A low-level source of random bits (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed (mirror of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32, exactly as rand_core
    /// 0.6's default implementation does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // rand 0.8's Bernoulli: p scaled into 64 fractional bits.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::{Distribution, Rng, RngCore, SeedableRng, Standard};
}
