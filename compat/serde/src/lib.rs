//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real serde cannot be fetched. This crate (wired
//! in through `[patch.crates-io]` in the workspace manifest) provides the
//! subset the workspace actually uses: `#[derive(Serialize, Deserialize)]`
//! on named structs, newtype structs, and enums with unit/struct variants,
//! the `#[serde(default)]` / `#[serde(default = "path")]` field attributes,
//! and exact JSON round-trips for every primitive used in the workspace
//! (including shortest-roundtrip floats, matching serde_json's
//! `float_roundtrip` behaviour).
//!
//! Unlike real serde there is no generic `Serializer`/`Deserializer`
//! abstraction: values serialize into an owned JSON [`Value`] tree, which is
//! all the workspace (always JSON, always owned) needs. The public trait
//! names and the `serde::de::DeserializeOwned` alias match real serde so
//! call sites compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod value;

pub use value::{Error, Value};

/// Types that can serialize themselves into a JSON [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape or type does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` for the `DeserializeOwned` bound used by readers.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

/// Mirror of `serde::ser` for symmetry.
pub mod ser {
    pub use crate::Serialize;
}

/// Looks up a field in an object body (first match wins, as in JSON).
pub fn get_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.parse::<$t>().map_err(|_| {
                        Error::custom(format!(
                            "invalid {} literal `{n}`",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    // Rust's float Display prints the shortest decimal that
                    // parses back to the same bits: an exact round-trip, the
                    // same guarantee serde_json's `float_roundtrip` gives.
                    Value::Number(self.to_string())
                } else {
                    // serde_json serializes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.parse::<$t>().map_err(|_| {
                        Error::custom(format!(
                            "invalid {} literal `{n}`",
                            stringify!($t)
                        ))
                    }),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| Error::custom("array length changed during collect"))
            }
            Value::Array(items) => Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected array of length {LEN}, got {}",
                        items.len()
                    ))),
                    other => Err(Error::type_mismatch("tuple array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f32, 1e-12, 3.4e38, -0.0, 123.456] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
        for x in [0.1f64, 1e-300, f64::MIN_POSITIVE, 2.5] {
            let v = x.to_value();
            assert_eq!(f64::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn tuple_and_vec_roundtrip() {
        let x: Vec<(u64, f32)> = vec![(1, 0.5), (2, -0.25)];
        let v = x.to_value();
        assert_eq!(Vec::<(u64, f32)>::from_value(&v).unwrap(), x);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&7u32.to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Number("1".into())).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
