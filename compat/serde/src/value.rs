//! The JSON value tree and error type shared by the serde/serde_json stubs.

use std::fmt;

/// An owned JSON document.
///
/// Numbers keep their literal text: serialization writes the shortest
/// round-trip `Display` form of the source number, and deserialization
/// parses that text directly into the target type, so `f32`/`f64`/`u64`
/// values survive a round-trip bit-for-bit (no intermediate `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, kept as text.
    Number(String),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object body, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array body, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string body, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| crate::get_field(o, key))
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X, got Y" shape error.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }

    /// A required struct field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}
