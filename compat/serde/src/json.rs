//! JSON text reading and writing for [`Value`].
//!
//! Lives in the `serde` stub (rather than the `serde_json` stub) so both
//! crates and the derive output share one implementation.

use crate::{Error, Value};

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 128;

/// Writes compact JSON.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Writes pretty-printed JSON with 2-space indentation (serde_json style).
pub fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                            // hex4 leaves pos after the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let s = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("invalid number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("invalid number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        Ok(Value::Number(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":"hi\n\"x\"","c":null,"d":true,"e":{}}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_compact(&v, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "tru",
            "1.2.3",
            "{\"a\" 1}",
            "nul",
            "[1]x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""A😀""#).unwrap();
        assert_eq!(v, Value::String("A😀".to_string()));
    }

    #[test]
    fn pretty_output_reparses() {
        let v = parse(r#"{"a":[1,2],"b":{"c":"d"}}"#).unwrap();
        let mut out = String::new();
        write_pretty(&v, 0, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
        assert!(out.contains('\n'));
    }
}
