//! Offline stand-in for `rand_chacha`, implementing the real ChaCha8 stream
//! cipher (RFC 8439 core with the 64-bit counter / 64-bit stream layout the
//! real crate uses).
//!
//! The keystream is the genuine ChaCha8 output — not an approximation — and
//! the word-buffering follows `rand_core::block::BlockRng` (a 64-word buffer
//! refilled four blocks at a time, `next_u64` assembled low-word-first, with
//! the same straddle behaviour at the buffer edge). Together with the rand
//! stub's faithful `seed_from_u64`, streams drawn here are bit-identical to
//! `rand_chacha 0.3` + `rand 0.8`.

use rand::{RngCore, SeedableRng};

/// Number of u32 words buffered per refill (four ChaCha blocks, matching
/// the real crate's `BUFSZ`).
const BUFFER_WORDS: usize = 64;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12, 13).
    counter: u64,
    /// Stream id (state words 14, 15); zero for seeded construction.
    stream: u64,
    /// Buffered keystream words.
    buf: [u32; BUFFER_WORDS],
    /// Next unread index into `buf`; `BUFFER_WORDS` means empty.
    index: usize,
}

impl ChaCha8Rng {
    /// Runs the ChaCha8 block function for block `counter`, writing 16
    /// keystream words.
    fn block(&self, counter: u64, out: &mut [u32]) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = counter as u32;
        x[13] = (counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;

        let mut w = x;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = w[i].wrapping_add(x[i]);
        }
    }

    /// Refills the buffer with the next four blocks.
    fn refill(&mut self) {
        let mut words = [0u32; 16];
        for b in 0..BUFFER_WORDS / 16 {
            let counter = self.counter.wrapping_add(b as u64);
            self.block(counter, &mut words);
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add((BUFFER_WORDS / 16) as u64);
        self.index = 0;
    }

    /// The stream id (always 0 for seeded construction).
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Selects an independent keystream; resets buffered output.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUFFER_WORDS;
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core::block::BlockRng::next_u64: low word first, with the
        // edge case where the pair straddles a refill.
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            u64::from(self.buf[index + 1]) << 32 | u64::from(self.buf[index])
        } else if index >= BUFFER_WORDS {
            self.refill();
            self.index = 2;
            u64::from(self.buf[1]) << 32 | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUFFER_WORDS - 1]);
            self.refill();
            self.index = 1;
            let hi = u64::from(self.buf[0]);
            hi << 32 | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // rand_core's fill_via_u32_chunks: consume whole little-endian
        // words; a trailing partial word is consumed and truncated.
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    /// Distinct blocks, counters, and streams must produce distinct
    /// keystream words (a catastrophic state-wiring bug would collide).
    #[test]
    fn blocks_counters_and_streams_differ() {
        let rng = ChaCha8Rng::from_seed([3u8; 32]);
        let (mut b0, mut b1) = ([0u32; 16], [0u32; 16]);
        rng.block(0, &mut b0);
        rng.block(1, &mut b1);
        assert_ne!(b0, b1);
        let mut other = rng.clone();
        other.set_stream(9);
        let mut s = [0u32; 16];
        other.block(0, &mut s);
        assert_ne!(b0, s);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let first: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        let mut d = ChaCha8Rng::seed_from_u64(7);
        let other: Vec<u32> = (0..8).map(|_| d.next_u32()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn mixed_width_draws_are_consistent() {
        // next_u64 must equal two next_u32 draws (low then high) when not
        // straddling a refill boundary.
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let x = a.next_u64();
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(x, hi << 32 | lo);
    }

    #[test]
    fn gen_methods_work() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let f: f32 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let n = r.gen_range(0usize..10);
        assert!(n < 10);
        let _b: bool = r.gen();
    }
}
