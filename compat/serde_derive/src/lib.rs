//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`:
//! the build environment is offline). Supports exactly the shapes this
//! workspace uses:
//!
//! - structs with named fields,
//! - newtype structs (`struct S(T);`), serialized as the inner value,
//! - enums with unit variants (serialized as `"Name"`) and struct variants
//!   (serialized as `{"Name": {fields...}}`),
//! - field attributes `#[serde(default)]` and `#[serde(default = "path")]`.
//!
//! Anything else (generics, tuple variants, renames) is rejected with a
//! compile error naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&item.kind, mode) {
        (ItemKind::Struct(fields), Mode::Serialize) => struct_serialize(&item.name, fields),
        (ItemKind::Struct(fields), Mode::Deserialize) => struct_deserialize(&item.name, fields),
        (ItemKind::Newtype, Mode::Serialize) => newtype_serialize(&item.name),
        (ItemKind::Newtype, Mode::Deserialize) => newtype_deserialize(&item.name),
        (ItemKind::Enum(variants), Mode::Serialize) => enum_serialize(&item.name, variants),
        (ItemKind::Enum(variants), Mode::Deserialize) => enum_deserialize(&item.name, variants),
    };
    code.parse().expect("generated code parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

/// How a missing field is filled during deserialization.
#[derive(Clone)]
enum FieldDefault {
    /// Required: missing is an error.
    None,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

enum ItemKind {
    Struct(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (on `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Struct(parse_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = top_level_commas(g.stream()) + 1;
                if arity != 1 {
                    return Err(format!(
                        "serde stand-in derive supports only 1-field tuple structs \
                         (`{name}` has {arity})"
                    ));
                }
                Ok(Item {
                    name,
                    kind: ItemKind::Newtype,
                })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())?),
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Counts top-level commas in a token stream.
fn top_level_commas(stream: TokenStream) -> usize {
    stream
        .into_iter()
        .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
        .count()
}

/// Advances past `#[...]` attributes (returning any serde default marker
/// found) and past `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> FieldDefault {
    let mut default = FieldDefault::None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if let Some(d) = parse_serde_attr(g.stream()) {
                        default = d;
                    }
                    *i += 2;
                } else {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return default,
        }
    }
}

/// Recognizes `serde(default)` and `serde(default = "path")` inside an
/// attribute's bracket group.
fn parse_serde_attr(stream: TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let group = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match (inner.get(1), inner.get(2)) {
        (None, _) => Some(FieldDefault::Std),
        (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) if p.as_char() == '=' => {
            let text = lit.to_string();
            let path = text.trim_matches('"').to_string();
            Some(FieldDefault::Path(path))
        }
        _ => None,
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected field name, got `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a top-level comma. Track `<`/`>`
        // nesting so generic arguments' commas don't terminate the field.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected variant name, got `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream())?;
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in derive does not support tuple variants (`{name}`)"
                ));
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_fields_body(receiver: &str, fields: &[Field]) -> String {
    let mut body = String::from("let mut obj = ::std::vec::Vec::new();\n");
    for f in fields {
        body.push_str(&format!(
            "obj.push(({n:?}.to_string(), ::serde::Serialize::to_value(&{r}{n})));\n",
            n = f.name,
            r = receiver,
        ));
    }
    body.push_str("::serde::Value::Object(obj)");
    body
}

/// One struct-literal field initializer reading from object body `obj`.
fn deserialize_field_init(f: &Field) -> String {
    let missing = match &f.default {
        FieldDefault::None => format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field({:?}))",
            f.name
        ),
        FieldDefault::Std => "::std::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    };
    format!(
        "{n}: match ::serde::get_field(obj, {n:?}) {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
         None => {missing},\n\
         }},\n",
        n = f.name
    )
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         {body}\n\
         }}\n\
         }}\n",
        body = serialize_fields_body("self.", fields)
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let inits: String = fields.iter().map(deserialize_field_init).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let obj = v.as_object().ok_or_else(|| \
            ::serde::Error::type_mismatch(\"object for struct {name}\", v))?;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n\
         }}\n"
    )
}

fn newtype_serialize(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         ::serde::Serialize::to_value(&self.0)\n\
         }}\n\
         }}\n"
    )
}

fn newtype_deserialize(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
         }}\n\
         }}\n"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n",
                v = v.name
            )),
            Some(fields) => {
                let pattern: String = fields.iter().map(|f| format!("{}, ", f.name)).collect();
                let body = serialize_fields_body("", fields);
                arms.push_str(&format!(
                    "{name}::{v} {{ {pattern} }} => {{\n\
                     let inner = {{ {body} }};\n\
                     ::serde::Value::Object(vec![({v:?}.to_string(), inner)])\n\
                     }},\n",
                    v = v.name,
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n\
         }}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            Some(fields) => {
                let inits: String = fields.iter().map(deserialize_field_init).collect();
                struct_arms.push_str(&format!(
                    "{v:?} => {{\n\
                     let obj = inner.as_object().ok_or_else(|| \
                        ::serde::Error::type_mismatch(\"object for variant {v}\", inner))?;\n\
                     ::std::result::Result::Ok({name}::{v} {{\n\
                     {inits}\
                     }})\n\
                     }},\n",
                    v = v.name,
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => ::std::result::Result::Err(::serde::Error::custom(\
            format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
         let (tag, inner) = &fields[0];\n\
         match tag.as_str() {{\n\
         {struct_arms}\
         other => ::std::result::Result::Err(::serde::Error::custom(\
            format!(\"unknown variant `{{other}}` for {name}\"))),\n\
         }}\n\
         }},\n\
         other => ::std::result::Result::Err(\
            ::serde::Error::type_mismatch(\"enum {name}\", other)),\n\
         }}\n\
         }}\n\
         }}\n"
    )
}
