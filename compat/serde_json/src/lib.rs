//! Offline stand-in for `serde_json`, backed by the serde stub's [`Value`]
//! tree and JSON text layer.
//!
//! Numbers round-trip exactly (the stub keeps numeric literals as text and
//! parses them straight into the target type), which covers the
//! `float_roundtrip` feature the workspace requests.

pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` shape matches
/// the real crate's API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::json::write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indentation).
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::json::write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let v = serde::json::parse(s)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_roundtrip() {
        let x: Vec<(String, f64)> = vec![("a".into(), 0.1), ("b".into(), -2.5e-3)];
        let json = super::to_string(&x).unwrap();
        let back: Vec<(String, f64)> = super::from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_roundtrip() {
        let x = vec![vec![1u32, 2], vec![3]];
        let json = super::to_string_pretty(&x).unwrap();
        let back: Vec<Vec<u32>> = super::from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn malformed_is_error() {
        assert!(super::from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
