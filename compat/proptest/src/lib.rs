//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros, `any::<T>()`,
//! `Just`, range and tuple strategies, `prop_map`, and
//! `prop::collection::vec`. Each property runs [`CASES`] deterministic
//! cases seeded from the property's source location, so failures are
//! reproducible run-to-run. Unlike real proptest there is no shrinking:
//! a failure reports the case number and message only.

use rand::Rng as _;
use rand::SeedableRng as _;

/// The generator driving case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Number of cases per property (real proptest defaults to 256; this keeps
/// whole-workspace test runs fast while still exploring the space).
pub const CASES: u32 = 64;

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Records a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// A generator of values of one type.
///
/// Object-safe (the combinators carry `Self: Sized`), so `prop_oneof!` can
/// erase heterogeneous strategies behind `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! arbitrary_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { gen: |rng| rng.gen::<$t>() }
            }
        }
    )*};
}

arbitrary_impls!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The canonical strategy for `T` (full domain).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

// Ranges are strategies (uniform over the range).
macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
}

/// `prop::collection` and friends.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Drives one property: [`CASES`] deterministic cases seeded from the
/// source location. Panics (failing the surrounding `#[test]`) on the
/// first case whose body returns `Err`.
pub fn run_property<F>(file: &str, line: u32, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable seed: FNV-1a over the source location and property name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes().chain(name.bytes()).chain(line.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..CASES {
        let mut rng = TestRng::seed_from_u64(h ^ u64::from(case));
        if let Err(e) = body(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{CASES}: {}",
                e.message()
            );
        }
    }
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            $crate::run_property(file!(), line!(), stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Asserts inside a property body; on failure the case is reported with its
/// deterministic case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between strategies producing one common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0.0f64..1.0, -5i8..=5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (20u32..40).contains(&v));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property(file!(), line!(), "always_fails", |_rng| {
                Err(crate::TestCaseError::fail("boom"))
            });
        });
        assert!(result.is_err());
    }
}
