//! Distributed training on the simulated parameter-server cluster:
//! 10 workers train the experiment model with and without 3LC and report
//! accuracy, traffic, and simulated wall-clock time at three bandwidths.
//!
//! ```text
//! cargo run --release --example distributed_training [steps]
//! ```

use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, ExperimentConfig, NetworkModel};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    for scheme in [
        SchemeKind::Float32,
        SchemeKind::Int8,
        SchemeKind::three_lc(1.0),
        SchemeKind::three_lc(1.75),
    ] {
        let config = ExperimentConfig {
            total_steps: steps,
            ..ExperimentConfig::for_scheme(scheme)
        };
        let result = run_experiment(&config);
        println!(
            "{:<22} accuracy {:5.2}%  traffic {:6.1} MB  ratio {:6.1}x",
            result.scheme_label,
            result.final_eval.accuracy * 100.0,
            result.trace.total_bytes() as f64 / 1e6,
            result.compression_ratio(),
        );
        for (label, net) in NetworkModel::paper_presets() {
            println!(
                "    simulated training time @ {label:>8}: {:8.1} min",
                result.total_seconds_at(&net) / 60.0
            );
        }
    }
}
