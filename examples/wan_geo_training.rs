//! Geo-distributed / WAN training scenario from the paper's introduction:
//! workers must communicate over a slow (and possibly metered) wide-area
//! link because training data is pinned by regulation or lives on mobile
//! devices. Compares total bytes on the wire (what a metered link bills)
//! and time-to-accuracy across schemes at 10 Mbps.
//!
//! ```text
//! cargo run --release --example wan_geo_training [steps]
//! ```

use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, ExperimentConfig, NetworkModel};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let wan = NetworkModel::ten_mbps();
    // Illustrative metered-WAN price per GB (e.g. cellular / inter-region
    // egress); only the *relative* cost across schemes matters.
    let dollars_per_gb = 0.08;

    println!("Geo-distributed training over a 10 Mbps WAN ({steps} steps, 10 workers)\n");
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>12}",
        "design", "acc (%)", "time (min)", "wire (GB)", "est. cost"
    );
    for scheme in [
        SchemeKind::Float32,
        SchemeKind::Sparsify { fraction: 0.05 },
        SchemeKind::MqeOneBit,
        SchemeKind::three_lc(1.0),
        SchemeKind::three_lc(1.9),
    ] {
        let config = ExperimentConfig {
            total_steps: steps,
            ..ExperimentConfig::for_scheme(scheme)
        };
        let r = run_experiment(&config);
        // Project traffic to the paper's ResNet-110 scale, as the
        // simulated clock does.
        let scale = r.config.timing.scale_for(r.model_params);
        let gb = r.trace.total_bytes() as f64 * scale / 1e9;
        println!(
            "{:<22} {:>9.2} {:>12.1} {:>12.2} {:>11.2}$",
            r.scheme_label,
            r.final_eval.accuracy * 100.0,
            r.total_seconds_at(&wan) / 60.0,
            gb,
            gb * dollars_per_gb,
        );
    }
    println!(
        "\n3LC keeps accuracy within noise of the baseline while cutting both\n\
         the training time and the metered-traffic bill by more than an order\n\
         of magnitude — without any change to the training algorithm."
    );
}
