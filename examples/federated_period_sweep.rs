//! Infrequent-communication sweep (the federated-learning connection from
//! the paper's §6): how does transmitting every k-th step trade traffic
//! against accuracy, and where does 3LC land relative to every period?
//!
//! The paper's finding: "infrequent transmission of state changes can lead
//! to lower accuracy when using the same number of training steps" — while
//! 3LC reduces traffic *per step* instead of skipping steps.
//!
//! ```text
//! cargo run --release --example federated_period_sweep [steps]
//! ```

use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, ExperimentConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    println!("Local-steps period sweep vs 3LC ({steps} steps, 10 workers)\n");
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "design", "traffic (MB)", "vs baseline", "acc (%)"
    );
    let baseline = run_experiment(&ExperimentConfig {
        total_steps: steps,
        ..ExperimentConfig::for_scheme(SchemeKind::Float32)
    });
    let base_bytes = baseline.trace.total_bytes() as f64;
    let report = |label: &str, r: &threelc_distsim::ExperimentResult| {
        println!(
            "{label:<22} {:>12.1} {:>13.1}x {:>10.2}",
            r.trace.total_bytes() as f64 / 1e6,
            base_bytes / r.trace.total_bytes() as f64,
            r.final_eval.accuracy * 100.0,
        );
    };
    report("32-bit float", &baseline);
    for period in [2u32, 4, 8] {
        let r = run_experiment(&ExperimentConfig {
            total_steps: steps,
            ..ExperimentConfig::for_scheme(SchemeKind::LocalSteps { period })
        });
        report(&format!("{period} local steps"), &r);
    }
    let r = run_experiment(&ExperimentConfig {
        total_steps: steps,
        ..ExperimentConfig::for_scheme(SchemeKind::three_lc(1.0))
    });
    report("3LC (s=1.00)", &r);
    println!(
        "\nSkipping steps saves at most period-x traffic and costs accuracy;\n\
         3LC compresses every step's state changes by an order of magnitude\n\
         more without skipping any synchronization."
    );
}
