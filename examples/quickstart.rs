//! Quickstart: compress one gradient tensor with 3LC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor};
use threelc_tensor::{Initializer, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A gradient-like tensor: 64×128 values centered on zero.
    let mut rng = threelc_tensor::rng(42);
    let gradient = Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [64, 128]);
    let raw_bytes = gradient.len() * 4;
    println!(
        "input: {} values ({} bytes as f32)",
        gradient.len(),
        raw_bytes
    );

    for s in [1.0f32, 1.5, 1.75, 1.9] {
        // One compression context per tensor: it owns the error
        // accumulation buffer that corrects quantization errors over time.
        let mut ctx = ThreeLcCompressor::new(gradient.shape().clone(), SparsityMultiplier::new(s)?);
        let wire = ctx.compress(&gradient)?;
        let restored = ctx.decompress(&wire)?;
        let max_err = gradient.sub(&restored)?.max_abs();
        println!(
            "3LC (s={s:.2}): {:5} bytes  ({:5.1}x, {:.3} bits/value)  max error {max_err:.4}  \
             residual kept for next step: {:.4}",
            wire.len(),
            raw_bytes as f64 / wire.len() as f64,
            wire.len() as f64 * 8.0 / gradient.len() as f64,
            ctx.residual().expect("error accumulation is on").max_abs(),
        );
    }

    // The residual is not lost: compressing a stream of identical tensors
    // transmits the full signal over time.
    let mut ctx = ThreeLcCompressor::new(gradient.shape().clone(), SparsityMultiplier::default());
    let mut transmitted = Tensor::zeros(gradient.shape().clone());
    for _ in 0..20 {
        let wire = ctx.compress(&gradient)?;
        transmitted.add_assign(&ctx.decompress(&wire)?)?;
    }
    let target = gradient.scale(20.0);
    println!(
        "\nafter 20 steps of the same gradient: relative L2 error of cumulative sum = {:.4}",
        target.sub(&transmitted)?.l2_norm() / target.l2_norm()
    );
    Ok(())
}
