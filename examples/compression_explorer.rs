//! Compression explorer: how the sparsity multiplier shapes the ternary
//! distribution and what each 3LC stage contributes.
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use threelc::{quartic, zrle, SparsityMultiplier, TernaryTensor};
use threelc_tensor::{Histogram, Initializer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = threelc_tensor::rng(7);
    let input = Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [100_000]);

    // Show the distribution 3-value quantization sees.
    let mut hist = Histogram::new(input.max_abs(), 9);
    hist.add_tensor(&input);
    println!("input distribution (9 bins over ±max):");
    let max = *hist.counts().iter().max().expect("bins") as f64;
    for (i, &c) in hist.counts().iter().enumerate() {
        println!(
            "  bin {i}: {:<50} {c}",
            "#".repeat((c as f64 / max * 50.0) as usize)
        );
    }

    println!("\nstage-by-stage, per sparsity multiplier:");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>14} {:>9}",
        "s", "zeros", "quantized", "quartic", "after ZRE", "bits/val"
    );
    for s in [1.0f32, 1.25, 1.5, 1.75, 1.9, 1.99] {
        let sm = SparsityMultiplier::new(s)?;
        let q = TernaryTensor::quantize(&input, sm)?;
        let qb = quartic::encode(q.values());
        let zb = zrle::encode(&qb)?;
        println!(
            "{s:>6.2} {:>7.1}% {:>13}B {:>13}B {:>13}B {:>9.3}",
            q.zero_fraction() * 100.0,
            q.len(), // one i8 per value before packing
            qb.len(),
            zb.len(),
            zb.len() as f64 * 8.0 / q.len() as f64,
        );
    }

    // The 280x headline: an all-zero tensor through the whole pipeline.
    let zeros = threelc_tensor::Tensor::zeros([70_000]);
    let q = TernaryTensor::quantize(&zeros, SparsityMultiplier::default())?;
    let body = zrle::encode(&quartic::encode(q.values()))?;
    println!(
        "\nall-zero tensor: {} f32 bytes -> {} body bytes = {:.0}x (paper §3.3: 280x)",
        zeros.len() * 4,
        body.len(),
        (zeros.len() * 4) as f64 / body.len() as f64
    );
    Ok(())
}
