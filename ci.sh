#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, the full test suite, and
# the parallel-codec benchmark gate. Everything runs offline against the
# vendored compat/ stubs.
set -euo pipefail
cd "$(dirname "$0")"

# Snapshot the tree up front; the final stage fails if any stage below
# (tests, benches) created or modified tracked-or-untracked files.
status_before="$(git status --porcelain)"

echo "==> toolchain vs MSRV"
msrv="$(sed -n 's/^rust-version = "\(.*\)"$/\1/p' Cargo.toml | head -n1)"
have="$(rustc --version | sed -n 's/^rustc \([0-9][0-9.]*\).*/\1/p')"
if [ -z "$msrv" ] || [ -z "$have" ]; then
    echo "could not determine MSRV ($msrv) or toolchain version ($have)" >&2
    exit 1
fi
if [ "$(printf '%s\n%s\n' "$msrv" "$have" | sort -V | head -n1)" != "$msrv" ]; then
    echo "toolchain $have is older than MSRV $msrv" >&2
    exit 1
fi
echo "    rustc $have >= MSRV $msrv"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --no-default-features (per crate)"
for crate in threelc-tensor threelc threelc-baselines threelc-learning \
    threelc-distsim threelc-net threelc-obs threelc-cli threelc-bench; do
    echo "    $crate"
    cargo build --offline --no-default-features -p "$crate"
done

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --release (core + net)"
cargo test -q --offline --release -p threelc -p threelc-net

echo "==> bench smoke (criterion --test mode)"
cargo bench --offline -p threelc-bench --bench parallel -- --test

echo "==> bench gate vs BENCH_baseline.json"
# Shared CI hosts see multi-second load spikes that best-of-N inside one
# measurement window cannot escape, so a failed gate re-measures (up to
# 3 attempts). Transient noise clears between attempts; a genuine
# regression fails all of them.
mkdir -p target/bench
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_parallel -- \
        target/bench/BENCH_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_gate -- \
        target/bench/BENCH_current.json BENCH_baseline.json; then
        gate_ok=1
        break
    fi
    echo "bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "bench gate failed on all attempts" >&2
    exit 1
fi

echo "==> working tree must stay clean"
status_after="$(git status --porcelain)"
if [ "$status_before" != "$status_after" ]; then
    echo "tests or benches dirtied the working tree:" >&2
    diff <(printf '%s\n' "$status_before") <(printf '%s\n' "$status_after") >&2 || true
    exit 1
fi

echo "CI OK"
