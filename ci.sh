#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored compat/ stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "CI OK"
