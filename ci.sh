#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, the full test suite, and
# the parallel-codec benchmark gate. Everything runs offline against the
# vendored compat/ stubs.
set -euo pipefail
cd "$(dirname "$0")"

# Snapshot the tree up front; the final stage fails if any stage below
# (tests, benches) created or modified tracked-or-untracked files.
status_before="$(git status --porcelain)"

echo "==> toolchain vs MSRV"
msrv="$(sed -n 's/^rust-version = "\(.*\)"$/\1/p' Cargo.toml | head -n1)"
have="$(rustc --version | sed -n 's/^rustc \([0-9][0-9.]*\).*/\1/p')"
if [ -z "$msrv" ] || [ -z "$have" ]; then
    echo "could not determine MSRV ($msrv) or toolchain version ($have)" >&2
    exit 1
fi
if [ "$(printf '%s\n%s\n' "$msrv" "$have" | sort -V | head -n1)" != "$msrv" ]; then
    echo "toolchain $have is older than MSRV $msrv" >&2
    exit 1
fi
echo "    rustc $have >= MSRV $msrv"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --no-default-features (per crate)"
for crate in threelc-tensor threelc threelc-baselines threelc-learning \
    threelc-policy threelc-distsim threelc-net threelc-obs threelc-cli \
    threelc-bench; do
    echo "    $crate"
    cargo build --offline --no-default-features -p "$crate"
done

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo test --release (core + net)"
cargo test -q --offline --release -p threelc -p threelc-net

echo "==> codec dispatch matrix (forced scalar / swar / simd tiers)"
threelc=target/release/threelc
matrixdir=target/codec-matrix
rm -rf "$matrixdir"
mkdir -p "$matrixdir"
"$threelc" codec | tee "$matrixdir/codec.txt"
# Availability must be truthful: an x86-64 host with AVX2 that hides the
# simd tier would silently rot this matrix down to scalar-only coverage.
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    if ! grep -q '^available: scalar swar simd$' "$matrixdir/codec.txt"; then
        echo "host CPU reports AVX2 but the simd tier claims unavailable" >&2
        exit 1
    fi
fi
tiers="$(sed -n 's/^available: //p' "$matrixdir/codec.txt")"
# Deterministic mixed-sparsity input shared by every tier below.
python3 - "$matrixdir/input.f32" <<'PYEOF'
import math
import struct
import sys

out = bytearray()
for i in range(100003):
    x = 0.0 if i % 3 == 0 else math.sin(i * 0.37) * 0.01
    out += struct.pack("<f", x)
with open(sys.argv[1], "wb") as f:
    f.write(out)
PYEOF
for tier in $tiers; do
    echo "    tier $tier: forced selection, core suite, net loopback, CLI output"
    # Forcing a tier the host supports must activate exactly that tier —
    # a silent downgrade here would mean the matrix no longer tests what
    # it claims to.
    if ! THREELC_CODEC_IMPL="$tier" "$threelc" codec \
        | grep -q "^active:    $tier (forced"; then
        echo "THREELC_CODEC_IMPL=$tier did not activate the $tier tier" >&2
        exit 1
    fi
    THREELC_CODEC_IMPL="$tier" cargo test -q --offline -p threelc
    THREELC_CODEC_IMPL="$tier" cargo test -q --offline -p threelc-net --test loopback
    THREELC_CODEC_IMPL="$tier" "$threelc" compress "$matrixdir/input.f32" \
        "$matrixdir/$tier.3lc" --sparsity 1.5 >"$matrixdir/$tier.compress.log"
    grep -q "codec: $tier" "$matrixdir/$tier.compress.log"
    # A second container without zero-run encoding feeds the corrupt-input
    # check below (0xff is unambiguously invalid only without ZRE escapes).
    THREELC_CODEC_IMPL="$tier" "$threelc" compress "$matrixdir/input.f32" \
        "$matrixdir/$tier.nozre.3lc" --sparsity 1.5 --no-zre >/dev/null
done
first_tier=""
for tier in $tiers; do
    if [ -z "$first_tier" ]; then
        first_tier="$tier"
        continue
    fi
    for suffix in 3lc nozre.3lc; do
        if ! cmp -s "$matrixdir/$first_tier.$suffix" "$matrixdir/$tier.$suffix"; then
            echo "tier $tier produced different .$suffix bytes than $first_tier" >&2
            exit 1
        fi
    done
done
echo "    all tiers byte-identical on $(wc -c <"$matrixdir/$first_tier.3lc")-byte container"
# Corrupt-input parity: plant an invalid quartic byte (0xff > 242) in the
# payload; every tier must reject it with the *same* error text (same
# kind, same offset).
python3 - "$matrixdir/$first_tier.nozre.3lc" "$matrixdir/corrupt.3lc" <<'PYEOF'
import sys

data = bytearray(open(sys.argv[1], "rb").read())
data[len(data) // 2] = 0xFF
with open(sys.argv[2], "wb") as f:
    f.write(data)
PYEOF
for tier in $tiers; do
    rc=0
    THREELC_CODEC_IMPL="$tier" "$threelc" decompress "$matrixdir/corrupt.3lc" \
        "$matrixdir/corrupt.$tier.f32" >"$matrixdir/corrupt.$tier.err" 2>&1 || rc=$?
    if [ "$rc" = 0 ]; then
        echo "tier $tier decoded a corrupt container without error" >&2
        exit 1
    fi
    if ! cmp -s "$matrixdir/corrupt.$first_tier.err" "$matrixdir/corrupt.$tier.err"; then
        echo "tier $tier reported a different corrupt-input error than $first_tier:" >&2
        diff "$matrixdir/corrupt.$first_tier.err" "$matrixdir/corrupt.$tier.err" >&2 || true
        exit 1
    fi
done
grep -q "invalid quartic byte" "$matrixdir/corrupt.$first_tier.err"
echo "    corrupt container rejected identically by every tier"

echo "==> unsafe-code stage (sanitizer over the intrinsics kernels)"
# cargo miri would be the first choice, but the component is not
# installable on this image (offline). AddressSanitizer on a nightly
# toolchain covers the unsafe SIMD paths instead; the MSRV and stable
# toolchains cannot pass -Zsanitizer, so without a nightly the stage
# skips LOUDLY rather than failing hosts that lack one.
if [ "$(uname -m)" = x86_64 ] && rustup run nightly rustc --version >/dev/null 2>&1; then
    RUSTFLAGS="-Zsanitizer=address" cargo +nightly test -q --offline \
        -p threelc --lib kernels --target x86_64-unknown-linux-gnu
    RUSTFLAGS="-Zsanitizer=address" cargo +nightly test -q --offline \
        -p threelc --test dispatch_identity --target x86_64-unknown-linux-gnu
    echo "    AddressSanitizer clean: kernels unit tests + dispatch differential suite"
else
    echo "    SKIPPED: no nightly toolchain for -Zsanitizer=address (cargo miri is"
    echo "    not installed and cannot be fetched offline); the unsafe kernels ran"
    echo "    un-sanitized in the suites above"
fi

echo "==> trace smoke (loopback 2-worker collect -> merge -> export)"
threelc=target/release/threelc
smokedir=target/trace-smoke
rm -rf "$smokedir"
mkdir -p "$smokedir"
# Run a traced loopback cluster through the real binaries. Workers retry
# with backoff, so starting them alongside the server is fine.
run_traced_loopback() { # <report.json> <events.jsonl> <worker0-env...>
    local report="$1" events="$2" straggle="${3:-}"
    local port addr
    port=$((20000 + RANDOM % 20000))
    addr="127.0.0.1:$port"
    THREELC_TRACE=1 "$threelc" serve --addr "$addr" --workers 2 --steps 4 \
        --width 16 --blocks 1 --batch 8 --scheme 3lc --sparsity 1.5 \
        --json "$report" --log-json "$events" >"$report.log" &
    local serve_pid=$!
    THREELC_TRACE=1 THREELC_STRAGGLE_MS="$straggle" \
        "$threelc" worker --addr "$addr" --id 0 >"$report.w0.log" &
    local w0=$!
    THREELC_TRACE=1 "$threelc" worker --addr "$addr" --id 1 >"$report.w1.log" &
    local w1=$!
    # Waited individually: a multi-pid `wait` only reports the last
    # pid's status, which would mask a failed worker.
    wait "$w0"
    wait "$w1"
    wait "$serve_pid"
}
run_traced_loopback "$smokedir/report.json" "$smokedir/events.jsonl"
"$threelc" trace "$smokedir/report.json" --chrome "$smokedir/trace.json" \
    >"$smokedir/trace.txt"
for phase in quantize encode serialize network barrier-wait server-decode \
    aggregate re-encode pull; do
    if ! grep -q "\"name\":\"$phase\"" "$smokedir/trace.json"; then
        echo "phase $phase missing from Chrome trace export" >&2
        exit 1
    fi
done
"$threelc" trace "$smokedir/report.json" --check >/dev/null
"$threelc" metrics --from "$smokedir/events.jsonl" >"$smokedir/metrics.txt"
grep -q net.server "$smokedir/metrics.txt"
"$threelc" metrics --from "$smokedir/events.jsonl" --prom >"$smokedir/metrics.prom"
grep -q '^# TYPE ' "$smokedir/metrics.prom"
echo "    all nine phases exported; --check clean; offline metrics render"

echo "==> trace gate (injected straggler must fail --check)"
run_traced_loopback "$smokedir/straggle.json" "$smokedir/straggle-events.jsonl" 250
if "$threelc" trace "$smokedir/straggle.json" --check \
    >"$smokedir/straggle.txt" 2>&1; then
    echo "trace --check passed despite an injected 250 ms straggler" >&2
    exit 1
fi
grep -q straggler "$smokedir/straggle.txt"
echo "    straggler detected; --check exits nonzero"

echo "==> analyze smoke (clean run: attribution conserved, no bottleneck)"
"$threelc" analyze "$smokedir/report.json" --check >"$smokedir/analyze.txt"
grep -q "attribution conserved" "$smokedir/analyze.txt"
grep -q "critical path over" "$smokedir/analyze.txt"
"$threelc" metrics --from "$smokedir/report.json" --prom \
    >"$smokedir/analyze.prom"
grep -q '^critical_conservation_error ' "$smokedir/analyze.prom"
echo "    clean attribution conserved; blame gauges exported as OpenMetrics"

echo "==> analyze gate (injected delay must be blamed on the right worker)"
# Worker 1 sleeps 250 ms before its step-2 push. The analyzer must pin
# the slowdown on worker1's network phase — the causal ground truth —
# and the same report must then fail --check (the inverted gate).
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
THREELC_TRACE=1 "$threelc" serve --addr "$addr" --workers 2 --steps 5 \
    --width 16 --blocks 1 --batch 8 --scheme 3lc --sparsity 1.5 \
    --json "$smokedir/delayed.json" >"$smokedir/delayed.log" &
serve_pid=$!
THREELC_TRACE=1 "$threelc" worker --addr "$addr" --id 0 \
    >"$smokedir/delayed.w0.log" &
w0=$!
THREELC_TRACE=1 "$threelc" worker --addr "$addr" --id 1 \
    --inject-fault delay@2:250 >"$smokedir/delayed.w1.log" &
w1=$!
wait "$w0"
wait "$w1"
wait "$serve_pid"
"$threelc" analyze "$smokedir/delayed.json" --expect-blame worker1:network \
    >"$smokedir/delayed-analyze.txt"
grep -q "blame check passed" "$smokedir/delayed-analyze.txt"
grep -q "bottleneck \[worker1/network\]" "$smokedir/delayed-analyze.txt"
if "$threelc" analyze "$smokedir/delayed.json" --check >/dev/null 2>&1; then
    echo "analyze --check passed despite an injected 250 ms delay" >&2
    exit 1
fi
echo "    delay@2:250 blamed on worker1/network; --check exits nonzero"

echo "==> chaos smoke (faulted runs must recover bit-identically)"
chaosdir=target/chaos-smoke
rm -rf "$chaosdir"
mkdir -p "$chaosdir"
chaos_flags=(--workers 2 --steps 6 --width 16 --blocks 1 --batch 8
    --scheme 3lc --sparsity 1.5)
crc_of() { sed -n 's/^final model crc32: \(.*\)$/\1/p' "$1"; }
"$threelc" simulate "${chaos_flags[@]}" >"$chaosdir/sim.txt"
sim_crc="$(crc_of "$chaosdir/sim.txt")"
if [ -z "$sim_crc" ]; then
    echo "simulate printed no final-model fingerprint" >&2
    exit 1
fi

# A worker drops its connection mid-run, rejoins, and the recovered run's
# final model must equal the undisturbed simulation's, bit for bit.
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${chaos_flags[@]}" >"$chaosdir/serve.log" &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault disconnect@2 \
    >"$chaosdir/w0.log" &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$chaosdir/w1.log" &
w1=$!
wait "$w0"
wait "$w1"
wait "$serve_pid"
grep -q "faults: 1 disconnect(s), 1 rejoin(s)" "$chaosdir/serve.log"
grep -q "rejoined 1 time(s)" "$chaosdir/w0.log"
net_crc="$(crc_of "$chaosdir/serve.log")"
if [ "$net_crc" != "$sim_crc" ]; then
    echo "recovered run diverged: serve crc $net_crc != simulate crc $sim_crc" >&2
    exit 1
fi
echo "    disconnect@2 recovered; crc $net_crc matches the simulator"

# A worker killed between push and pull (exit code 43) is resumed by a
# fresh process with --rejoin; the run must still match the simulator.
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${chaos_flags[@]}" >"$chaosdir/kill-serve.log" &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault kill@2 \
    >"$chaosdir/kill-w0.log" &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$chaosdir/kill-w1.log" &
w1=$!
rc=0
wait "$w0" || rc=$?
if [ "$rc" != 43 ]; then
    echo "kill@2 worker exited $rc, expected the kill exit code 43" >&2
    exit 1
fi
"$threelc" worker --addr "$addr" --id 0 --rejoin >"$chaosdir/kill-w0b.log" &
w0b=$!
wait "$w0b"
wait "$w1"
wait "$serve_pid"
net_crc="$(crc_of "$chaosdir/kill-serve.log")"
if [ "$net_crc" != "$sim_crc" ]; then
    echo "killed-and-resumed run diverged: crc $net_crc != $sim_crc" >&2
    exit 1
fi
echo "    kill@2 + --rejoin resumed; crc matches the simulator"

echo "==> chaos gate (the same fault under --max-rejoins 0 must abort)"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${chaos_flags[@]}" --max-rejoins 0 \
    >"$chaosdir/failstop-serve.log" 2>&1 &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault disconnect@2 \
    --max-rejoins 0 >"$chaosdir/failstop-w0.log" 2>&1 &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$chaosdir/failstop-w1.log" 2>&1 &
w1=$!
rc=0
wait "$w0" || rc=$?
if [ "$rc" = 0 ]; then
    echo "fail-stop worker survived its injected disconnect" >&2
    exit 1
fi
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" = 0 ]; then
    echo "fail-stop server completed despite a worker disconnect" >&2
    exit 1
fi
rc=0
wait "$w1" || rc=$?
echo "    --max-rejoins 0 aborts on the injected fault; gate holds both ways"

echo "==> aggregation-mode matrix (per-mode crc: serve == simulate; exact == f32)"
aggdir=target/agg-smoke
rm -rf "$aggdir"
mkdir -p "$aggdir"
# The per-mode loopback and chaos integration tests ride along here, so
# both non-default modes re-run the in-process net suite as well as the
# shell-level crc comparison below.
cargo test -q --offline -p threelc-net --test loopback --test faults
for mode in f32 exact compressed; do
    "$threelc" simulate "${chaos_flags[@]}" --aggregate "$mode" \
        >"$aggdir/sim-$mode.txt"
    mode_sim_crc="$(crc_of "$aggdir/sim-$mode.txt")"
    if [ -z "$mode_sim_crc" ]; then
        echo "--aggregate $mode simulate printed no fingerprint" >&2
        exit 1
    fi
    port=$((20000 + RANDOM % 20000))
    addr="127.0.0.1:$port"
    "$threelc" serve --addr "$addr" "${chaos_flags[@]}" --aggregate "$mode" \
        >"$aggdir/serve-$mode.log" &
    serve_pid=$!
    "$threelc" worker --addr "$addr" --id 0 >"$aggdir/w0-$mode.log" &
    w0=$!
    "$threelc" worker --addr "$addr" --id 1 >"$aggdir/w1-$mode.log" &
    w1=$!
    wait "$w0"
    wait "$w1"
    wait "$serve_pid"
    mode_net_crc="$(crc_of "$aggdir/serve-$mode.log")"
    if [ "$mode_net_crc" != "$mode_sim_crc" ]; then
        echo "--aggregate $mode: serve crc $mode_net_crc != simulate crc $mode_sim_crc" >&2
        exit 1
    fi
    echo "    $mode: crc $mode_net_crc matches the simulator"
done
# Exact mode is the default and bit-identical to the seed f32 path, so
# the f32 and exact fingerprints — and the default-mode chaos baseline
# above — must all be one value.
if [ "$(crc_of "$aggdir/sim-f32.txt")" != "$(crc_of "$aggdir/sim-exact.txt")" ]; then
    echo "exact-mode model diverged from the f32 aggregation path" >&2
    exit 1
fi
if [ "$(crc_of "$aggdir/sim-exact.txt")" != "$sim_crc" ]; then
    echo "default aggregation no longer matches exact mode" >&2
    exit 1
fi
echo "    f32 == exact == default: bit-identity holds at the model level"

# kill@2 + --rejoin under --aggregate compressed: replay-based resync
# must land exactly on the compressed-mode simulator model too.
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${chaos_flags[@]}" --aggregate compressed \
    >"$aggdir/kill-serve.log" &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault kill@2 \
    --aggregate compressed >"$aggdir/kill-w0.log" &
w0=$!
"$threelc" worker --addr "$addr" --id 1 --aggregate compressed \
    >"$aggdir/kill-w1.log" &
w1=$!
rc=0
wait "$w0" || rc=$?
if [ "$rc" != 43 ]; then
    echo "compressed kill@2 worker exited $rc, expected the kill exit code 43" >&2
    exit 1
fi
"$threelc" worker --addr "$addr" --id 0 --rejoin >"$aggdir/kill-w0b.log" &
w0b=$!
wait "$w0b"
wait "$w1"
wait "$serve_pid"
if [ "$(crc_of "$aggdir/kill-serve.log")" != "$(crc_of "$aggdir/sim-compressed.txt")" ]; then
    echo "compressed kill@2 + --rejoin diverged from the simulator" >&2
    exit 1
fi
echo "    compressed kill@2 + --rejoin resumed; crc matches the simulator"

echo "==> policy smoke (adaptive multipliers: deterministic and non-constant)"
policydir=target/policy-smoke
rm -rf "$policydir"
mkdir -p "$policydir"
policy_flags=(--workers 2 --steps 6 --width 16 --blocks 1 --batch 8
    --scheme 3lc)
# "policy [label]: N distinct multiplier(s); ..." -> N
distinct_of() { sed -n 's/^policy \[.*\]: \([0-9]*\) distinct.*/\1/p' "$1"; }
for spec in "schedule:from=1.0,to=1.9,over=4" \
    "feedback:ratio=10000,start=1.2,gain=0.05,hold=1"; do
    "$threelc" simulate "${policy_flags[@]}" --policy "$spec" \
        >"$policydir/a.txt"
    "$threelc" simulate "${policy_flags[@]}" --policy "$spec" \
        >"$policydir/b.txt"
    crc_a="$(crc_of "$policydir/a.txt")"
    if [ -z "$crc_a" ] || [ "$crc_a" != "$(crc_of "$policydir/b.txt")" ]; then
        echo "policy $spec: two identical runs disagreed on the model crc" >&2
        exit 1
    fi
    distinct="$(distinct_of "$policydir/a.txt")"
    if [ -z "$distinct" ] || [ "$distinct" -lt 2 ]; then
        echo "policy $spec produced a constant multiplier sequence" >&2
        exit 1
    fi
    echo "    $spec: crc $crc_a stable, $distinct distinct multipliers"
done

# A networked feedback run — including a worker killed mid-run and
# resumed with --rejoin — must reproduce the simulator's fingerprint AND
# its exact decision sequence (PolicyUpdate frames replay during resync).
spec="feedback:ratio=10000,start=1.2,gain=0.05,hold=1"
"$threelc" simulate "${policy_flags[@]}" --policy "$spec" >"$policydir/sim.txt"
psim_crc="$(crc_of "$policydir/sim.txt")"
psim_policy="$(grep '^policy \[' "$policydir/sim.txt")"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${policy_flags[@]}" --policy "$spec" \
    --json "$policydir/report.json" >"$policydir/serve.log" &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault kill@2 \
    >"$policydir/w0.log" &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$policydir/w1.log" &
w1=$!
rc=0
wait "$w0" || rc=$?
if [ "$rc" != 43 ]; then
    echo "kill@2 policy worker exited $rc, expected the kill exit code 43" >&2
    exit 1
fi
"$threelc" worker --addr "$addr" --id 0 --rejoin >"$policydir/w0b.log" &
w0b=$!
wait "$w0b"
wait "$w1"
wait "$serve_pid"
net_crc="$(crc_of "$policydir/serve.log")"
if [ "$net_crc" != "$psim_crc" ]; then
    echo "adaptive run diverged: serve crc $net_crc != simulate crc $psim_crc" >&2
    exit 1
fi
if ! grep -qF "$psim_policy" "$policydir/serve.log"; then
    echo "serve printed a different decision sequence than simulate" >&2
    exit 1
fi
distinct_s="$(grep -o '"s": *[0-9.eE+-]*' "$policydir/report.json" \
    | sort -u | wc -l)"
if [ "$distinct_s" -lt 2 ]; then
    echo "NetReport multiplier sequence is constant ($distinct_s value)" >&2
    exit 1
fi
echo "    kill@2 + --rejoin: crc and decision sequence match the simulator"

echo "==> observability smoke (threelc top + metrics --watch on a live run)"
obsdir=target/obs-smoke
rm -rf "$obsdir"
mkdir -p "$obsdir"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
# A straggling worker 0 stretches the run to a couple of seconds, leaving
# a window to scrape it live.
"$threelc" serve --addr "$addr" --workers 2 --steps 20 --width 16 \
    --blocks 1 --batch 8 --scheme 3lc --sparsity 1.5 >"$obsdir/serve.log" &
serve_pid=$!
THREELC_STRAGGLE_MS=100 "$threelc" worker --addr "$addr" --id 0 \
    >"$obsdir/w0.log" &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$obsdir/w1.log" &
w1=$!
top_ok=0
for _ in $(seq 1 100); do
    if "$threelc" top "$addr" --once >"$obsdir/top.txt" 2>/dev/null; then
        top_ok=1
        break
    fi
    sleep 0.05
done
if [ "$top_ok" != 1 ]; then
    echo "threelc top --once never rendered a frame from the live run" >&2
    exit 1
fi
# One row per worker, always — even before a worker's first step lands.
grep -q "^worker 0 " "$obsdir/top.txt"
grep -q "^worker 1 " "$obsdir/top.txt"
grep -q "2 worker(s)" "$obsdir/top.txt"
# The watcher follows the run and exits cleanly when the server goes away.
"$threelc" metrics "$addr" --watch 0.2 >"$obsdir/watch.txt" &
watch_pid=$!
wait "$w0"
wait "$w1"
wait "$serve_pid"
wait "$watch_pid"
grep -q "server went away" "$obsdir/watch.txt"
echo "    top rendered every worker row; --watch followed the run to the end"

echo "==> flight gate (aborted run must leave a post-mortem dump)"
port=$((20000 + RANDOM % 20000))
addr="127.0.0.1:$port"
"$threelc" serve --addr "$addr" "${chaos_flags[@]}" --max-rejoins 0 \
    --json "$obsdir/aborted.json" >"$obsdir/aborted-serve.log" 2>&1 &
serve_pid=$!
"$threelc" worker --addr "$addr" --id 0 --inject-fault kill@2 \
    >"$obsdir/aborted-w0.log" 2>&1 &
w0=$!
"$threelc" worker --addr "$addr" --id 1 >"$obsdir/aborted-w1.log" 2>&1 &
w1=$!
rc=0
wait "$w0" || rc=$?
if [ "$rc" != 43 ]; then
    echo "kill@2 worker exited $rc, expected the kill exit code 43" >&2
    exit 1
fi
rc=0
wait "$w1" || rc=$?
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" = 0 ]; then
    echo "fail-stop server completed despite its worker being killed" >&2
    exit 1
fi
flight="$obsdir/aborted.flight.json"
if [ ! -f "$flight" ]; then
    echo "aborted run left no flight dump at $flight" >&2
    exit 1
fi
grep -qF '"trigger":"abort"' "$flight"
grep -qF '"anomalies":[{' "$flight" # non-empty anomaly list
"$threelc" trace "$flight" >"$obsdir/flight.txt"
grep -q "trigger=abort" "$obsdir/flight.txt"
grep -q "fault-disconnect" "$obsdir/flight.txt"
if "$threelc" trace "$flight" --check >/dev/null 2>&1; then
    echo "trace --check passed on a flight dump full of anomalies" >&2
    exit 1
fi
echo "    kill@2 left $flight; trace renders it and --check fails on it"

if [ -n "${THREELC_CODEC_IMPL:-}" ]; then
    echo "==> bench stages SKIPPED: THREELC_CODEC_IMPL=$THREELC_CODEC_IMPL is set"
    echo "    The checked-in baselines were measured under auto tier selection;"
    echo "    gating a forced (possibly scalar) tier against them would fail for"
    echo "    reasons that are not regressions. Run ci.sh without the override"
    echo "    for the performance gates."
else

echo "==> bench smoke (criterion --test mode)"
cargo bench --offline -p threelc-bench --bench parallel -- --test

echo "==> bench gate vs BENCH_pr8.json (+ encode bar vs BENCH_pr3.json)"
# Shared CI hosts see multi-second load spikes that best-of-N inside one
# measurement window cannot escape, so a failed gate re-measures (up to
# 3 attempts). Transient noise clears between attempts; a genuine
# regression fails all of them. The extra --encode-bar reference is the
# pre-SWAR PR 3 report: single-thread encode must beat its calibration-
# scaled figures by 3x (the kernel-rewrite throughput bar).
mkdir -p target/bench
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_parallel -- \
        target/bench/BENCH_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_gate -- \
        target/bench/BENCH_current.json BENCH_pr8.json \
        --encode-bar BENCH_pr3.json; then
        gate_ok=1
        break
    fi
    echo "bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "bench gate failed on all attempts" >&2
    exit 1
fi

echo "==> policy bench gate vs BENCH_pr6.json"
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_policy -- \
        target/bench/BENCH_policy_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_policy -- \
        --gate target/bench/BENCH_policy_current.json BENCH_pr6.json; then
        gate_ok=1
        break
    fi
    echo "policy bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "policy bench gate failed on all attempts" >&2
    exit 1
fi

echo "==> recorder bench gate vs BENCH_pr7.json"
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_recorder -- \
        target/bench/BENCH_recorder_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_recorder -- \
        --gate target/bench/BENCH_recorder_current.json BENCH_pr7.json; then
        gate_ok=1
        break
    fi
    echo "recorder bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "recorder bench gate failed on all attempts" >&2
    exit 1
fi

echo "==> analyze bench gate vs BENCH_pr9.json"
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_analyze -- \
        target/bench/BENCH_analyze_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_analyze -- \
        --gate target/bench/BENCH_analyze_current.json BENCH_pr9.json; then
        gate_ok=1
        break
    fi
    echo "analyze bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "analyze bench gate failed on all attempts" >&2
    exit 1
fi

echo "==> aggregate bench gate vs BENCH_pr10.json"
gate_ok=0
for attempt in 1 2 3; do
    cargo run -q --release --offline -p threelc-bench --bin bench_aggregate -- \
        target/bench/BENCH_aggregate_current.json --reps 10
    if cargo run -q --release --offline -p threelc-bench --bin bench_aggregate -- \
        --gate target/bench/BENCH_aggregate_current.json BENCH_pr10.json; then
        gate_ok=1
        break
    fi
    echo "aggregate bench gate attempt $attempt failed; re-measuring" >&2
    sleep 2
done
if [ "$gate_ok" != 1 ]; then
    echo "aggregate bench gate failed on all attempts" >&2
    exit 1
fi

fi # bench stages (skipped when THREELC_CODEC_IMPL forces a tier)

echo "==> working tree must stay clean"
status_after="$(git status --porcelain)"
if [ "$status_before" != "$status_after" ]; then
    echo "tests or benches dirtied the working tree:" >&2
    diff <(printf '%s\n' "$status_before") <(printf '%s\n' "$status_after") >&2 || true
    exit 1
fi

echo "CI OK"
