//! The sharded name → metric registry and the process-global instance.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterEntry, GaugeEntry, HistEntry, Snapshot};
use crate::span::SpanGuard;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of mutex shards. Registration and lookup hash the metric name
/// to a shard, so unrelated names never contend; hot paths should cache
/// the returned `Arc` and skip the lookup entirely.
const SHARDS: usize = 16;

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call under
/// a name registers the metric, later calls return the same `Arc`.
/// Registering one name as two different kinds is a programming error and
/// panics with the offending name.
#[derive(Default)]
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is already registered as a non-counter"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is already registered as a non-gauge"),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is already registered as a non-histogram"),
        }
    }

    /// Starts a span feeding the histogram `span.<name>.seconds`.
    ///
    /// The returned guard records the elapsed monotonic seconds when
    /// dropped (or explicitly via [`SpanGuard::finish`]). Hot paths that
    /// open the same span per item should cache the histogram once and
    /// use [`SpanGuard::on`] instead.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::on(self.histogram(&format!("span.{name}.seconds")))
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push(CounterEntry {
                        name: name.clone(),
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => snap.gauges.push(GaugeEntry {
                        name: name.clone(),
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => snap.histograms.push(HistEntry {
                        name: name.clone(),
                        hist: h.snapshot(),
                    }),
                }
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

/// The process-global registry.
///
/// Every layer of the stack (core codec, step engine, network runtime)
/// reports here by default, which is what makes one `threelc metrics`
/// scrape of a server show compression, engine, and transport telemetry
/// together.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.snapshot().counter("hits"), Some(2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn span_feeds_a_namespaced_histogram() {
        let reg = Registry::new();
        {
            let _guard = reg.span("encode");
        }
        let snap = reg.snapshot();
        let h = snap
            .histogram("span.encode.seconds")
            .expect("span histogram");
        assert_eq!(h.count, 1);
        assert!(h.min >= 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b");
        reg.counter("a");
        reg.gauge("z");
        reg.histogram("m");
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn cross_thread_aggregation_through_one_registry() {
        let reg = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let h = reg.histogram("work");
                    for i in 0..100 {
                        h.record(i as f64);
                        reg.counter("done").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("done"), Some(800));
        assert_eq!(snap.histogram("work").expect("histogram").count, 800);
    }
}
