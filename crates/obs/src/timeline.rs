//! Timeline reconstruction: merges per-node [`NodeTrace`] buffers onto a
//! single clock-aligned axis and exports the result as Chrome-trace JSON
//! or a terminal per-step phase breakdown.
//!
//! # Clock-offset estimation
//!
//! Every node timestamps spans on its own monotonic clock (`now_ns`
//! counts from a per-process epoch), so raw timestamps from two nodes are
//! incomparable. The BSP barrier gives us an NTP-style sample per
//! `(step, worker)` pair for free:
//!
//! - the worker's `network` span covers *flush push → first pull frame*,
//!   so its bounds are the send time `t0` and receive time `t3` on the
//!   worker clock;
//! - the server's `recv_push` span for that worker ends at `T1` (push
//!   fully received) and its `send_pull` span starts at `T2` (pull about
//!   to be written), both on the server clock.
//!
//! Assuming symmetric network delay, the worker-to-server clock offset is
//! `((T1 − t0) + (T2 − t3)) / 2` and the round-trip (minus server time)
//! is `(t3 − t0) − (T2 − T1)`. One sample per step is noisy; we take the
//! median over all steps, which is robust to stragglers and GC-style
//! pauses. The server clock is the reference axis; worker spans shift by
//! their estimated offset, then the whole timeline normalizes so the
//! earliest span starts at zero. Estimation error is bounded by the
//! network asymmetry, i.e. at most one barrier round-trip.

use crate::trace::{NodeTrace, SpanRecord, NO_WORKER};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The per-step phases a fully traced run records, in pipeline order.
///
/// `barrier-wait` is synthesized during the merge rather than recorded:
/// a worker's raw `network` span covers *flush push → first pull frame*,
/// which conflates wire transit with blocking at the barrier. When the
/// server-side endpoints for the pair are known (`recv_push` end `T1`,
/// `send_pull` start `T2`), the merge splits the span into
/// `network [t0, T1)`, `barrier-wait [T1, T2)`, and `network [T2, t3)` on
/// the aligned axis — so the per-step table sums to step wall-clock
/// instead of double-counting the barrier inside "network".
pub const PHASES: [&str; 9] = [
    "quantize",
    "encode",
    "serialize",
    "network",
    "barrier-wait",
    "server-decode",
    "aggregate",
    "re-encode",
    "pull",
];

/// Clock domain used as the reference axis when present.
pub const REFERENCE_CLOCK: &str = "server";

/// One span shifted onto the reference clock axis.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedSpan {
    /// Logical lane (`server`, `worker0`, …).
    pub node: String,
    /// Phase name.
    pub name: String,
    /// Training step.
    pub step: u64,
    /// Worker the span concerns, or [`NO_WORKER`].
    pub worker: i64,
    /// Start on the merged axis, nanoseconds (earliest span = 0).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Run trace id.
    pub trace: u64,
    /// Span id (unique within its source clock domain).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
}

/// The estimated offset of one clock domain relative to the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockOffset {
    /// Clock-domain label.
    pub clock: String,
    /// Nanoseconds to *add* to this clock's timestamps to land on the
    /// reference axis (before normalization).
    pub offset_ns: i64,
    /// Median barrier round-trip observed for this clock, nanoseconds.
    pub rtt_ns: u64,
    /// Number of barrier samples the estimate used.
    pub samples: usize,
}

/// Per-node traces merged onto one axis.
#[derive(Debug, Clone, Default)]
pub struct MergedTimeline {
    /// All spans, shifted and sorted by start time.
    pub spans: Vec<AlignedSpan>,
    /// The offset estimate per non-reference clock domain.
    pub offsets: Vec<ClockOffset>,
    /// Records dropped by ring buffers, summed over nodes.
    pub dropped: u64,
}

/// Server-clock barrier endpoints for one `(step, worker)` pair. The
/// matching worker-clock endpoints come from that worker's `network` span.
#[derive(Default)]
struct BarrierSample {
    /// Server clock: `recv_push` end.
    t1: Option<u64>,
    /// Server clock: `send_pull` start.
    t2: Option<u64>,
}

impl MergedTimeline {
    /// Merges `nodes` onto the reference axis. Clock domains with no
    /// usable barrier samples (including the simulator's single `sim`
    /// domain) keep their raw timestamps, offset 0.
    pub fn build(nodes: &[NodeTrace]) -> MergedTimeline {
        let reference = nodes
            .iter()
            .find(|n| n.clock == REFERENCE_CLOCK)
            .map(|n| n.clock.as_str())
            .or_else(|| nodes.first().map(|n| n.clock.as_str()))
            .unwrap_or(REFERENCE_CLOCK)
            .to_string();

        // Barrier endpoints on the server clock, keyed by (step, worker).
        let mut server_ends: BTreeMap<(u64, i64), BarrierSample> = BTreeMap::new();
        for node in nodes.iter().filter(|n| n.clock == reference) {
            for s in &node.spans {
                if s.worker == NO_WORKER {
                    continue;
                }
                let e = server_ends.entry((s.step, s.worker)).or_default();
                match s.name.as_str() {
                    "recv_push" => e.t1 = Some(s.end_ns),
                    "send_pull" => e.t2 = Some(s.start_ns),
                    _ => {}
                }
            }
        }

        let mut offsets = Vec::new();
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for node in nodes {
            dropped += node.dropped;
            let (offset_ns, rtt_ns, samples) = if node.clock == reference {
                (0i64, 0u64, 0usize)
            } else {
                estimate_offset(node, &server_ends)
            };
            if node.clock != reference {
                offsets.push(ClockOffset {
                    clock: node.clock.clone(),
                    offset_ns,
                    rtt_ns,
                    samples,
                });
            }
            for s in &node.spans {
                let aligned = shift(s, offset_ns);
                if s.name == "network" && s.worker != NO_WORKER {
                    if let Some(e) = server_ends.get(&(s.step, s.worker)) {
                        if let (Some(t1), Some(t2)) = (e.t1, e.t2) {
                            split_network(aligned, t1, t2, &mut spans);
                            continue;
                        }
                    }
                }
                spans.push(aligned);
            }
        }

        // Normalize: earliest span starts at zero.
        let min = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        for s in &mut spans {
            s.start_ns -= min;
        }
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.node.cmp(&b.node))
                .then(a.span.cmp(&b.span))
        });
        MergedTimeline {
            spans,
            offsets,
            dropped,
        }
    }

    /// Steps present in the timeline, ascending.
    pub fn steps(&self) -> Vec<u64> {
        let mut steps: Vec<u64> = self.spans.iter().map(|s| s.step).collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Total seconds spent in `phase` at `step`, summed over all lanes.
    pub fn phase_seconds(&self, step: u64, phase: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.step == step && s.name == phase)
            .map(|s| s.dur_ns as f64 / 1e9)
            .sum()
    }

    /// Chrome-trace ("Trace Event Format") JSON, loadable in
    /// `chrome://tracing` and Perfetto. Lanes map to pids: the server is
    /// pid 0, workers follow by worker number.
    pub fn chrome_json(&self) -> String {
        // Stable lane ordering: server first, then workers numerically,
        // then anything else alphabetically.
        let mut lanes: Vec<&str> = self.spans.iter().map(|s| s.node.as_str()).collect();
        lanes.sort_by_key(|l| lane_order(l));
        lanes.dedup();
        let pid_of = |lane: &str| -> usize { lanes.iter().position(|l| *l == lane).unwrap_or(0) };

        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for lane in &lanes {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                pid_of(lane),
                escape(lane)
            );
        }
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":0,\"name\":\"{}\",\"cat\":\"threelc\",\"args\":{{\"step\":{},\"worker\":{}}}}}",
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                pid_of(&s.node),
                escape(&s.name),
                s.step,
                s.worker
            );
        }
        // Flow events: one arrow chain per (step, worker) linking the
        // push leaving the worker lane → the server receiving it → the
        // aggregate → the pull send → the pull landing back on the
        // worker lane, so cross-node causality is visible in the UI.
        // Point order: [push start, recv end, aggregate start, send_pull
        // start, pull start]; each point is (pid, ts).
        type FlowPoints = [Option<(usize, u64)>; 5];
        let mut flows: BTreeMap<(u64, i64), FlowPoints> = BTreeMap::new();
        let mut aggregates: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
        for s in &self.spans {
            if s.name == "aggregate" && s.worker == NO_WORKER {
                let e = aggregates.entry(s.step).or_insert((0, u64::MAX));
                if s.start_ns < e.1 {
                    *e = (pid_of(&s.node), s.start_ns);
                }
            }
            if s.worker == NO_WORKER {
                continue;
            }
            let key = (s.step, s.worker);
            let on_worker_lane = s.node.starts_with("worker");
            let point: Option<(usize, usize, u64)> = match s.name.as_str() {
                "network" if on_worker_lane => Some((0, pid_of(&s.node), s.start_ns)),
                "recv_push" => Some((1, pid_of(&s.node), s.start_ns + s.dur_ns)),
                "send_pull" => Some((3, pid_of(&s.node), s.start_ns)),
                "pull" if on_worker_lane => Some((4, pid_of(&s.node), s.start_ns)),
                _ => None,
            };
            if let Some((slot, pid, ts)) = point {
                let entry = flows.entry(key).or_default();
                // Earliest network/pull start, latest recv end,
                // earliest send start.
                let better = match entry[slot] {
                    None => true,
                    Some((_, old)) => {
                        if slot == 1 {
                            ts > old
                        } else {
                            ts < old
                        }
                    }
                };
                if better {
                    entry[slot] = Some((pid, ts));
                }
            }
        }
        for ((step, worker), slots) in &flows {
            let mut points: Vec<(usize, u64)> = Vec::new();
            for (slot, p) in slots.iter().enumerate() {
                if slot == 2 {
                    if let Some(&agg) = aggregates.get(step) {
                        points.push(agg);
                    }
                }
                if let Some(p) = p {
                    points.push(*p);
                }
            }
            if points.len() < 2 {
                continue;
            }
            // Chrome requires nondecreasing timestamps along one flow id.
            let mut last = 0u64;
            let id = step.wrapping_mul(4_096).wrapping_add((*worker + 1) as u64);
            for (i, (pid, ts)) in points.iter().enumerate() {
                let ts = (*ts).max(last);
                last = ts;
                let (ph, bind) = if i == 0 {
                    ("s", "")
                } else if i == points.len() - 1 {
                    ("f", ",\"bp\":\"e\"")
                } else {
                    ("t", "")
                };
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"ph\":\"{ph}\",\"id\":{id},\"pid\":{pid},\"tid\":0,\"ts\":{:.3},\"name\":\"bsp\",\"cat\":\"bsp-flow\"{bind},\"args\":{{\"step\":{step},\"worker\":{worker}}}}}",
                    ts as f64 / 1e3
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Terminal per-step breakdown of the nine phases (milliseconds,
    /// summed across lanes), plus the clock-offset estimates. Rows are
    /// capped at `max_steps` (0 = all).
    pub fn render_text(&self, max_steps: usize) -> String {
        let mut out = String::new();
        for off in &self.offsets {
            let _ = writeln!(
                out,
                "clock {:<10} offset {:>+10.3} ms  rtt {:>8.3} ms  ({} barrier samples)",
                off.clock,
                off.offset_ns as f64 / 1e6,
                off.rtt_ns as f64 / 1e6,
                off.samples
            );
        }
        let _ = write!(out, "{:>6}", "step");
        for p in PHASES {
            let _ = write!(out, " {:>12}", p);
        }
        out.push('\n');
        let steps = self.steps();
        let shown = if max_steps == 0 {
            steps.len()
        } else {
            steps.len().min(max_steps)
        };
        for &step in steps.iter().take(shown) {
            let _ = write!(out, "{:>6}", step);
            for p in PHASES {
                let _ = write!(out, " {:>10.3}ms", self.phase_seconds(step, p) * 1e3);
            }
            out.push('\n');
        }
        if shown < steps.len() {
            let _ = writeln!(out, "… {} more steps", steps.len() - shown);
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} spans dropped by ring buffers",
                self.dropped
            );
        }
        out
    }
}

/// Splits one aligned worker `network` span at the server-side barrier
/// endpoints `T1` (push fully received) and `T2` (pull about to be
/// written), both already on the reference axis: the middle becomes an
/// explicit `barrier-wait` span, the flanks stay `network` (true
/// transit). Degenerate overlaps (clock estimation error pushing `T1`/
/// `T2` outside the span) fall back to the unsplit span.
fn split_network(s: AlignedSpan, t1: u64, t2: u64, out: &mut Vec<AlignedSpan>) {
    let start = s.start_ns;
    let end = s.start_ns + s.dur_ns;
    let lo = t1.clamp(start, end);
    let hi = t2.clamp(lo, end);
    if hi <= lo {
        out.push(s);
        return;
    }
    let mut piece = |name: &str, a: u64, b: u64, id_salt: u64| {
        if b > a {
            out.push(AlignedSpan {
                node: s.node.clone(),
                name: name.to_string(),
                step: s.step,
                worker: s.worker,
                start_ns: a,
                dur_ns: b - a,
                trace: s.trace,
                span: s.span.wrapping_add(id_salt),
                parent: s.parent,
            });
        }
    };
    piece("network", start, lo, 0);
    piece("barrier-wait", lo, hi, 1 << 62);
    piece("network", hi, end, 1 << 63);
}

fn shift(s: &SpanRecord, offset_ns: i64) -> AlignedSpan {
    let start = s.start_ns as i128 + offset_ns as i128;
    AlignedSpan {
        node: s.node.clone(),
        name: s.name.clone(),
        step: s.step,
        worker: s.worker,
        start_ns: start.max(0) as u64,
        dur_ns: s.end_ns.saturating_sub(s.start_ns),
        trace: s.trace,
        span: s.span,
        parent: s.parent,
    }
}

/// Estimates `node`'s offset to the reference clock from barrier samples.
fn estimate_offset(
    node: &NodeTrace,
    server_ends: &BTreeMap<(u64, i64), BarrierSample>,
) -> (i64, u64, usize) {
    let mut offsets: Vec<i128> = Vec::new();
    let mut rtts: Vec<i128> = Vec::new();
    for s in &node.spans {
        if s.name != "network" || s.worker == NO_WORKER {
            continue;
        }
        let Some(e) = server_ends.get(&(s.step, s.worker)) else {
            continue;
        };
        let (Some(t1), Some(t2)) = (e.t1, e.t2) else {
            continue;
        };
        let (t0, t3) = (s.start_ns as i128, s.end_ns as i128);
        let (t1, t2) = (t1 as i128, t2 as i128);
        // offset = ((T1 - t0) + (T2 - t3)) / 2 moves worker time onto the
        // server axis; rtt = (t3 - t0) - (T2 - T1) is the network-only
        // round trip, the bound on the estimate's error.
        offsets.push(((t1 - t0) + (t2 - t3)) / 2);
        rtts.push((t3 - t0) - (t2 - t1));
    }
    if offsets.is_empty() {
        return (0, 0, 0);
    }
    let n = offsets.len();
    (
        median(&mut offsets) as i64,
        median(&mut rtts).max(0) as u64,
        n,
    )
}

/// Lower-middle median (does not average the two central elements).
fn median(v: &mut [i128]) -> i128 {
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

fn lane_order(lane: &str) -> (u8, u64, String) {
    if lane == "server" {
        (0, 0, String::new())
    } else if let Some(n) = lane.strip_prefix("worker").and_then(|r| r.parse().ok()) {
        (1, n, String::new())
    } else {
        (2, 0, lane.to_string())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NodeTrace;

    fn rec(
        name: &str,
        node: &str,
        step: u64,
        worker: i64,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span: start_ns.wrapping_add(end_ns).wrapping_add(step) | 1,
            parent: 0,
            name: name.into(),
            node: node.into(),
            step,
            worker,
            start_ns,
            end_ns,
        }
    }

    /// Builds one barrier exchange per step: the *true* (server-axis)
    /// event times are t0=base+1000, T1=base+1100, T2=base+2000,
    /// t3=base+2100 — a symmetric 200 ns round trip. The worker's clock
    /// reads true time + `skew`.
    fn two_node_traces(skew: i64, steps: u64) -> Vec<NodeTrace> {
        let mut server = Vec::new();
        let mut worker = Vec::new();
        for step in 0..steps {
            let base = step * 10_000;
            server.push(rec(
                "recv_push",
                "server",
                step,
                0,
                base + 1_050,
                base + 1_100,
            ));
            server.push(rec(
                "send_pull",
                "server",
                step,
                0,
                base + 2_000,
                base + 2_050,
            ));
            let w = |t: u64| (t as i64 + skew) as u64;
            worker.push(rec(
                "network",
                "worker0",
                step,
                0,
                w(base + 1_000),
                w(base + 2_100),
            ));
            worker.push(rec(
                "quantize",
                "worker0",
                step,
                0,
                w(base + 100),
                w(base + 400),
            ));
        }
        vec![
            NodeTrace {
                clock: "server".into(),
                spans: server,
                dropped: 0,
            },
            NodeTrace {
                clock: "worker0".into(),
                spans: worker,
                dropped: 0,
            },
        ]
    }

    #[test]
    fn known_skew_is_recovered_exactly_for_symmetric_delay() {
        for skew in [-5_000_000i64, -333, 0, 4_096, 7_000_000] {
            let tl = MergedTimeline::build(&two_node_traces(skew, 6));
            assert_eq!(tl.offsets.len(), 1);
            let off = &tl.offsets[0];
            assert_eq!(off.clock, "worker0");
            // Symmetric delay → the estimator recovers −skew exactly.
            assert_eq!(off.offset_ns, -skew, "skew {skew}");
            assert_eq!(off.rtt_ns, 200);
            assert_eq!(off.samples, 6);
        }
    }

    #[test]
    fn alignment_error_is_within_one_barrier_rtt_under_asymmetry() {
        // Asymmetric delay: push takes 90 ns, pull takes 10 ns (total
        // RTT unchanged at 100). True t0=1000 → T1 at 1090; T2=2000 →
        // t3 at 2010. Worker clock skewed by +12345.
        let skew = 12_345i64;
        let w = |t: u64| (t as i64 + skew) as u64;
        let nodes = vec![
            NodeTrace {
                clock: "server".into(),
                spans: vec![
                    rec("recv_push", "server", 0, 0, 1_050, 1_090),
                    rec("send_pull", "server", 0, 0, 2_000, 2_040),
                ],
                dropped: 0,
            },
            NodeTrace {
                clock: "worker0".into(),
                spans: vec![rec("network", "worker0", 0, 0, w(1_000), w(2_010))],
                dropped: 0,
            },
        ];
        let tl = MergedTimeline::build(&nodes);
        let off = &tl.offsets[0];
        let err = (off.offset_ns + skew).unsigned_abs();
        assert!(off.rtt_ns > 0);
        assert!(
            err <= off.rtt_ns,
            "error {err} exceeds one rtt {}",
            off.rtt_ns
        );
    }

    #[test]
    fn merged_spans_land_on_one_normalized_axis() {
        let tl = MergedTimeline::build(&two_node_traces(1_000_000, 3));
        // After alignment the worker's quantize span (true start
        // base+100) is the earliest event and normalizes to 0.
        let earliest = tl.spans.first().expect("spans");
        assert_eq!(earliest.name, "quantize");
        assert_eq!(earliest.start_ns, 0);
        // The step-0 network span's true start is 1000 − 100 after
        // normalization = 900 on the shared axis. Because the server-side
        // endpoints for the pair are known (T1=1100, T2=2000 true time),
        // the raw [1000, 2100) span splits into network / barrier-wait /
        // network on the aligned axis.
        let step0: Vec<&AlignedSpan> = tl
            .spans
            .iter()
            .filter(|s| s.step == 0 && (s.name == "network" || s.name == "barrier-wait"))
            .collect();
        assert_eq!(step0.len(), 3, "split into transit/wait/transit");
        assert_eq!(
            (step0[0].name.as_str(), step0[0].start_ns, step0[0].dur_ns),
            ("network", 900, 100)
        );
        assert_eq!(
            (step0[1].name.as_str(), step0[1].start_ns, step0[1].dur_ns),
            ("barrier-wait", 1_000, 900)
        );
        assert_eq!(
            (step0[2].name.as_str(), step0[2].start_ns, step0[2].dur_ns),
            ("network", 1_900, 100)
        );
        // The pieces tile the original span exactly: total network +
        // barrier-wait time equals the raw 1100 ns.
        assert_eq!(
            tl.phase_seconds(0, "network") + tl.phase_seconds(0, "barrier-wait"),
            1_100e-9
        );
    }

    #[test]
    fn chrome_json_contains_lanes_and_phases() {
        let tl = MergedTimeline::build(&two_node_traces(0, 2));
        let json = tl.chrome_json();
        let v: serde::Value = serde_json::from_str(&json).expect("chrome JSON parses");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(events.len() >= 2 + 2 * 4);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"process_name"));
        assert!(names.contains(&"network"));
        assert!(names.contains(&"quantize"));
    }

    #[test]
    fn phase_breakdown_sums_lanes_and_renders() {
        let tl = MergedTimeline::build(&two_node_traces(0, 2));
        assert!((tl.phase_seconds(0, "quantize") - 300e-9).abs() < 1e-15);
        assert_eq!(tl.phase_seconds(0, "re-encode"), 0.0);
        let text = tl.render_text(1);
        assert!(text.contains("quantize"));
        assert!(text.contains("… 1 more steps"));
    }

    #[test]
    fn single_clock_traces_pass_through_unshifted() {
        let nodes = vec![NodeTrace {
            clock: "sim".into(),
            spans: vec![rec("compute", "worker0", 0, 0, 500, 900)],
            dropped: 3,
        }];
        let tl = MergedTimeline::build(&nodes);
        assert!(tl.offsets.is_empty());
        assert_eq!(tl.spans[0].start_ns, 0); // normalized
        assert_eq!(tl.spans[0].dur_ns, 400);
        assert_eq!(tl.dropped, 3);
    }
}
