//! Timed spans: RAII guards that measure a monotonic duration and feed it
//! into a histogram when dropped.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A live span. Created by [`Registry::span`](crate::Registry::span), the
/// [`span!`](crate::span!) macro, or [`SpanGuard::on`] with a cached histogram handle.
///
/// Dropping the guard records the elapsed seconds; [`finish`](Self::finish)
/// does the same but also returns the measured duration.
#[must_use = "a span measures nothing unless it is held until the work completes"]
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
    /// Set by [`finish`](Self::finish) so the `Drop` impl records the
    /// duration only when `finish()` was never called — each span feeds
    /// its histogram exactly once.
    finished: bool,
}

impl SpanGuard {
    /// Starts a span feeding `hist` on completion.
    pub fn on(hist: Arc<Histogram>) -> Self {
        SpanGuard {
            hist,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Elapsed seconds so far, without ending the span.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span, records the duration, and returns it in seconds.
    pub fn finish(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.finished = true;
        self.hist.record(secs);
        secs
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            self.hist.record(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Opens a span on the global registry: `span!("compress")` returns a
/// guard recording into `span.compress.seconds` when dropped.
///
/// Optional `key = value` fields emit a `Debug`-level structured event at
/// span open (only when debug logging is enabled):
/// `span!("compress", tensor = id)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::emit(
                $crate::Level::Debug,
                concat!("span.", $name),
                &[$((stringify!($key), format!("{:?}", $value))),+],
            );
        }
        $crate::global().span($name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_returns_and_records_the_duration() {
        let hist = Arc::new(Histogram::new());
        let guard = SpanGuard::on(Arc::clone(&hist));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = guard.finish();
        assert!(secs >= 0.002, "slept 2ms but measured {secs}");
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, secs);
    }

    #[test]
    fn drop_records_exactly_once() {
        let hist = Arc::new(Histogram::new());
        {
            let _guard = SpanGuard::on(Arc::clone(&hist));
        }
        assert_eq!(hist.snapshot().count, 1);
    }

    #[test]
    fn finish_then_drop_records_exactly_once() {
        // Regression: `finish()` consumes self, so its drop still runs —
        // the guard must not feed the histogram a second time.
        let hist = Arc::new(Histogram::new());
        let guard = SpanGuard::on(Arc::clone(&hist));
        let secs = guard.finish();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, secs);
    }

    #[test]
    fn span_macro_uses_the_global_registry() {
        {
            let _guard = crate::span!("macro_test", tensor = 3usize);
        }
        let snap = crate::global().snapshot();
        let h = snap
            .histogram("span.macro_test.seconds")
            .expect("span histogram registered globally");
        assert!(h.count >= 1);
    }
}
