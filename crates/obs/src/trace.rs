//! Distributed tracing: span records, per-node ring buffers, and
//! thread-local trace scopes that flow across layers and — via
//! `threelc-net`'s frame trace-context extension — across nodes.
//!
//! Tracing is **off by default**. Setting `THREELC_TRACE=1` (or `true`,
//! `on`) enables it; [`set_trace_enabled`] overrides at runtime. When
//! disabled, every probe in this module is a single relaxed atomic load —
//! no allocation, no clock read, no lock.
//!
//! # Model
//!
//! - A [`SpanRecord`] is one timed phase (`quantize`, `network`,
//!   `aggregate`, …) with a parent link, a step number, and start/end
//!   timestamps in nanoseconds on the recording process's monotonic clock.
//! - A [`TraceBuffer`] is a bounded ring of records. Each *process* (one
//!   clock domain) owns one buffer; when it fills, the oldest records are
//!   dropped and counted, so tracing a long run cannot exhaust memory.
//! - A [`TraceScope`] installs a thread-local recording context (buffer,
//!   node name, trace id, step, worker id). [`TraceSpan`]s opened while a
//!   scope is active record into that scope's buffer with parent links
//!   maintained by a per-thread span stack.
//! - [`NodeTrace`] is the wire/export form of one buffer: the clock-domain
//!   label plus the records. `threelc-net`'s `TraceDump` message carries
//!   exactly this, JSON-encoded, so the server can collect every node's
//!   records after a run.
//!
//! Timestamps are nanoseconds since a per-process epoch ([`now_ns`]), so
//! records from different nodes are *not* directly comparable — the
//! [`timeline`](crate::timeline) module estimates per-node clock offsets
//! from barrier round-trips and merges buffers onto one axis.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enablement and the process clock
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is enabled for this process (the `THREELC_TRACE`
/// environment variable, unless overridden by [`set_trace_enabled`]).
/// This is the guard in front of every probe: when tracing is off it is
/// one relaxed atomic load.
pub fn trace_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("THREELC_TRACE")
                .map(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    v == "1" || v == "true" || v == "on"
                })
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the tracing switch (wins over `THREELC_TRACE`). In-process
/// tests use this; the CLI relies on the environment variable.
pub fn set_trace_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since this process's trace epoch (monotonic). Values are
/// only comparable within one process; cross-node alignment is the
/// timeline reconstruction's job.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Derives the run-wide trace id every node computes independently from
/// the experiment seed (so no extra handshake message is needed). The
/// result is never zero — zero means "no context" on the wire.
pub fn run_trace_id(seed: u64) -> u64 {
    // SplitMix64 finalizer: a cheap, well-mixed bijection.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

// ---------------------------------------------------------------------------
// Records and buffers
// ---------------------------------------------------------------------------

/// Worker id recorded on spans that are not specific to one worker.
pub const NO_WORKER: i64 = -1;

/// A cross-node trace context: the run's trace id and the sender's
/// currently open span (the remote parent). All-zero means "absent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Run-wide trace id ([`run_trace_id`]); 0 = none.
    pub trace: u64,
    /// The sender's open span id; 0 = none.
    pub span: u64,
}

impl TraceCtx {
    /// Whether this context carries no information.
    pub fn is_none(&self) -> bool {
        self.trace == 0 && self.span == 0
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Run-wide trace id.
    pub trace: u64,
    /// Span id, unique within its [`TraceBuffer`].
    pub span: u64,
    /// Parent span id (0 = root). May reference a span in *another*
    /// node's buffer when the parent arrived over the wire.
    #[serde(default)]
    pub parent: u64,
    /// Phase name (`quantize`, `network`, `aggregate`, …).
    pub name: String,
    /// Logical lane this span belongs to (`server`, `worker0`, …).
    pub node: String,
    /// Training step (0 during handshake/shutdown).
    pub step: u64,
    /// Worker id the span concerns, or [`NO_WORKER`].
    #[serde(default = "no_worker")]
    pub worker: i64,
    /// Start, nanoseconds on the recording process's clock.
    pub start_ns: u64,
    /// End, nanoseconds on the recording process's clock.
    pub end_ns: u64,
}

fn no_worker() -> i64 {
    NO_WORKER
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e9
    }
}

/// One node's collected records: what `TraceDump` carries and what the
/// timeline reconstruction consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTrace {
    /// Clock-domain label — every span in `spans` was timestamped by this
    /// process's monotonic clock (`server`, `worker0`, `sim`, …).
    pub clock: String,
    /// The records, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Records evicted because the ring buffer filled.
    #[serde(default)]
    pub dropped: u64,
}

/// A bounded ring buffer of span records. One per process (clock domain);
/// shared across that process's threads behind an `Arc`.
#[derive(Debug)]
pub struct TraceBuffer {
    records: Mutex<VecDeque<SpanRecord>>,
    cap: usize,
    dropped: AtomicU64,
    next_span: AtomicU64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl TraceBuffer {
    /// Default ring capacity: enough for thousands of steps of the eight
    /// per-step phases, small enough to never matter (~100 B/record).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a buffer holding at most `cap` records (min 1).
    pub fn with_capacity(cap: usize) -> TraceBuffer {
        TraceBuffer {
            records: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
        }
    }

    /// Allocates a buffer-unique span id (never 0).
    fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, rec: SpanRecord) {
        let mut records = self.records.lock().expect("trace buffer poisoned");
        if records.len() == self.cap {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(rec);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("trace buffer poisoned").len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the current contents without clearing (live scrapes).
    pub fn snapshot(&self, clock: &str) -> NodeTrace {
        let records = self.records.lock().expect("trace buffer poisoned");
        NodeTrace {
            clock: clock.to_string(),
            spans: records.iter().cloned().collect(),
            dropped: self.dropped(),
        }
    }

    /// Takes the contents, leaving the buffer empty (end-of-run dumps).
    pub fn drain(&self, clock: &str) -> NodeTrace {
        let mut records = self.records.lock().expect("trace buffer poisoned");
        NodeTrace {
            clock: clock.to_string(),
            spans: std::mem::take(&mut *records).into(),
            dropped: self.dropped(),
        }
    }
}

/// The process-wide default buffer (clock domain of this process). The
/// in-process simulator records here; networked roles create their own
/// buffers so a loopback test's server and workers stay separable.
pub fn global_buffer() -> &'static Arc<TraceBuffer> {
    static GLOBAL: OnceLock<Arc<TraceBuffer>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(TraceBuffer::default()))
}

// ---------------------------------------------------------------------------
// Thread-local scopes and spans
// ---------------------------------------------------------------------------

struct ScopeState {
    buffer: Arc<TraceBuffer>,
    node: String,
    trace: u64,
    step: u64,
    worker: i64,
    /// Open span ids, innermost last (the parent stack).
    stack: Vec<u64>,
}

thread_local! {
    static SCOPES: RefCell<Vec<ScopeState>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard installing a thread-local recording context. Everything a
/// [`TraceSpan`] needs — buffer, node lane, trace id, step, worker — comes
/// from the innermost active scope, so instrumented code (the codec, the
/// engine) needs no tracing parameters threaded through it.
///
/// Inert (and free) when tracing is disabled.
#[must_use = "the scope deactivates when dropped"]
pub struct TraceScope {
    active: bool,
    /// Scopes must drop on the thread that entered them.
    _not_send: PhantomData<*const ()>,
}

impl TraceScope {
    /// Installs a scope on the current thread. `worker` is the worker id
    /// spans in this scope concern, or [`NO_WORKER`].
    pub fn enter(
        buffer: &Arc<TraceBuffer>,
        node: &str,
        trace: u64,
        step: u64,
        worker: i64,
    ) -> TraceScope {
        if !trace_enabled() {
            return TraceScope {
                active: false,
                _not_send: PhantomData,
            };
        }
        SCOPES.with(|scopes| {
            scopes.borrow_mut().push(ScopeState {
                buffer: Arc::clone(buffer),
                node: node.to_string(),
                trace,
                step,
                worker,
                stack: Vec::new(),
            });
        });
        TraceScope {
            active: true,
            _not_send: PhantomData,
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.active {
            SCOPES.with(|scopes| {
                scopes.borrow_mut().pop();
            });
        }
    }
}

/// Whether a recording scope is active on this thread (the guard for
/// instrumentation whose bookkeeping is more than a clock read).
pub fn scope_active() -> bool {
    trace_enabled() && SCOPES.with(|s| !s.borrow().is_empty())
}

/// The current trace context (run trace id plus innermost open span), for
/// propagation on the wire. `None` when no scope is active.
pub fn current_ctx() -> Option<TraceCtx> {
    if !trace_enabled() {
        return None;
    }
    SCOPES.with(|scopes| {
        let scopes = scopes.borrow();
        scopes.last().map(|s| TraceCtx {
            trace: s.trace,
            span: s.stack.last().copied().unwrap_or(0),
        })
    })
}

/// Records an already-timed phase `[start_ns, end_ns]` under the current
/// scope (parented to the innermost open span). Used where a phase
/// boundary is known from measurements rather than bracketed by a guard
/// (the engine's decode/aggregate/re-encode split). No-op without a scope.
pub fn record_span(name: &str, start_ns: u64, end_ns: u64) {
    if !trace_enabled() {
        return;
    }
    SCOPES.with(|scopes| {
        let scopes = scopes.borrow();
        if let Some(s) = scopes.last() {
            let span = s.buffer.next_span_id();
            s.buffer.push(SpanRecord {
                trace: s.trace,
                span,
                parent: s.stack.last().copied().unwrap_or(0),
                name: name.to_string(),
                node: s.node.clone(),
                step: s.step,
                worker: s.worker,
                start_ns,
                end_ns,
            });
        }
    });
}

/// A live span under the innermost [`TraceScope`]. Inert (and free) when
/// tracing is off or no scope is active. The record is pushed when the
/// span [`finish`](Self::finish)es or drops, whichever comes first —
/// never twice.
///
/// Spans on one thread must close in LIFO order (guaranteed by RAII use).
#[must_use = "a span measures nothing unless it is held until the work completes"]
pub struct TraceSpan {
    live: bool,
    name: &'static str,
    span: u64,
    parent: u64,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

impl TraceSpan {
    /// Opens a span named `name` under the current scope.
    pub fn start(name: &'static str) -> TraceSpan {
        let inert = TraceSpan {
            live: false,
            name,
            span: 0,
            parent: 0,
            start_ns: 0,
            _not_send: PhantomData,
        };
        if !trace_enabled() {
            return inert;
        }
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            match scopes.last_mut() {
                None => inert,
                Some(s) => {
                    let span = s.buffer.next_span_id();
                    let parent = s.stack.last().copied().unwrap_or(0);
                    s.stack.push(span);
                    TraceSpan {
                        live: true,
                        name,
                        span,
                        parent,
                        start_ns: now_ns(),
                        _not_send: PhantomData,
                    }
                }
            }
        })
    }

    /// Replaces the parent link with a context received over the wire
    /// (cross-node parenting: the server's receive span points at the
    /// worker span that sent the frames).
    pub fn set_remote_parent(&mut self, ctx: TraceCtx) {
        if self.live && ctx.span != 0 {
            self.parent = ctx.span;
        }
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        if self.live {
            self.span
        } else {
            0
        }
    }

    /// Ends the span and pushes its record.
    pub fn finish(mut self) {
        self.end();
    }

    fn end(&mut self) {
        if !self.live {
            return;
        }
        self.live = false;
        let end_ns = now_ns();
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            if let Some(s) = scopes.last_mut() {
                // LIFO discipline: this span should be the innermost open
                // one. Tolerate (and repair) a mis-nested close.
                if let Some(pos) = s.stack.iter().rposition(|&id| id == self.span) {
                    s.stack.truncate(pos);
                }
                s.buffer.push(SpanRecord {
                    trace: s.trace,
                    span: self.span,
                    parent: self.parent,
                    name: self.name.to_string(),
                    node: s.node.clone(),
                    step: s.step,
                    worker: s.worker,
                    start_ns: self.start_ns,
                    end_ns,
                });
            }
        });
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tests toggle the process-global enablement flag; serialize them so
    /// the parallel test runner cannot interleave toggles.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn scoped_buffer() -> Arc<TraceBuffer> {
        set_trace_enabled(true);
        Arc::new(TraceBuffer::default())
    }

    #[test]
    fn spans_record_with_parent_links() {
        let _g = lock();
        let buf = scoped_buffer();
        {
            let _scope = TraceScope::enter(&buf, "worker0", 77, 3, 0);
            let outer = TraceSpan::start("step");
            let outer_id = outer.id();
            {
                let inner = TraceSpan::start("quantize");
                assert_ne!(inner.id(), 0);
                inner.finish();
            }
            outer.finish();
            assert_eq!(buf.len(), 2);
            let nt = buf.snapshot("worker0");
            let inner = &nt.spans[0];
            let outer_rec = &nt.spans[1];
            assert_eq!(inner.name, "quantize");
            assert_eq!(inner.parent, outer_id);
            assert_eq!(inner.trace, 77);
            assert_eq!(inner.step, 3);
            assert_eq!(inner.worker, 0);
            assert_eq!(inner.node, "worker0");
            assert_eq!(outer_rec.parent, 0);
            assert!(inner.start_ns >= outer_rec.start_ns);
            assert!(inner.end_ns <= outer_rec.end_ns);
        }
        set_trace_enabled(false);
    }

    #[test]
    fn drop_and_finish_record_exactly_once() {
        let _g = lock();
        let buf = scoped_buffer();
        {
            let _scope = TraceScope::enter(&buf, "n", 1, 0, NO_WORKER);
            let s = TraceSpan::start("a");
            s.finish(); // explicit finish; the drop that follows must not double-record
            let _implicit = TraceSpan::start("b"); // dropped at block end
        }
        assert_eq!(buf.len(), 2);
        set_trace_enabled(false);
    }

    #[test]
    fn no_scope_means_no_records() {
        let _g = lock();
        set_trace_enabled(true);
        let s = TraceSpan::start("orphan");
        assert_eq!(s.id(), 0);
        s.finish();
        record_span("orphan2", 1, 2);
        assert!(current_ctx().is_none());
        assert!(!scope_active());
        set_trace_enabled(false);
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = lock();
        set_trace_enabled(false);
        let buf = Arc::new(TraceBuffer::default());
        let _scope = TraceScope::enter(&buf, "n", 1, 0, NO_WORKER);
        let s = TraceSpan::start("x");
        s.finish();
        assert!(buf.is_empty());
        assert!(current_ctx().is_none());
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let _g = lock();
        set_trace_enabled(true);
        let buf = Arc::new(TraceBuffer::with_capacity(2));
        {
            let _scope = TraceScope::enter(&buf, "n", 1, 0, NO_WORKER);
            for _ in 0..5 {
                TraceSpan::start("s").finish();
            }
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let nt = buf.drain("n");
        assert_eq!(nt.spans.len(), 2);
        assert_eq!(nt.dropped, 3);
        assert!(buf.is_empty());
        set_trace_enabled(false);
    }

    #[test]
    fn current_ctx_tracks_the_open_span() {
        let _g = lock();
        let buf = scoped_buffer();
        {
            let _scope = TraceScope::enter(&buf, "n", 42, 0, NO_WORKER);
            assert_eq!(current_ctx(), Some(TraceCtx { trace: 42, span: 0 }));
            let s = TraceSpan::start("x");
            assert_eq!(
                current_ctx(),
                Some(TraceCtx {
                    trace: 42,
                    span: s.id()
                })
            );
            s.finish();
        }
        set_trace_enabled(false);
    }

    #[test]
    fn record_span_uses_the_scope_and_given_bounds() {
        let _g = lock();
        let buf = scoped_buffer();
        {
            let _scope = TraceScope::enter(&buf, "server", 9, 5, NO_WORKER);
            record_span("server-decode", 100, 250);
        }
        let nt = buf.drain("server");
        assert_eq!(nt.spans.len(), 1);
        assert_eq!(nt.spans[0].name, "server-decode");
        assert_eq!(nt.spans[0].start_ns, 100);
        assert_eq!(nt.spans[0].end_ns, 250);
        assert!((nt.spans[0].seconds() - 150e-9).abs() < 1e-15);
        set_trace_enabled(false);
    }

    #[test]
    fn remote_parent_overrides_the_local_link() {
        let _g = lock();
        let buf = scoped_buffer();
        {
            let _scope = TraceScope::enter(&buf, "server", 1, 0, 2);
            let mut s = TraceSpan::start("recv_push");
            s.set_remote_parent(TraceCtx {
                trace: 1,
                span: 999,
            });
            s.finish();
        }
        assert_eq!(buf.drain("server").spans[0].parent, 999);
        set_trace_enabled(false);
    }

    #[test]
    fn run_trace_id_is_stable_nonzero_and_seed_sensitive() {
        assert_eq!(run_trace_id(5), run_trace_id(5));
        assert_ne!(run_trace_id(5), run_trace_id(6));
        assert_ne!(run_trace_id(0), 0);
        assert_eq!(run_trace_id(123) & 1, 1);
    }

    #[test]
    fn node_trace_serde_roundtrip() {
        let nt = NodeTrace {
            clock: "worker1".into(),
            spans: vec![SpanRecord {
                trace: 7,
                span: 1,
                parent: 0,
                name: "encode".into(),
                node: "worker1".into(),
                step: 4,
                worker: 1,
                start_ns: 10,
                end_ns: 30,
            }],
            dropped: 2,
        };
        let json = serde_json::to_string(&nt).expect("serialize");
        let back: NodeTrace = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, nt);
    }
}
