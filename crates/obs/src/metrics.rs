//! The three metric primitives: counters, gauges, and log-bucketed
//! histograms. All of them are lock-free — safe to hammer from every
//! handler thread of a parameter server.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (one underflow, 62 power-of-two buckets,
/// one overflow).
pub const BUCKETS: usize = 64;

/// Exponent of the first finite bucket boundary: bucket 1 starts at
/// `2^MIN_EXP` (≈ 0.93 ns when recording seconds).
pub(crate) const MIN_EXP: i64 = -30;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins measurement (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Folds `v` into an atomic `f64` cell with a compare-exchange loop.
fn atomic_f64_update(cell: &AtomicU64, v: f64, fold: impl Fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = fold(f64::from_bits(current), v).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// The bucket index for a value.
///
/// Boundaries are exact powers of two, computed from the `f64` bit
/// pattern (not a floating `log2`), so placement at boundaries is exact:
/// bucket 0 holds everything below `2^MIN_EXP` (including zero, negative,
/// and NaN inputs), bucket `i ∈ 1..=62` holds `[2^(i-31), 2^(i-30))`, and
/// bucket 63 holds everything from `2^32` up (including `+∞`).
pub(crate) fn bucket_of(v: f64) -> usize {
    let min = f64::from_bits(((MIN_EXP + 1023) as u64) << 52);
    if v.is_nan() || v < min {
        return 0; // below the first boundary, non-positive, or NaN
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exp - MIN_EXP + 1).clamp(1, BUCKETS as i64 - 1) as usize
}

/// The inclusive lower bound of bucket `i` (0.0 for the underflow bucket).
pub fn bucket_lower_bound(i: usize) -> f64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0.0
    } else {
        exp2(i as i64 + MIN_EXP - 1)
    }
}

/// The exclusive upper bound of bucket `i` (`+∞` for the overflow bucket).
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == BUCKETS - 1 {
        f64::INFINITY
    } else {
        exp2(i as i64 + MIN_EXP)
    }
}

/// Exact `2^e` for in-range exponents, via the bit pattern.
fn exp2(e: i64) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// A log-bucketed histogram: power-of-two buckets plus exact count, sum,
/// min, and max. Recording is a handful of relaxed atomic operations;
/// percentiles come from the bucket counts at snapshot time.
///
/// A histogram covers ~28 decimal orders of magnitude (`2^-30` to
/// `2^32`), wide enough for seconds, byte counts, and compression ratios
/// alike; values outside land in the under/overflow buckets and still
/// count toward `count`/`sum`/`min`/`max` exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, v, |a, b| a + b);
        atomic_f64_update(&self.min_bits, v, f64::min);
        atomic_f64_update(&self.max_bits, v, f64::max);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    ///
    /// Taken field-by-field with relaxed loads: concurrent recorders may
    /// leave the copy one observation ahead or behind in individual
    /// fields, which is fine for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let (min, max) = if count == 0 {
            (0.0, 0.0) // keep JSON finite; empty min/max carry no signal
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min,
            max,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // The first finite boundary.
        let min_bound = bucket_lower_bound(1);
        assert_eq!(min_bound, (-30.0f64).exp2());
        assert_eq!(bucket_of(min_bound), 1, "boundary value goes up");
        assert_eq!(bucket_of(min_bound * 0.999), 0);
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);

        // 1.0 = 2^0 sits exactly on the boundary between buckets 30 and 31.
        assert_eq!(bucket_of(1.0), 31);
        assert_eq!(bucket_upper_bound(30), 1.0);
        assert_eq!(bucket_lower_bound(31), 1.0);
        let below_one = f64::from_bits(1.0f64.to_bits() - 1);
        assert_eq!(bucket_of(below_one), 30);

        // Every finite boundary value lands in the bucket it opens.
        for i in 1..BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_upper_bound(i), bucket_lower_bound(i + 1));
        }

        // Overflow.
        assert_eq!(bucket_of(2.0f64.powi(32)), 63);
        assert_eq!(bucket_of(f64::INFINITY), 63);
        assert_eq!(bucket_of(1e300), 63);
    }

    #[test]
    fn histogram_counts_sum_min_max() {
        let h = Histogram::new();
        for v in [0.5, 2.0, 2.0, 8.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 12.5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        assert_eq!(s.buckets[bucket_of(2.0)], 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_finite() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3999.0);
        assert_eq!(s.sum, (0..4000u64).sum::<u64>() as f64);
    }
}
