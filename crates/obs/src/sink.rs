//! Structured JSONL event sink with environment-driven level filtering.
//!
//! Logging is **off by default**. Setting `THREELC_LOG` (to `error`,
//! `warn`, `info`, `debug`, or `trace`) enables it; [`set_level`]
//! overrides at runtime. When disabled, an instrumented probe costs one
//! relaxed atomic load — the arguments of [`event!`](crate::event) are never evaluated.
//!
//! Events are one JSON object per line: timestamp, level, event name, and
//! any structured fields. They go to stderr unless redirected with
//! [`set_log_file`] (the CLI's `--log-json <path>` flag) or
//! [`set_writer`].

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from `Off` (never emitted) to `Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or dropped work.
    Error = 1,
    /// Degraded but continuing (retries, backoff).
    Warn = 2,
    /// Lifecycle milestones (connections, steps).
    Info = 3,
    /// Per-tensor and per-frame detail; enables the expensive telemetry
    /// probes in `threelc-core`.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    #[cfg(test)]
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }

    fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => Level::Off,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(0);
static INIT: Once = Once::new();
static WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("THREELC_LOG") {
            LEVEL.store(Level::parse(&spec) as u8, Ordering::Relaxed);
        }
    });
}

/// Whether events at `level` are currently emitted. This is the guard to
/// put in front of expensive instrumentation; when logging is off it is a
/// single relaxed atomic load.
pub fn log_enabled(level: Level) -> bool {
    init_from_env();
    level != Level::Off && LEVEL.load(Ordering::Relaxed) >= level as u8
}

/// Overrides the log level (wins over `THREELC_LOG`).
pub fn set_level(level: Level) {
    init_from_env(); // consume the env spec so it cannot override us later
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Redirects events to a file (append mode, created if missing).
pub fn set_log_file(path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    set_writer(Box::new(file));
    Ok(())
}

/// Redirects events to an arbitrary writer (tests use an in-memory buffer).
pub fn set_writer(w: Box<dyn Write + Send>) {
    *WRITER.lock().expect("log writer poisoned") = Some(w);
}

/// Appends a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one structured event as a JSONL line, if `level` is enabled.
///
/// Prefer the [`event!`](crate::event) macro, which skips evaluating its fields when the
/// level is filtered out.
pub fn emit(level: Level, event: &str, fields: &[(&str, String)]) {
    if !log_enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut line = String::with_capacity(64 + event.len());
    line.push_str("{\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    line.push_str(",\"level\":");
    push_json_str(&mut line, level.name());
    line.push_str(",\"event\":");
    push_json_str(&mut line, event);
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        push_json_str(&mut line, value);
    }
    line.push_str("}\n");

    let mut writer = WRITER.lock().expect("log writer poisoned");
    match writer.as_mut() {
        Some(w) => {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// Emits a structured event on the global sink:
/// `event!(Level::Info, "server.accept", worker = id, addr = peer)`.
///
/// Field values are captured with `format!("{:?}", ...)` and are **not
/// evaluated at all** when the level is disabled.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log_enabled($level) {
            $crate::emit($level, $name, &[$((stringify!($key), format!("{:?}", $value))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer handing every byte to a shared buffer, so tests can read
    /// back what the sink wrote.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_filters_escapes_and_emits_jsonl() {
        // One test exercises the whole sink lifecycle because level and
        // writer are process-global state shared across parallel tests.
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_writer(Box::new(SharedBuf(Arc::clone(&buf))));

        set_level(Level::Off);
        assert!(!log_enabled(Level::Error));
        emit(Level::Error, "dropped", &[]);
        assert!(buf.lock().expect("buf").is_empty(), "emitted while off");

        set_level(Level::Info);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        emit(Level::Debug, "also_dropped", &[]);
        emit(
            Level::Info,
            "step.done",
            &[("step", "7".to_owned()), ("note", "a\"b\nc".to_owned())],
        );
        crate::event!(Level::Info, "macro.event", worker = 3usize);
        fn boom() -> u32 {
            panic!("evaluated a filtered field")
        }
        crate::event!(Level::Trace, "filtered", boom = boom());

        let text = String::from_utf8(buf.lock().expect("buf").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "exactly the two enabled events: {text}");
        assert!(lines[0].contains("\"event\":\"step.done\""), "{text}");
        assert!(lines[0].contains("\"step\":\"7\""), "{text}");
        assert!(
            lines[0].contains("a\\\"b\\nc"),
            "escaped quote and newline: {text}"
        );
        assert!(lines[1].contains("\"event\":\"macro.event\""), "{text}");
        assert!(lines[1].contains("\"worker\":\"3\""), "{text}");
        for line in &lines {
            let parsed: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(parsed.get("ts_ms").is_some());
        }

        set_level(Level::Off);
    }

    #[test]
    fn level_parse_accepts_the_documented_names() {
        assert_eq!(Level::parse("error"), Level::Error);
        assert_eq!(Level::parse("WARN"), Level::Warn);
        assert_eq!(Level::parse("info"), Level::Info);
        assert_eq!(Level::parse(" debug "), Level::Debug);
        assert_eq!(Level::parse("trace"), Level::Trace);
        assert_eq!(Level::parse("nonsense"), Level::Off);
        assert_eq!(Level::from_u8(Level::Debug as u8), Level::Debug);
    }
}
