//! Prometheus / OpenMetrics text exposition for metric snapshots.
//!
//! [`render_prometheus`] turns any [`Snapshot`] — a live scrape, a
//! `metrics.snapshot` JSONL event, or the snapshot embedded in a
//! `threelc serve --json` report — into the Prometheus text exposition
//! format (version 0.0.4), so standard scrapers and `promtool` can
//! consume the registry without speaking the bespoke frame protocol.
//! std-only, like everything else in this crate.
//!
//! Mapping rules:
//!
//! - Metric names are sanitized to `[a-zA-Z0-9_:]` (dots and dashes
//!   become underscores): `span.compress.seconds` →
//!   `span_compress_seconds`.
//! - Counters and gauges export as their Prometheus namesakes.
//! - Log-bucketed histograms export as Prometheus histograms with
//!   cumulative `_bucket{le="..."}` series at each *occupied* bucket's
//!   upper bound (power-of-two boundaries), plus the mandatory
//!   `le="+Inf"` bucket, `_sum`, and `_count`. Skipping empty buckets
//!   keeps the output small and is valid: cumulative counts stay
//!   monotone over any subset of boundaries.

use crate::metrics::bucket_upper_bound;
use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Sanitizes a metric name into the Prometheus character set.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spelled out, shortest round-trip otherwise).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in h.hist.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let le = fmt_value(bucket_upper_bound(i));
            if le == "+Inf" {
                continue; // merged into the mandatory +Inf bucket below
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.hist.count);
        let _ = writeln!(out, "{name}_sum {}", fmt_value(h.hist.sum));
        let _ = writeln!(out, "{name}_count {}", h.hist.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitize_maps_into_the_prometheus_charset() {
        assert_eq!(sanitize("span.compress.seconds"), "span_compress_seconds");
        assert_eq!(
            sanitize("critical.worker1.network.seconds"),
            "critical_worker1_network_seconds"
        );
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
        assert_eq!(sanitize("a-b"), "a_b");
    }

    #[test]
    fn counters_gauges_and_histograms_expose() {
        let reg = Registry::new();
        reg.counter("frames.sent").add(7);
        reg.gauge("queue.depth").set(3.5);
        let h = reg.histogram("latency.seconds");
        h.record(0.004);
        h.record(0.009);
        h.record(1e12); // overflow bucket
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE frames_sent counter"));
        assert!(text.contains("frames_sent 7"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 3.5"));
        assert!(text.contains("# TYPE latency_seconds histogram"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_seconds_count 3"));
        assert!(text.contains("latency_seconds_sum"));
        // No raw dots survive in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap_or("");
            assert!(!name.contains('.'), "unsanitized name in {line:?}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let reg = Registry::new();
        let h = reg.histogram("x");
        for v in [0.001, 0.001, 0.5, 2.0, 2.0, 2.0] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("x_bucket{le=\"") {
                let count: u64 = rest
                    .split("} ")
                    .nth(1)
                    .expect("count")
                    .parse()
                    .expect("integer");
                assert!(count >= last, "non-monotone cumulative counts:\n{text}");
                last = count;
                bucket_lines += 1;
            }
        }
        assert!(
            bucket_lines >= 3,
            "expected occupied buckets plus +Inf:\n{text}"
        );
        assert_eq!(last, 6, "+Inf bucket must equal count:\n{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Snapshot::default()), "");
    }
}
