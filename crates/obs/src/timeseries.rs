//! Per-metric time series with bounded memory: a raw tail window plus
//! tiered downsampling for older points.
//!
//! A [`Series`] keeps the most recent `raw_window` points exactly and
//! folds everything older into fixed-width [`Bucket`]s (min/max/sum/count
//! per bucket). When the bucket ring itself fills, the bucket width
//! doubles and adjacent buckets merge — so an arbitrarily long run always
//! fits in `raw_window + bucket_capacity` slots, and the oldest history
//! degrades gracefully from exact points to coarser aggregates instead of
//! vanishing.
//!
//! Everything here is deterministic: values are indexed by **training
//! step**, never by wall clock, and the stored state is a pure function
//! of the pushed `(step, value)` sequence and the capacities. Two runs
//! that record the same values (the simulator and a TCP run of the same
//! seed) therefore hold bit-identical series. Wall-clock-derived series
//! (step latency) are recorded too, but under names listed in
//! [`WALL_CLOCK_SERIES`] so comparisons can strip them
//! ([`RunSeries::deterministic`]).
//!
//! [`RunRecorder`] is the run-wide store: one set of named series per
//! worker plus run-level aggregates, fed once per step from the server's
//! barrier (or the simulator's worker loop) and scraped live over the
//! metrics side-door.

use serde::{Deserialize, Serialize};

/// Exact points kept in a series' raw tail window by default.
pub const DEFAULT_RAW_WINDOW: usize = 64;
/// Aggregated buckets kept per series by default. When exceeded, the
/// bucket width doubles and adjacent buckets merge.
pub const DEFAULT_BUCKET_CAPACITY: usize = 64;

/// Per-worker series names recorded by [`RunRecorder::record_step`].
pub const S_WIRE_BYTES: &str = "wire_bytes";
/// Achieved push compression ratio (32 / bits-per-value); 0 when the
/// step pushed no compressed payloads.
pub const S_RATIO: &str = "ratio";
/// Residual (error-accumulation) L2 norm.
pub const S_RESIDUAL_L2: &str = "residual_l2";
/// Training loss observed by the worker.
pub const S_LOSS: &str = "loss";
/// Policy sparsity multiplier governing the step (tensor 0).
pub const S_MULTIPLIER: &str = "multiplier";
/// Cumulative rejoin count for the worker (always 0 in the simulator).
pub const S_REJOINS: &str = "rejoins";
/// Wall-clock seconds the worker spent computing + encoding the step.
pub const S_STEP_SECONDS: &str = "step_seconds";
/// Wall-clock seconds the barrier spent waiting on this worker beyond
/// the first arrival — how late its push was relative to the fastest
/// worker that step (0 in the simulator, which has no wall clock).
pub const S_BARRIER_WAIT: &str = "barrier_wait_seconds";

/// Series whose values derive from wall clocks and therefore differ
/// between two otherwise identical runs. [`RunSeries::deterministic`]
/// strips these before bit-exact comparisons.
pub const WALL_CLOCK_SERIES: &[&str] = &[S_STEP_SECONDS, S_BARRIER_WAIT];

/// All per-worker series names, in recording order.
pub const WORKER_SERIES: &[&str] = &[
    S_WIRE_BYTES,
    S_RATIO,
    S_RESIDUAL_L2,
    S_LOSS,
    S_MULTIPLIER,
    S_REJOINS,
    S_STEP_SECONDS,
    S_BARRIER_WAIT,
];

/// Run-level series names (aggregated across workers each step).
pub const RUN_SERIES: &[&str] = &[S_WIRE_BYTES, S_RATIO, S_RESIDUAL_L2, S_LOSS, S_MULTIPLIER];

/// One exactly-stored observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Training step the value was observed at.
    pub step: u64,
    /// Observed value.
    pub value: f64,
}

/// One downsampled bucket: the aggregate of every point whose step falls
/// in `[start_step, start_step + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// First step covered (aligned to a multiple of `width`).
    pub start_step: u64,
    /// Steps covered.
    pub width: u64,
    /// Points folded in.
    pub count: u64,
    /// Smallest folded value.
    pub min: f64,
    /// Largest folded value.
    pub max: f64,
    /// Sum of folded values (mean = sum / count).
    pub sum: f64,
}

impl Bucket {
    /// A bucket of `width` steps holding just `p`.
    pub fn of_point(p: Point, width: u64) -> Bucket {
        Bucket {
            start_step: p.step - p.step % width,
            width,
            count: 1,
            min: p.value,
            max: p.value,
            sum: p.value,
        }
    }

    /// Mean folded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds one point in. The point's step must lie inside the bucket.
    pub fn add_point(&mut self, p: Point) {
        debug_assert!(p.step >= self.start_step && p.step - self.start_step < self.width);
        self.count += 1;
        self.min = self.min.min(p.value);
        self.max = self.max.max(p.value);
        self.sum += p.value;
    }

    /// Folds another bucket in. `count`, `min`, and `max` merge exactly;
    /// `sum` is a float addition.
    pub fn absorb(&mut self, other: &Bucket) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// Downsamples step-ordered points into width-aligned buckets.
pub fn downsample(points: &[Point], width: u64) -> Vec<Bucket> {
    assert!(width > 0, "bucket width must be positive");
    let mut out: Vec<Bucket> = Vec::new();
    for &p in points {
        let start = p.step - p.step % width;
        match out.last_mut() {
            Some(last) if last.start_step == start => last.add_point(p),
            _ => out.push(Bucket::of_point(p, width)),
        }
    }
    out
}

/// Merges two step-ordered bucket lists of the same width: buckets with
/// equal `start_step` absorb each other, everything else interleaves in
/// step order. `merge_buckets(downsample(a, w), downsample(b, w))` equals
/// `downsample(a ++ b, w)` for any split of a step-ordered sequence —
/// exactly for `start_step`/`width`/`count`/`min`/`max`, and up to float
/// associativity for `sum`.
pub fn merge_buckets(a: &[Bucket], b: &[Bucket]) -> Vec<Bucket> {
    let mut out: Vec<Bucket> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i].start_step <= b[j].start_step) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        match out.last_mut() {
            Some(last) if last.start_step == next.start_step => last.absorb(&next),
            _ => out.push(next),
        }
    }
    out
}

/// Re-tiers buckets to a coarser width (a multiple of the old one),
/// merging buckets that land in the same new-aligned slot.
fn retier(buckets: &[Bucket], width: u64) -> Vec<Bucket> {
    let mut out: Vec<Bucket> = Vec::new();
    for b in buckets {
        let mut nb = *b;
        nb.start_step = b.start_step - b.start_step % width;
        nb.width = width;
        match out.last_mut() {
            Some(last) if last.start_step == nb.start_step => last.absorb(&nb),
            _ => out.push(nb),
        }
    }
    out
}

/// A fixed-capacity time series: recent points exact, older points
/// downsampled into buckets of doubling width.
///
/// Points must be pushed in non-decreasing step order (the recorder's
/// callers all iterate steps forward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name (one of the `S_*` constants for recorder-fed series).
    pub name: String,
    /// Exact points kept in the raw tail.
    pub raw_window: usize,
    /// Buckets kept before the tier doubles.
    pub bucket_capacity: usize,
    /// Current bucket width in steps (doubles on overflow).
    pub bucket_width: u64,
    /// Downsampled history, oldest first.
    pub buckets: Vec<Bucket>,
    /// Exact recent points, oldest first.
    pub raw: Vec<Point>,
}

impl Series {
    /// An empty series with the default capacities.
    pub fn new(name: &str) -> Series {
        Series::with_capacity(name, DEFAULT_RAW_WINDOW, DEFAULT_BUCKET_CAPACITY)
    }

    /// An empty series with explicit capacities (both must be ≥ 1).
    pub fn with_capacity(name: &str, raw_window: usize, bucket_capacity: usize) -> Series {
        assert!(raw_window >= 1, "raw window must hold at least one point");
        assert!(
            bucket_capacity >= 1,
            "bucket ring must hold at least one bucket"
        );
        Series {
            name: name.to_string(),
            raw_window,
            bucket_capacity,
            bucket_width: 1,
            buckets: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Records one observation. Amortized O(1); evicted raw points fold
    /// into the bucket tier, which compacts by doubling its width.
    pub fn push(&mut self, step: u64, value: f64) {
        self.raw.push(Point { step, value });
        while self.raw.len() > self.raw_window {
            let p = self.raw.remove(0);
            self.fold(p);
        }
    }

    fn fold(&mut self, p: Point) {
        let start = p.step - p.step % self.bucket_width;
        match self.buckets.last_mut() {
            Some(last) if last.start_step == start => last.add_point(p),
            _ => self.buckets.push(Bucket::of_point(p, self.bucket_width)),
        }
        while self.buckets.len() > self.bucket_capacity {
            self.bucket_width *= 2;
            self.buckets = retier(&self.buckets, self.bucket_width);
        }
    }

    /// Total observations held (raw + bucketed). Equals the number of
    /// pushes — downsampling never loses counts.
    pub fn count(&self) -> u64 {
        self.raw.len() as u64 + self.buckets.iter().map(|b| b.count).sum::<u64>()
    }

    /// Exact minimum over every observation ever pushed (None when empty).
    pub fn min(&self) -> Option<f64> {
        let raw = self.raw.iter().map(|p| p.value);
        let old = self.buckets.iter().map(|b| b.min);
        raw.chain(old)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Exact maximum over every observation ever pushed (None when empty).
    pub fn max(&self) -> Option<f64> {
        let raw = self.raw.iter().map(|p| p.value);
        let old = self.buckets.iter().map(|b| b.max);
        raw.chain(old)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Sum over every observation (float additions, so associativity
    /// rounding applies).
    pub fn sum(&self) -> f64 {
        self.raw.iter().map(|p| p.value).sum::<f64>()
            + self.buckets.iter().map(|b| b.sum).sum::<f64>()
    }

    /// The most recent observation.
    pub fn last(&self) -> Option<Point> {
        self.raw.last().copied().or_else(|| {
            self.buckets.last().map(|b| Point {
                step: b.start_step,
                value: b.mean(),
            })
        })
    }

    /// The last `n` exact points (fewer when the raw tail is shorter).
    pub fn recent(&self, n: usize) -> &[Point] {
        let skip = self.raw.len().saturating_sub(n);
        &self.raw[skip..]
    }
}

/// All series recorded for one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSeries {
    /// Worker id.
    pub worker: u64,
    /// Named series (one per [`WORKER_SERIES`] entry, in that order).
    pub series: Vec<Series>,
}

impl WorkerSeries {
    /// A series by name, if present.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// The run-wide series store: per-worker series plus run-level
/// aggregates. This is what the `SeriesDump` protocol message carries and
/// what `threelc top --json` prints.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSeries {
    /// Steps fully recorded so far (the next step to record).
    pub steps_recorded: u64,
    /// Per-worker series, indexed by worker id.
    pub workers: Vec<WorkerSeries>,
    /// Run-level aggregates (one per [`RUN_SERIES`] entry): wire bytes
    /// summed, ratio and loss averaged, residual maxed over workers.
    pub run: Vec<Series>,
}

impl RunSeries {
    /// A run-level series by name, if present.
    pub fn run_series(&self, name: &str) -> Option<&Series> {
        self.run.iter().find(|s| s.name == name)
    }

    /// A copy with every wall-clock-derived series removed — the view two
    /// runs of the same seed must agree on bit-for-bit.
    pub fn deterministic(&self) -> RunSeries {
        let keep = |s: &Series| !WALL_CLOCK_SERIES.contains(&s.name.as_str());
        RunSeries {
            steps_recorded: self.steps_recorded,
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSeries {
                    worker: w.worker,
                    series: w.series.iter().filter(|s| keep(s)).cloned().collect(),
                })
                .collect(),
            run: self.run.iter().filter(|s| keep(s)).cloned().collect(),
        }
    }
}

/// One worker's contribution to one step, as observed at the server's
/// barrier (or the simulator's worker loop — both construct identical
/// values for identical runs, except `step_seconds`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerDelta {
    /// Worker id.
    pub worker: usize,
    /// Total push wire bytes this worker sent (all payloads).
    pub wire_bytes: u64,
    /// Achieved push compression ratio (32 / bits-per-value over the
    /// compressed payloads); 0 when nothing compressed.
    pub ratio: f64,
    /// Residual L2 after encoding.
    pub residual_l2: f64,
    /// Training loss.
    pub loss: f64,
    /// Policy multiplier governing the step (tensor 0).
    pub multiplier: f64,
    /// Cumulative rejoins for this worker so far.
    pub rejoins: u64,
    /// Wall-clock compute+encode seconds (non-deterministic).
    pub step_seconds: f64,
    /// Seconds the barrier waited on this worker past the first push
    /// arrival (non-deterministic; 0 in the simulator).
    pub barrier_wait_seconds: f64,
}

/// Folds per-worker step deltas into a bounded [`RunSeries`] store.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecorder {
    store: RunSeries,
}

impl RunRecorder {
    /// A recorder pre-sized for `workers` workers with default capacities.
    pub fn new(workers: usize) -> RunRecorder {
        RunRecorder::with_capacity(workers, DEFAULT_RAW_WINDOW, DEFAULT_BUCKET_CAPACITY)
    }

    /// A recorder with explicit per-series capacities.
    pub fn with_capacity(workers: usize, raw_window: usize, bucket_capacity: usize) -> RunRecorder {
        let worker_set = |w: usize| WorkerSeries {
            worker: w as u64,
            series: WORKER_SERIES
                .iter()
                .map(|n| Series::with_capacity(n, raw_window, bucket_capacity))
                .collect(),
        };
        RunRecorder {
            store: RunSeries {
                steps_recorded: 0,
                workers: (0..workers).map(worker_set).collect(),
                run: RUN_SERIES
                    .iter()
                    .map(|n| Series::with_capacity(n, raw_window, bucket_capacity))
                    .collect(),
            },
        }
    }

    /// Folds one step's deltas in. `deltas` holds one entry per
    /// participating worker (a simulated backup worker that skipped the
    /// step simply has no entry); run-level aggregates are computed over
    /// the participating set.
    pub fn record_step(&mut self, step: u64, deltas: &[WorkerDelta]) {
        for d in deltas {
            let Some(ws) = self.store.workers.get_mut(d.worker) else {
                continue;
            };
            let values = [
                d.wire_bytes as f64,
                d.ratio,
                d.residual_l2,
                d.loss,
                d.multiplier,
                d.rejoins as f64,
                d.step_seconds,
                d.barrier_wait_seconds,
            ];
            for (s, v) in ws.series.iter_mut().zip(values) {
                s.push(step, v);
            }
        }
        if !deltas.is_empty() {
            let n = deltas.len() as f64;
            let values = [
                deltas.iter().map(|d| d.wire_bytes).sum::<u64>() as f64,
                deltas.iter().map(|d| d.ratio).sum::<f64>() / n,
                deltas.iter().map(|d| d.residual_l2).fold(0.0, f64::max),
                deltas.iter().map(|d| d.loss).sum::<f64>() / n,
                deltas.first().map(|d| d.multiplier).unwrap_or(1.0),
            ];
            for (s, v) in self.store.run.iter_mut().zip(values) {
                s.push(step, v);
            }
        }
        self.store.steps_recorded = self.store.steps_recorded.max(step + 1);
    }

    /// The live store.
    pub fn store(&self) -> &RunSeries {
        &self.store
    }

    /// A point-in-time copy of the store (what scrapes serialize).
    pub fn snapshot(&self) -> RunSeries {
        self.store.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_series_stays_raw() {
        let mut s = Series::new("x");
        for step in 0..10 {
            s.push(step, step as f64);
        }
        assert_eq!(s.raw.len(), 10);
        assert!(s.buckets.is_empty());
        assert_eq!(s.count(), 10);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.last().map(|p| p.value), Some(9.0));
    }

    #[test]
    fn long_series_downsamples_without_losing_extremes() {
        let mut s = Series::with_capacity("x", 8, 4);
        let n = 10_000u64;
        for step in 0..n {
            // A spike early in the run must survive arbitrary compaction.
            let v = if step == 17 { 1e9 } else { step as f64 };
            s.push(step, v);
        }
        assert_eq!(s.count(), n);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(1e9));
        assert!(
            s.buckets.len() <= 4,
            "bucket ring overflowed: {}",
            s.buckets.len()
        );
        assert_eq!(s.raw.len(), 8);
        // Buckets tile the evicted prefix in order without overlap.
        for w in s.buckets.windows(2) {
            assert!(w[0].start_step + w[0].width <= w[1].start_step + w[1].width);
            assert!(w[0].start_step < w[1].start_step);
        }
    }

    #[test]
    fn merge_of_downsampled_equals_downsample_of_merged() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point {
                step: i,
                value: (i as f64) * 0.5 - 10.0,
            })
            .collect();
        let whole = downsample(&points, 8);
        for split in [0usize, 1, 7, 8, 50, 99, 100] {
            let merged = merge_buckets(
                &downsample(&points[..split], 8),
                &downsample(&points[split..], 8),
            );
            assert_eq!(merged.len(), whole.len(), "split {split}");
            for (m, w) in merged.iter().zip(&whole) {
                assert_eq!(m.start_step, w.start_step);
                assert_eq!(m.count, w.count);
                assert_eq!(m.min, w.min);
                assert_eq!(m.max, w.max);
                assert!((m.sum - w.sum).abs() <= 1e-9 * (1.0 + w.sum.abs()));
            }
        }
    }

    #[test]
    fn recorder_folds_worker_and_run_series() {
        let mut r = RunRecorder::new(2);
        for step in 0..5u64 {
            let deltas: Vec<WorkerDelta> = (0..2)
                .map(|w| WorkerDelta {
                    worker: w,
                    wire_bytes: 100 + w as u64,
                    ratio: 8.0,
                    residual_l2: 0.5 + w as f64,
                    loss: 1.0,
                    multiplier: 1.5,
                    rejoins: 0,
                    step_seconds: 0.001,
                    barrier_wait_seconds: 0.0,
                })
                .collect();
            r.record_step(step, &deltas);
        }
        let s = r.store();
        assert_eq!(s.steps_recorded, 5);
        assert_eq!(s.workers.len(), 2);
        let w1 = s.workers[1].series(S_WIRE_BYTES).expect("series exists");
        assert_eq!(w1.last().map(|p| p.value), Some(101.0));
        let run_bytes = s.run_series(S_WIRE_BYTES).expect("run series");
        assert_eq!(run_bytes.last().map(|p| p.value), Some(201.0));
        let run_res = s.run_series(S_RESIDUAL_L2).expect("run series");
        assert_eq!(run_res.last().map(|p| p.value), Some(1.5));
    }

    #[test]
    fn deterministic_view_strips_wall_clock_series() {
        let mut r = RunRecorder::new(1);
        r.record_step(
            0,
            &[WorkerDelta {
                worker: 0,
                wire_bytes: 1,
                ratio: 1.0,
                residual_l2: 0.0,
                loss: 0.0,
                multiplier: 1.0,
                rejoins: 0,
                step_seconds: 0.123,
                barrier_wait_seconds: 0.0,
            }],
        );
        let det = r.store().deterministic();
        assert!(det.workers[0].series(S_STEP_SECONDS).is_none());
        assert!(det.workers[0].series(S_WIRE_BYTES).is_some());
        // Determinism holds trivially for the stripped view: the same
        // pushes minus wall-clock series compare equal.
        assert_eq!(det, r.store().deterministic());
    }

    #[test]
    fn run_series_json_roundtrip() {
        let mut r = RunRecorder::with_capacity(1, 2, 2);
        for step in 0..20u64 {
            r.record_step(
                step,
                &[WorkerDelta {
                    worker: 0,
                    wire_bytes: step,
                    ratio: 4.0,
                    residual_l2: 0.1,
                    loss: 2.0,
                    multiplier: 1.0,
                    rejoins: 0,
                    step_seconds: 0.0,
                    barrier_wait_seconds: 0.0,
                }],
            );
        }
        let json = serde_json::to_string(r.store()).expect("serialize");
        let back: RunSeries = serde_json::from_str(&json).expect("parse");
        assert_eq!(&back, r.store());
    }
}
