//! Critical-path analysis: turns a clock-aligned span timeline into
//! causal blame — which `{node × phase}` actually gated each BSP step.
//!
//! # The ledger
//!
//! PR 4's [`MergedTimeline`] shows per-phase *durations*, but durations
//! don't answer "what would make the run faster": in a BSP step most
//! lanes overlap, and a worker that finishes early simply idles at the
//! barrier. This module reconstructs, per step, the dependency chain the
//! barrier semantics impose:
//!
//! ```text
//! straggler: compute → quantize → encode → serialize → network ─┐
//!                                              (last push in)   ▼
//! server:                      server-decode → aggregate → re-encode → send_pull ─┐
//!                                                                                 ▼
//! tail worker:                                                    network → pull ─ step end
//! ```
//!
//! and tiles the measured wall-clock interval `[first span start, last
//! span end]` with it, producing an ordered list of [`PathSegment`]s.
//! Because the segments *partition* the interval, the attribution is
//! conserved by construction: `Σ buckets == wall_seconds` exactly (the
//! per-step `conservation_error` in [`RunAnalysis`] is the computed
//! residual, a regression alarm for the tiler itself).
//!
//! # Blame rules
//!
//! - The **straggler** of a step is the worker whose push reached the
//!   server last (`recv_push` end order on the server clock; in the
//!   single-clock simulator, the worker whose encode chain finished
//!   last). Time every other worker spends blocked at the barrier is not
//!   charged to them — it is charged to the straggler, phase by phase.
//! - Time on the straggler's chain covered by none of its spans is
//!   charged to the straggler's **network** phase: from the server's
//!   vantage point, a worker whose push is late is indistinguishable
//!   from a slow wire. This is exactly what makes an injected
//!   `delay@N:MS` fault show up as that worker's network phase — the
//!   causal ground truth the CI gate checks.
//! - Server-side gaps (coordinator bookkeeping between the barrier
//!   closing and the pull broadcast) are charged to `server/other`
//!   rather than silently dropped.
//! - A configurable warmup prefix (default: the first step) is excluded
//!   from the run-level totals and flags: step 0's barrier waits out
//!   one-time worker startup, and that wait reads as a late push from
//!   whichever worker happened to arrive last — real wall time (the
//!   per-step ledger still shows it), but noise for steady-state blame.
//!
//! # What-ifs
//!
//! [`WhatIf`] projections are first-order Amdahl estimates: speeding a
//! phase up by `k` removes `(1 − 1/k)` of its *critical-path* seconds
//! from the run. They ignore second-order promotion (slack elsewhere
//! becoming critical), so they are upper bounds on the win — which is
//! the right direction for "is this optimization worth a PR".

use crate::registry::Registry;
use crate::timeline::{AlignedSpan, MergedTimeline};
use crate::trace::NO_WORKER;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Worker-local pipeline phases that can justify time before the barrier.
const WORK_PHASES: &[&str] = &["compute", "quantize", "encode", "serialize"];
/// Server phases between the barrier closing and the pull broadcast.
const SERVER_PHASES: &[&str] = &["server-decode", "aggregate", "re-encode"];
/// Every span name the analyzer consumes; anything else (envelope spans,
/// future phases) is ignored rather than misattributed.
const LEAF_PHASES: &[&str] = &[
    "compute",
    "quantize",
    "encode",
    "serialize",
    "network",
    "barrier-wait",
    "pull",
    "recv_push",
    "send_pull",
    "barrier",
    "server-decode",
    "aggregate",
    "re-encode",
];

/// Thresholds for flagging a worker as a run-level bottleneck.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// A worker's critical network seconds must exceed `blame_k ×` the
    /// median worker's to be flagged (same shape as the watchdog's
    /// straggler rule, so jitter on a fast loopback never trips it).
    pub blame_k: f64,
    /// Absolute floor in seconds below which no flag fires.
    pub blame_min_seconds: f64,
    /// Leading steps excluded from the aggregated totals, what-ifs, and
    /// bottleneck flags. Step 0's barrier genuinely waits out one-time
    /// worker startup (process spawn, dataset derivation) and the blame
    /// lands on whichever worker happened to arrive last — real time,
    /// but noise for steady-state attribution. The per-step ledgers and
    /// the conservation check still cover every step. Ignored when the
    /// run has no post-warmup steps left.
    #[serde(default = "default_warmup")]
    pub warmup_steps: usize,
}

fn default_warmup() -> usize {
    1
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            blame_k: 4.0,
            blame_min_seconds: 0.1,
            warmup_steps: default_warmup(),
        }
    }
}

/// One `{node × phase}` attribution bucket (seconds of critical path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlameBucket {
    /// Lane charged (`worker1`, `server`, …).
    pub node: String,
    /// Phase charged (`network`, `encode`, `other`, …).
    pub phase: String,
    /// Critical-path seconds attributed to this bucket.
    pub seconds: f64,
}

/// One tile of a step's critical path on the aligned axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSegment {
    /// Lane charged.
    pub node: String,
    /// Phase charged.
    pub phase: String,
    /// Worker the segment concerns, or [`NO_WORKER`].
    pub worker: i64,
    /// Start on the merged axis, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// One step's critical path and conserved attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepAnalysis {
    /// Training step.
    pub step: u64,
    /// Measured step wall-clock: last span end − first span start on the
    /// aligned axis, seconds.
    pub wall_seconds: f64,
    /// The critical path, ordered, tiling the wall interval exactly.
    pub path: Vec<PathSegment>,
    /// `path` folded by `{node × phase}`, descending seconds.
    pub buckets: Vec<BlameBucket>,
}

/// A first-order Amdahl projection over the run's critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Human-readable scenario ("encode 3× faster", "wire bytes halved").
    pub scenario: String,
    /// Phase the scenario accelerates.
    pub phase: String,
    /// Speedup factor applied to that phase.
    pub speedup: f64,
    /// Critical-path seconds the scenario removes.
    pub saved_seconds: f64,
    /// Projected change in total step time, percent (negative = faster).
    pub step_delta_pct: f64,
}

/// A flagged run-level bottleneck: one worker's network phase dominates
/// the critical path the way an injected delay would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bottleneck {
    /// Lane flagged.
    pub node: String,
    /// Phase flagged (currently always `network`).
    pub phase: String,
    /// Critical-path seconds attributed.
    pub seconds: f64,
    /// Fraction of the run's total wall time.
    pub share: f64,
    /// Human-readable verdict.
    pub detail: String,
}

/// The run-level analysis: per-step ledgers, aggregated blame, what-if
/// projections, and flagged bottlenecks. Embedded in `NetReport` when a
/// traced run finishes; `threelc analyze` rebuilds or renders it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunAnalysis {
    /// Per-step critical paths, ascending step.
    pub steps: Vec<StepAnalysis>,
    /// Leading steps excluded from `totals`/`what_ifs`/`bottlenecks`
    /// (see [`AnalysisConfig::warmup_steps`]); `steps` still lists them.
    #[serde(default)]
    pub warmup_steps: usize,
    /// Σ of per-step wall seconds over the measured (post-warmup) steps.
    pub total_wall_seconds: f64,
    /// Per-step buckets summed over the measured steps, descending
    /// seconds.
    pub totals: Vec<BlameBucket>,
    /// Amdahl projections over the aggregated critical path.
    pub what_ifs: Vec<WhatIf>,
    /// Flagged bottlenecks (empty on a healthy run).
    pub bottlenecks: Vec<Bottleneck>,
    /// Max over steps of `|Σ buckets − wall| / wall` — the conservation
    /// residual. Zero up to float rounding unless the tiler has a bug.
    pub conservation_error: f64,
}

/// A tiling candidate: a clipped span with a priority class (lower wins).
struct Cand<'a> {
    prio: u8,
    start: u64,
    end: u64,
    node: &'a str,
    phase: &'a str,
    worker: i64,
}

/// Tiles `[a, b)` with the highest-priority candidate active at each
/// instant; uncovered time becomes `gap_*` segments. Appends to `out` in
/// time order. Within one priority class, the earlier-starting (then
/// longer) candidate wins.
fn tile(a: u64, b: u64, cands: &[Cand], gap: (&str, &str, i64), out: &mut Vec<PathSegment>) {
    let mut cursor = a;
    while cursor < b {
        let best = cands
            .iter()
            .filter(|c| c.start <= cursor && c.end > cursor)
            .min_by(|x, y| {
                x.prio
                    .cmp(&y.prio)
                    .then(x.start.cmp(&y.start))
                    .then(y.end.cmp(&x.end))
                    .then(x.node.cmp(y.node))
            });
        match best {
            Some(c) => {
                // A strictly higher-priority candidate starting mid-span
                // preempts it.
                let mut end = c.end.min(b);
                for p in cands.iter().filter(|p| p.prio < c.prio) {
                    if p.start > cursor && p.start < end {
                        end = p.start;
                    }
                }
                push_segment(out, c.node, c.phase, c.worker, cursor, end);
                cursor = end;
            }
            None => {
                let next = cands
                    .iter()
                    .map(|c| c.start)
                    .filter(|&s| s > cursor)
                    .min()
                    .unwrap_or(b)
                    .min(b);
                push_segment(out, gap.0, gap.1, gap.2, cursor, next);
                cursor = next;
            }
        }
    }
}

/// Appends a segment, merging into the previous one when node and phase
/// match (keeps per-tensor quantize/encode bursts as one tile).
fn push_segment(out: &mut Vec<PathSegment>, node: &str, phase: &str, worker: i64, a: u64, b: u64) {
    if b <= a {
        return;
    }
    if let Some(last) = out.last_mut() {
        if last.node == node && last.phase == phase && last.start_ns + last.dur_ns == a {
            last.dur_ns += b - a;
            return;
        }
    }
    out.push(PathSegment {
        node: node.to_string(),
        phase: phase.to_string(),
        worker,
        start_ns: a,
        dur_ns: b - a,
    });
}

fn span_end(s: &AlignedSpan) -> u64 {
    s.start_ns + s.dur_ns
}

/// Analyzes one step's leaf spans into a conserved critical path.
fn analyze_step(step: u64, spans: &[&AlignedSpan]) -> Option<StepAnalysis> {
    let leafs: Vec<&AlignedSpan> = spans
        .iter()
        .copied()
        .filter(|s| LEAF_PHASES.contains(&s.name.as_str()))
        .collect();
    if leafs.is_empty() {
        return None;
    }
    let t0 = leafs.iter().map(|s| s.start_ns).min().expect("non-empty");
    let t1 = leafs.iter().map(|s| span_end(s)).max().expect("non-empty");
    if t1 <= t0 {
        return None;
    }

    // Barrier close: when the last push was fully received. Networked
    // runs have per-worker recv_push spans; the coordinator's barrier
    // span is the fallback; the simulator (no barrier spans at all)
    // closes when the first server phase starts.
    let mut recv_end: BTreeMap<i64, u64> = BTreeMap::new();
    for s in leafs.iter().filter(|s| s.name == "recv_push") {
        if s.worker != NO_WORKER {
            let e = recv_end.entry(s.worker).or_insert(0);
            *e = (*e).max(span_end(s));
        }
    }
    let server_start = leafs
        .iter()
        .filter(|s| SERVER_PHASES.contains(&s.name.as_str()))
        .map(|s| s.start_ns)
        .min();
    let t_bar = recv_end
        .values()
        .copied()
        .max()
        .or_else(|| {
            leafs
                .iter()
                .filter(|s| s.name == "barrier")
                .map(|s| span_end(s))
                .max()
        })
        .or(server_start)
        .unwrap_or(t1)
        .clamp(t0, t1);

    // The straggler: last push in; in the simulator, the worker whose
    // local encode chain finished last.
    let straggler: Option<i64> = recv_end
        .iter()
        .max_by_key(|(w, e)| (**e, **w))
        .map(|(w, _)| *w)
        .or_else(|| {
            leafs
                .iter()
                .filter(|s| s.worker != NO_WORKER && WORK_PHASES.contains(&s.name.as_str()))
                .max_by_key(|s| (span_end(s), s.worker))
                .map(|s| s.worker)
        });
    let straggler_lane = straggler.map(|w| format!("worker{w}"));

    // The tail worker: last pull applied (the step's true end on any
    // lane that records pulls).
    let tail: Option<i64> = leafs
        .iter()
        .filter(|s| s.name == "pull" && s.worker != NO_WORKER)
        .max_by_key(|s| (span_end(s), s.worker))
        .map(|s| s.worker);
    let tail_lane = tail.map(|w| format!("worker{w}"));

    // Pull broadcast done: the tail worker's send_pull end when known.
    let q = leafs
        .iter()
        .filter(|s| s.name == "send_pull" && (tail.is_none() || Some(s.worker) == tail))
        .map(|s| span_end(s))
        .max()
        .or_else(|| {
            leafs
                .iter()
                .filter(|s| SERVER_PHASES.contains(&s.name.as_str()))
                .map(|s| span_end(s))
                .max()
        })
        .unwrap_or(t_bar)
        .clamp(t_bar, t1);

    let mut path = Vec::new();

    // Stage 1 — [t0, t_bar]: the straggler's pipeline explains the time
    // to the barrier; its uncovered time reads as "network" (a late push
    // and a slow wire are the same thing from the server). Other
    // workers' *work* phases may fill instants the straggler's lane
    // can't (the serial simulator), but never their network spans —
    // those are barrier idling by definition.
    {
        let mut cands: Vec<Cand> = Vec::new();
        for s in &leafs {
            if s.worker == NO_WORKER {
                continue;
            }
            let own = Some(s.worker) == straggler;
            let work = WORK_PHASES.contains(&s.name.as_str());
            if work || (own && s.name == "network") {
                cands.push(Cand {
                    prio: if own { 0 } else { 1 },
                    start: s.start_ns,
                    end: span_end(s).min(t_bar),
                    node: &s.node,
                    phase: &s.name,
                    worker: s.worker,
                });
            }
        }
        let gap = match (&straggler_lane, straggler) {
            (Some(lane), Some(w)) => (lane.as_str(), "network", w),
            _ => ("server", "other", NO_WORKER),
        };
        tile(t0, t_bar, &cands, gap, &mut path);
    }

    // Stage 2 — [t_bar, q]: the server's serial decode → aggregate →
    // re-encode chain, then the pull broadcast writes.
    {
        let mut cands: Vec<Cand> = Vec::new();
        for s in &leafs {
            let prio = if SERVER_PHASES.contains(&s.name.as_str()) {
                0
            } else if s.name == "send_pull" {
                1
            } else {
                continue;
            };
            cands.push(Cand {
                prio,
                start: s.start_ns.max(t_bar),
                end: span_end(s).min(q),
                node: &s.node,
                phase: &s.name,
                worker: s.worker,
            });
        }
        tile(t_bar, q, &cands, ("server", "other", NO_WORKER), &mut path);
    }

    // Stage 3 — [q, t1]: the tail worker's pull delivery and decode;
    // transit before its pull span starts reads as network.
    {
        let mut cands: Vec<Cand> = Vec::new();
        for s in &leafs {
            if s.worker == NO_WORKER {
                continue;
            }
            let own = Some(s.worker) == tail;
            if s.name == "pull" || (own && s.name == "network") {
                cands.push(Cand {
                    prio: if own { 0 } else { 1 },
                    start: s.start_ns.max(q),
                    end: span_end(s),
                    node: &s.node,
                    phase: &s.name,
                    worker: s.worker,
                });
            }
        }
        let gap = match (&tail_lane, tail) {
            (Some(lane), Some(w)) => (lane.as_str(), "network", w),
            _ => ("server", "other", NO_WORKER),
        };
        tile(q, t1, &cands, gap, &mut path);
    }

    // Fold on borrowed keys: segments repeat few distinct {node × phase}
    // pairs, so cloning per segment would be pure allocator churn on the
    // analyze hot path.
    let mut folded: BTreeMap<(&str, &str), f64> = BTreeMap::new();
    for seg in &path {
        *folded
            .entry((seg.node.as_str(), seg.phase.as_str()))
            .or_insert(0.0) += seg.dur_ns as f64 / 1e9;
    }
    let mut buckets: Vec<BlameBucket> = folded
        .into_iter()
        .map(|((node, phase), seconds)| BlameBucket {
            node: node.to_string(),
            phase: phase.to_string(),
            seconds,
        })
        .collect();
    sort_buckets(&mut buckets);

    Some(StepAnalysis {
        step,
        wall_seconds: (t1 - t0) as f64 / 1e9,
        path,
        buckets,
    })
}

/// Descending seconds, name-tiebroken, so `totals[0]` is *the* blame.
fn sort_buckets(buckets: &mut [BlameBucket]) {
    buckets.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
            .then(a.phase.cmp(&b.phase))
    });
}

impl RunAnalysis {
    /// Builds the full run analysis from a merged timeline.
    pub fn build(timeline: &MergedTimeline, cfg: &AnalysisConfig) -> RunAnalysis {
        let mut by_step: BTreeMap<u64, Vec<&AlignedSpan>> = BTreeMap::new();
        for s in &timeline.spans {
            by_step.entry(s.step).or_default().push(s);
        }
        let steps: Vec<StepAnalysis> = by_step
            .iter()
            .filter_map(|(&step, spans)| analyze_step(step, spans))
            .collect();

        // Conservation is a tiler invariant, so it covers every step;
        // the aggregates skip the warmup prefix (when any steps remain).
        let warmup = if steps.len() > cfg.warmup_steps {
            cfg.warmup_steps
        } else {
            0
        };
        let mut totals_map: BTreeMap<(&str, &str), f64> = BTreeMap::new();
        let mut total_wall = 0.0f64;
        let mut conservation_error = 0.0f64;
        for (i, st) in steps.iter().enumerate() {
            let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
            if st.wall_seconds > 0.0 {
                conservation_error =
                    conservation_error.max((sum - st.wall_seconds).abs() / st.wall_seconds);
            }
            if i < warmup {
                continue;
            }
            total_wall += st.wall_seconds;
            for b in &st.buckets {
                *totals_map
                    .entry((b.node.as_str(), b.phase.as_str()))
                    .or_insert(0.0) += b.seconds;
            }
        }
        let mut totals: Vec<BlameBucket> = totals_map
            .into_iter()
            .map(|((node, phase), seconds)| BlameBucket {
                node: node.to_string(),
                phase: phase.to_string(),
                seconds,
            })
            .collect();
        sort_buckets(&mut totals);

        let what_ifs = what_ifs(&totals, total_wall);
        let bottlenecks = flag_bottlenecks(&timeline.spans, &totals, total_wall, cfg);

        RunAnalysis {
            steps,
            warmup_steps: warmup,
            total_wall_seconds: total_wall,
            totals,
            what_ifs,
            bottlenecks,
            conservation_error,
        }
    }

    /// The single largest `{node × phase}` critical-path contributor.
    pub fn top(&self) -> Option<&BlameBucket> {
        self.totals.first()
    }

    /// Exports the aggregated blame as gauges into `reg`:
    /// `critical.<node>.<phase>.seconds` for every total bucket, plus
    /// `critical.top.share` and `critical.conservation_error`.
    pub fn export_gauges(&self, reg: &Registry) {
        for b in &self.totals {
            reg.gauge(&format!("critical.{}.{}.seconds", b.node, b.phase))
                .set(b.seconds);
        }
        if let Some(top) = self.top() {
            if self.total_wall_seconds > 0.0 {
                reg.gauge("critical.top.share")
                    .set(top.seconds / self.total_wall_seconds);
            }
        }
        reg.gauge("critical.conservation_error")
            .set(self.conservation_error);
    }

    /// Terminal rendering: aggregated blame, per-step top contributors
    /// (capped at `max_steps`, 0 = all), what-ifs, and flags.
    pub fn render_text(&self, max_steps: usize) -> String {
        let mut out = String::new();
        let warm = if self.warmup_steps > 0 {
            format!(
                " ({} warmup step(s) excluded from totals)",
                self.warmup_steps
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "critical path over {} step(s){warm}, total wall {:.3} ms (conservation residual {:.2e})",
            self.steps.len(),
            self.total_wall_seconds * 1e3,
            self.conservation_error
        );
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:>12} {:>8}",
            "node", "phase", "seconds", "share"
        );
        for b in &self.totals {
            let share = if self.total_wall_seconds > 0.0 {
                b.seconds / self.total_wall_seconds
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<10} {:<14} {:>12.6} {:>7.1}%",
                b.node,
                b.phase,
                b.seconds,
                share * 100.0
            );
        }
        let shown = if max_steps == 0 {
            self.steps.len()
        } else {
            self.steps.len().min(max_steps)
        };
        if shown > 0 {
            let _ = writeln!(out, "per-step top contributor:");
        }
        for st in self.steps.iter().take(shown) {
            if let Some(top) = st.buckets.first() {
                let _ = writeln!(
                    out,
                    "  step {:>5}  wall {:>10.3} ms  top {}/{} {:>10.3} ms",
                    st.step,
                    st.wall_seconds * 1e3,
                    top.node,
                    top.phase,
                    top.seconds * 1e3
                );
            }
        }
        if shown < self.steps.len() {
            let _ = writeln!(out, "  … {} more steps", self.steps.len() - shown);
        }
        let _ = writeln!(out, "what-if projections (first-order Amdahl):");
        for w in &self.what_ifs {
            let _ = writeln!(out, "  {:<36} ⇒ step {:+.1}%", w.scenario, w.step_delta_pct);
        }
        for b in &self.bottlenecks {
            let _ = writeln!(out, "bottleneck [{}/{}]: {}", b.node, b.phase, b.detail);
        }
        out
    }
}

/// First-order Amdahl projections over the aggregated critical path.
fn what_ifs(totals: &[BlameBucket], total_wall: f64) -> Vec<WhatIf> {
    let phase_total = |phase: &str| -> f64 {
        totals
            .iter()
            .filter(|b| b.phase == phase)
            .map(|b| b.seconds)
            .sum()
    };
    let scenarios: &[(&str, f64, &str)] = &[
        ("compute", 2.0, "compute 2× faster"),
        ("quantize", 2.0, "quantize 2× faster"),
        ("encode", 2.0, "encode 2× faster"),
        ("encode", 3.0, "encode 3× faster"),
        ("serialize", 2.0, "serialize 2× faster"),
        ("network", 2.0, "wire bytes halved (network 2× faster)"),
        ("server-decode", 2.0, "server decode 2× faster"),
        ("aggregate", 2.0, "aggregate 2× faster"),
        ("re-encode", 2.0, "re-encode 2× faster"),
        ("pull", 2.0, "pull decode 2× faster"),
    ];
    scenarios
        .iter()
        .map(|&(phase, speedup, label)| {
            let saved = phase_total(phase) * (1.0 - 1.0 / speedup);
            WhatIf {
                scenario: label.to_string(),
                phase: phase.to_string(),
                speedup,
                saved_seconds: saved,
                step_delta_pct: if total_wall > 0.0 {
                    -100.0 * saved / total_wall
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Flags workers whose network blame dominates the way an injected delay
/// would: `blame_k ×` the median worker's, above an absolute floor, with
/// at least two workers to compare.
fn flag_bottlenecks(
    spans: &[AlignedSpan],
    totals: &[BlameBucket],
    total_wall: f64,
    cfg: &AnalysisConfig,
) -> Vec<Bottleneck> {
    let workers: BTreeSet<String> = spans
        .iter()
        .filter(|s| s.worker != NO_WORKER)
        .map(|s| format!("worker{}", s.worker))
        .collect();
    if workers.len() < 2 {
        return Vec::new();
    }
    let net_of = |lane: &str| -> f64 {
        totals
            .iter()
            .filter(|b| b.node == lane && b.phase == "network")
            .map(|b| b.seconds)
            .sum()
    };
    let mut nets: Vec<f64> = workers.iter().map(|w| net_of(w)).collect();
    nets.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = nets[(nets.len() - 1) / 2];
    let mut out = Vec::new();
    for lane in &workers {
        let s = net_of(lane);
        if s > cfg.blame_min_seconds && s > cfg.blame_k * median {
            let share = if total_wall > 0.0 {
                s / total_wall
            } else {
                0.0
            };
            out.push(Bottleneck {
                node: lane.clone(),
                phase: "network".to_string(),
                seconds: s,
                share,
                detail: format!(
                    "{lane} network dominates the critical path: {s:.3} s \
                     ({:.0}% of wall, median worker {median:.3} s)",
                    share * 100.0
                ),
            });
        }
    }
    out.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NodeTrace, SpanRecord};

    fn rec(name: &str, node: &str, step: u64, worker: i64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span: (start ^ end ^ step).wrapping_mul(2).wrapping_add(1),
            parent: 0,
            name: name.into(),
            node: node.into(),
            step,
            worker,
            start_ns: start,
            end_ns: end,
        }
    }

    /// A clean 2-worker networked step on a shared clock: both workers
    /// compute 100–400, encode 400–600, serialize 600–700, push arrives
    /// ~750/760, server works 800–1100, pulls land 1200–1300.
    fn net_step(step: u64, delay_w1: u64) -> Vec<NodeTrace> {
        let base = step * 10_000;
        let d = delay_w1;
        let mut server = vec![
            rec("recv_push", "server", step, 0, base, base + 750),
            rec("recv_push", "server", step, 1, base, base + 760 + d),
            rec("barrier", "server", step, NO_WORKER, base, base + 770 + d),
            rec(
                "server-decode",
                "server",
                step,
                NO_WORKER,
                base + 800 + d,
                base + 900 + d,
            ),
            rec(
                "aggregate",
                "server",
                step,
                NO_WORKER,
                base + 900 + d,
                base + 1_000 + d,
            ),
            rec(
                "re-encode",
                "server",
                step,
                NO_WORKER,
                base + 1_000 + d,
                base + 1_100 + d,
            ),
        ];
        for w in 0..2i64 {
            server.push(rec(
                "send_pull",
                "server",
                step,
                w,
                base + 1_100 + d,
                base + 1_150 + d,
            ));
        }
        let worker = |w: i64, shift: u64| {
            vec![
                rec(
                    "compute",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 100 + shift,
                    base + 400 + shift,
                ),
                rec(
                    "quantize",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 400 + shift,
                    base + 500 + shift,
                ),
                rec(
                    "encode",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 500 + shift,
                    base + 600 + shift,
                ),
                rec(
                    "serialize",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 600 + shift,
                    base + 700 + shift,
                ),
                rec(
                    "network",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 700 + shift,
                    base + 1_200 + d,
                ),
                rec(
                    "pull",
                    &format!("worker{w}"),
                    step,
                    w,
                    base + 1_200 + d,
                    base + 1_300 + d,
                ),
            ]
        };
        vec![
            NodeTrace {
                clock: "server".into(),
                spans: server,
                dropped: 0,
            },
            NodeTrace {
                clock: "worker0".into(),
                spans: worker(0, 0),
                dropped: 0,
            },
            NodeTrace {
                clock: "worker1".into(),
                spans: worker(1, delay_w1),
                dropped: 0,
            },
        ]
    }

    fn analyze(nodes: &[NodeTrace]) -> RunAnalysis {
        RunAnalysis::build(&MergedTimeline::build(nodes), &AnalysisConfig::default())
    }

    #[test]
    fn attribution_is_conserved_exactly() {
        let a = analyze(&net_step(0, 0));
        assert_eq!(a.steps.len(), 1);
        let st = &a.steps[0];
        let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
        assert!(
            (sum - st.wall_seconds).abs() <= 1e-12 * st.wall_seconds.max(1.0),
            "sum {sum} vs wall {}",
            st.wall_seconds
        );
        assert!(a.conservation_error < 1e-9);
        // The path tiles the wall interval: ordered, gap-free, in-range.
        let t0 = st.path.first().expect("path").start_ns;
        let mut cursor = t0;
        for seg in &st.path {
            assert_eq!(seg.start_ns, cursor, "path has a gap or overlap");
            cursor += seg.dur_ns;
        }
        assert!((st.wall_seconds - (cursor - t0) as f64 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn critical_path_never_exceeds_wall_time() {
        for delay in [0u64, 500, 5_000] {
            let a = analyze(&net_step(0, delay));
            for st in &a.steps {
                let path: f64 = st.path.iter().map(|s| s.dur_ns as f64 / 1e9).sum();
                assert!(path <= st.wall_seconds + 1e-12, "delay {delay}");
                for seg in &st.path {
                    assert!(seg.dur_ns as f64 / 1e9 <= st.wall_seconds + 1e-12);
                }
            }
        }
    }

    #[test]
    fn delayed_worker_is_blamed_on_its_network_phase() {
        // Worker 1's whole pipeline shifts late (the delay@N:MS shape:
        // the sleep happens before compute, so the push is late). The
        // extra barrier time must land on worker1/network.
        let mut nodes = Vec::new();
        for step in 0..4u64 {
            let d = if step == 2 { 400_000_000 } else { 0 };
            for n in net_step(step, d) {
                nodes.push(n);
            }
        }
        // Merge per-clock traces (NodeTrace per (clock, step) here).
        let a = analyze(&nodes);
        let top = a.top().expect("has totals");
        assert_eq!(top.node, "worker1", "totals: {:?}", a.totals);
        assert_eq!(top.phase, "network");
        assert_eq!(a.bottlenecks.len(), 1, "{:?}", a.bottlenecks);
        assert_eq!(a.bottlenecks[0].node, "worker1");
        assert_eq!(a.bottlenecks[0].phase, "network");
    }

    #[test]
    fn clean_run_flags_no_bottleneck() {
        let mut nodes = Vec::new();
        for step in 0..4u64 {
            nodes.extend(net_step(step, 10));
        }
        let a = analyze(&nodes);
        assert!(a.bottlenecks.is_empty(), "{:?}", a.bottlenecks);
    }

    #[test]
    fn simulator_style_serial_trace_is_covered() {
        // Single clock, no network/recv/send spans: workers run serially,
        // then the server phases. The ledger must still conserve and
        // charge real work to the right lanes.
        let spans = vec![
            rec("compute", "worker0", 0, 0, 0, 300),
            rec("encode", "worker0", 0, 0, 300, 400),
            rec("compute", "worker1", 0, 1, 400, 700),
            rec("encode", "worker1", 0, 1, 700, 800),
            rec("server-decode", "server", 0, NO_WORKER, 800, 900),
            rec("aggregate", "server", 0, NO_WORKER, 900, 1_000),
            rec("re-encode", "server", 0, NO_WORKER, 1_000, 1_100),
            rec("pull", "worker0", 0, 0, 1_100, 1_150),
            rec("pull", "worker1", 0, 1, 1_150, 1_200),
        ];
        let a = analyze(&[NodeTrace {
            clock: "sim".into(),
            spans,
            dropped: 0,
        }]);
        assert_eq!(a.steps.len(), 1);
        assert!(a.conservation_error < 1e-9);
        let find = |node: &str, phase: &str| -> f64 {
            a.totals
                .iter()
                .filter(|b| b.node == node && b.phase == phase)
                .map(|b| b.seconds)
                .sum()
        };
        assert!(find("worker0", "compute") > 0.0);
        assert!(find("worker1", "compute") > 0.0);
        assert!(find("server", "aggregate") > 0.0);
        assert!(find("worker1", "pull") > 0.0);
        assert!(a.bottlenecks.is_empty());
    }

    #[test]
    fn what_ifs_scale_with_critical_seconds() {
        let a = analyze(&net_step(0, 0));
        let encode2 = a
            .what_ifs
            .iter()
            .find(|w| w.phase == "encode" && w.speedup == 2.0)
            .expect("encode what-if");
        let encode3 = a
            .what_ifs
            .iter()
            .find(|w| w.phase == "encode" && w.speedup == 3.0)
            .expect("encode what-if");
        assert!(encode2.saved_seconds >= 0.0);
        assert!(encode3.saved_seconds >= encode2.saved_seconds);
        assert!(encode3.step_delta_pct <= 0.0);
        let net = a
            .what_ifs
            .iter()
            .find(|w| w.phase == "network")
            .expect("network what-if");
        assert!(net.scenario.contains("wire bytes halved"));
        // No projection can save more than the whole run.
        for w in &a.what_ifs {
            assert!(w.saved_seconds <= a.total_wall_seconds + 1e-12);
        }
    }

    #[test]
    fn gauges_render_and_serde_roundtrip() {
        let a = analyze(&net_step(0, 0));
        let reg = Registry::new();
        a.export_gauges(&reg);
        let snap = reg.snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|g| g.name.starts_with("critical.") && g.name.ends_with(".seconds")));
        assert!(snap.gauges.iter().any(|g| g.name == "critical.top.share"));
        let text = a.render_text(5);
        assert!(text.contains("critical path over"));
        assert!(text.contains("what-if"));
        let json = serde_json::to_string(&a).expect("serialize");
        let back: RunAnalysis = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, a);
    }

    #[test]
    fn empty_timeline_analyzes_to_nothing() {
        let a = RunAnalysis::build(&MergedTimeline::default(), &AnalysisConfig::default());
        assert!(a.steps.is_empty());
        assert!(a.top().is_none());
        assert_eq!(a.total_wall_seconds, 0.0);
        assert!(a.bottlenecks.is_empty());
    }
}
