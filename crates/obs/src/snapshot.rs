//! Point-in-time metric exports: JSON-serializable snapshot types and a
//! text renderer.
//!
//! Snapshots are plain data. They travel as the payload of the
//! `MetricsSnapshot` protocol message in `threelc-net`, land in JSON
//! reports, and [`Snapshot::render_text`] is what `threelc metrics`
//! prints. [`HistogramSnapshot::merge`] aggregates across threads,
//! connections, or processes; merging is associative and commutative (up
//! to float rounding in `sum`), so shards can be combined in any order.

use crate::metrics::{bucket_upper_bound, BUCKETS};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Per-bucket observation counts (see [`crate::metrics::bucket_lower_bound`]).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `p`-th percentile (`0 < p ≤ 100`), estimated from the bucket
    /// counts: the upper bound of the bucket holding the `⌈p/100·count⌉`-th
    /// smallest observation, clamped to the observed `[min, max]` range.
    /// The estimate therefore never exceeds one bucket width (2×) of
    /// error, and `percentile(100) == max` exactly.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another snapshot into this one. Bucket counts, `count`,
    /// `min`, and `max` merge exactly; `sum` is a float addition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// One named counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One named gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// One named histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistEntry {
    /// Metric name.
    pub name: String,
    /// Histogram state.
    pub hist: HistogramSnapshot,
}

/// A point-in-time copy of every metric in a [`Registry`](crate::Registry),
/// sorted by name for deterministic output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistEntry>,
}

impl Snapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }

    /// Folds another snapshot into this one (same-named histograms merge,
    /// counters add, gauges take the other side's value).
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|e| e.name == c.name) {
                Some(e) => e.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|e| e.name == g.name) {
                Some(e) => e.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|e| e.name == h.name) {
                Some(e) => e.hist.merge(&h.hist),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// A human-readable table of every metric: counters and gauges one per
    /// line, histograms with count/mean/min/p50/p95/p99/max.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<44} {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<44} {:.6}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<32} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "", "count", "mean", "min", "p50", "p95", "p99", "max"
            );
            for h in &self.histograms {
                let s = &h.hist;
                let _ = writeln!(
                    out,
                    "  {:<42} {:>8} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e}",
                    h.name,
                    s.count,
                    s.mean(),
                    s.min,
                    s.percentile(50.0),
                    s.percentile(95.0),
                    s.percentile(99.0),
                    s.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn hist_of(values: &[f64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn percentiles_on_a_known_uniform_distribution() {
        // Values 1..=100: the 50th smallest is 50, which lives in the
        // [32, 64) bucket, so p50 reports that bucket's upper bound.
        let s = hist_of(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(s.percentile(50.0), 64.0);
        // The 95th and 99th values (95, 99) live in [64, 128); the upper
        // bound 128 clamps to the observed max of 100.
        assert_eq!(s.percentile(95.0), 100.0);
        assert_eq!(s.percentile(99.0), 100.0);
        assert_eq!(s.percentile(100.0), 100.0);
        // The 1st value lives in [1, 2); clamped below by min = 1.
        assert_eq!(s.percentile(1.0), 2.0);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn percentile_bounds_the_true_value_by_one_bucket() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.05 - 20.0).exp2()).collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let s = hist_of(&values);
        for p in [10.0f64, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * 1000.0).ceil() as usize - 1;
            let truth = sorted[rank];
            let est = s.percentile(p);
            assert!(
                est >= truth && est <= truth * 2.0,
                "p{p}: estimate {est} not within one bucket of {truth}"
            );
        }
    }

    #[test]
    fn percentile_of_single_value_is_that_value() {
        let s = hist_of(&[0.25]);
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), 0.25);
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let a = hist_of(&[1.0, 3.0]);
        let mut left = a.clone();
        left.merge(&HistogramSnapshot::default());
        assert_eq!(left, a);
        let mut right = HistogramSnapshot::default();
        right.merge(&a);
        assert_eq!(right, a);
    }

    #[test]
    fn snapshot_lookup_and_merge() {
        let mut a = Snapshot {
            counters: vec![CounterEntry {
                name: "x".into(),
                value: 2,
            }],
            gauges: vec![GaugeEntry {
                name: "g".into(),
                value: 1.0,
            }],
            histograms: vec![HistEntry {
                name: "h".into(),
                hist: hist_of(&[1.0]),
            }],
        };
        let b = Snapshot {
            counters: vec![CounterEntry {
                name: "x".into(),
                value: 3,
            }],
            gauges: vec![GaugeEntry {
                name: "g".into(),
                value: 7.0,
            }],
            histograms: vec![HistEntry {
                name: "h".into(),
                hist: hist_of(&[4.0]),
            }],
        };
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(5));
        assert_eq!(a.gauge("g"), Some(7.0));
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 4.0);
        assert_eq!(a.counter("missing"), None);
    }

    #[test]
    fn render_text_lists_every_metric() {
        let reg = crate::Registry::new();
        reg.counter("frames_total").add(7);
        reg.gauge("loss").set(0.5);
        reg.histogram("seconds").record(0.125);
        let text = reg.snapshot().render_text();
        assert!(text.contains("frames_total"), "{text}");
        assert!(text.contains("loss"), "{text}");
        assert!(text.contains("seconds"), "{text}");
        assert_eq!(
            crate::Registry::new().snapshot().render_text(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let snap = Snapshot {
            counters: vec![CounterEntry {
                name: "c".into(),
                value: 9,
            }],
            gauges: vec![],
            histograms: vec![HistEntry {
                name: "h".into(),
                hist: hist_of(&[0.5, 128.0]),
            }],
        };
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }
}
