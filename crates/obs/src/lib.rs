//! `threelc-obs`: the observability substrate of the 3LC stack.
//!
//! 3LC's whole argument is quantitative — traffic ratio vs. accuracy vs.
//! wall-clock — so every layer of this workspace reports into one shared
//! instrumentation layer instead of growing its own ad-hoc counters. The
//! crate is std-only (the vendored `serde` stubs are its only
//! dependencies) and provides eleven pieces:
//!
//! 1. **A metrics registry** ([`Registry`]) of named [`Counter`]s,
//!    [`Gauge`]s, and log-bucketed [`Histogram`]s. Metrics are lock-free
//!    atomics; the name → metric map is a sharded mutex, so hot paths
//!    cache the returned `Arc` handles and never touch a lock again.
//! 2. **Hierarchical spans** ([`SpanGuard`], the [`span!`] macro) with
//!    monotonic timing that feed the histograms — `span!("compress")`
//!    records into the `span.compress.seconds` histogram when the guard
//!    drops.
//! 3. **A structured JSONL event sink** ([`sink`], the [`event!`] macro)
//!    with level filtering via the `THREELC_LOG` environment variable
//!    (`off` by default). Probes are guarded by a relaxed atomic level
//!    check, so disabled logging costs one atomic load.
//! 4. **Snapshot exporters** ([`Snapshot`]): a point-in-time copy of every
//!    registered metric, serializable to JSON (the payload of the network
//!    scrape protocol in `threelc-net`) and renderable as text (the
//!    output of `threelc metrics`).
//! 5. **Distributed tracing** ([`trace`]): per-node ring buffers of
//!    [`SpanRecord`]s with parent links and a run-wide
//!    trace id, off by default via `THREELC_TRACE`. Trace context rides
//!    the `threelc-net` wire format so a step's spans connect across
//!    nodes.
//! 6. **Timeline reconstruction** ([`timeline`]): merges per-node buffers
//!    onto one axis — estimating per-worker clock offsets from barrier
//!    round-trips — and exports Chrome-trace JSON or a terminal per-step
//!    phase breakdown (`threelc trace`).
//! 7. **An anomaly watchdog** ([`watchdog`]): flags straggler workers,
//!    compression-ratio drift, residual-L2 blowups, and rejoin-flapping
//!    nodes from collected telemetry (`threelc trace --check`).
//! 8. **Per-worker time series** ([`timeseries`]): fixed-capacity
//!    step-indexed ring buffers with tiered downsampling (raw recent
//!    window, min/max/mean/count buckets of doubling width for older
//!    points) and a [`RunRecorder`] that folds per-worker step deltas
//!    into a run-wide store — what `threelc top` renders live.
//! 9. **A flight recorder** ([`flight`]): a bounded anomaly-event ring
//!    that combines with the series store and recent spans into a
//!    self-contained `<out>.flight.json` post-mortem dump when the
//!    watchdog fires, a handler panics, a fault injects, or a run aborts.
//! 10. **A critical-path profiler** ([`critical`]): rebuilds the per-step
//!     BSP dependency DAG from the clock-aligned timeline, attributes
//!     every nanosecond of step wall-clock to a {phase × node} blame
//!     bucket (barrier-wait charged to the causing straggler), computes
//!     Amdahl-style what-if projections, and flags bottlenecks — the
//!     engine behind `threelc analyze`.
//! 11. **Prometheus exposition** ([`prom`]): renders any [`Snapshot`] in
//!     the Prometheus text format for standard scrapers
//!     (`threelc metrics --prom`).
//!
//! ```
//! use threelc_obs::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("frames").add(3);
//! let h = reg.histogram("latency_seconds");
//! h.record(0.004);
//! h.record(0.009);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("frames"), Some(3));
//! assert_eq!(snap.histogram("latency_seconds").unwrap().count, 2);
//! ```
//!
//! Most call sites use the process-global registry via [`global()`]; a
//! networked server exposes exactly that registry to `threelc metrics`
//! scrapes.

pub mod critical;
pub mod flight;
pub mod metrics;
pub mod prom;
pub mod registry;
pub mod sink;
pub mod snapshot;
pub mod span;
pub mod timeline;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

pub use critical::{
    AnalysisConfig, BlameBucket, Bottleneck, PathSegment, RunAnalysis, StepAnalysis, WhatIf,
};
pub use flight::{write_flight_dump, FlightDump, FlightRecorder, FLIGHT_VERSION};
pub use prom::render_prometheus;

pub use metrics::{Counter, Gauge, Histogram, BUCKETS};
pub use registry::{global, Registry};
pub use sink::{emit, log_enabled, set_level, set_log_file, set_writer, Level};
pub use snapshot::{CounterEntry, GaugeEntry, HistEntry, HistogramSnapshot, Snapshot};
pub use span::SpanGuard;
pub use timeline::{AlignedSpan, ClockOffset, MergedTimeline, PHASES};
pub use timeseries::{
    Bucket, Point, RunRecorder, RunSeries, Series, WorkerDelta, WorkerSeries, WALL_CLOCK_SERIES,
};
pub use trace::{
    current_ctx, global_buffer, now_ns, run_trace_id, set_trace_enabled, trace_enabled, NodeTrace,
    SpanRecord, TraceBuffer, TraceCtx, TraceScope, TraceSpan, NO_WORKER,
};
pub use watchdog::{Anomaly, FaultSample, StepStats, WatchdogConfig};
