//! Always-on flight recorder: a bounded ring of anomaly events that,
//! combined with the [`RunRecorder`](crate::timeseries::RunRecorder)'s
//! series store and the recent span buffer, dumps a self-contained
//! post-mortem artifact (`<out>.flight.json`) when a run goes wrong.
//!
//! The recorder costs nothing while the run is healthy: noting an event
//! is a bounded `Vec` push, and the dump only materializes on a trigger —
//! the watchdog firing, a handler panic, an injected fault, or an abort.
//! `threelc trace <dump.flight.json>` reads the artifact back.

use crate::timeseries::RunSeries;
use crate::trace::NodeTrace;
use crate::watchdog::Anomaly;
use serde::{Deserialize, Serialize};

/// Schema version stamped into every dump.
pub const FLIGHT_VERSION: u32 = 1;
/// Events kept in the ring by default.
pub const DEFAULT_EVENT_CAPACITY: usize = 128;

/// Trigger names stamped into dumps.
pub mod trigger {
    /// The run returned an error (barrier timeout, exhausted rejoins, …).
    pub const ABORT: &str = "abort";
    /// The end-of-run watchdog flagged anomalies on an otherwise clean run.
    pub const WATCHDOG: &str = "watchdog";
    /// A handler thread panicked (caught by the coordinator).
    pub const PANIC: &str = "panic";
    /// An injected fault fired.
    pub const FAULT: &str = "fault";
}

/// A complete post-mortem artifact: the last N steps of every series,
/// the anomaly/event ring, and recent spans (empty unless tracing was on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Schema version ([`FLIGHT_VERSION`]).
    pub version: u32,
    /// What caused the dump (one of [`trigger`]'s constants).
    pub trigger: String,
    /// Human-readable trigger detail (the abort error, the panic text…).
    pub detail: String,
    /// Steps the series store had fully recorded when the dump was taken.
    pub steps_recorded: u64,
    /// Everything anomalous: watchdog findings plus recorded fault,
    /// panic, and abort events, in the order they were observed.
    pub anomalies: Vec<Anomaly>,
    /// The bounded series store (per-worker + run-level).
    pub series: RunSeries,
    /// Recent spans from the local trace buffer (empty when tracing off).
    #[serde(default)]
    pub spans: Vec<NodeTrace>,
}

/// The bounded event ring. Transport faults, panics, and abort reasons
/// are noted as [`Anomaly`] values as they happen; old events fall off
/// the front once [`DEFAULT_EVENT_CAPACITY`] is reached.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    events: Vec<Anomaly>,
    capacity: usize,
}

impl FlightRecorder {
    /// An empty recorder with the default event capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            events: Vec::new(),
            capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Notes one event, evicting the oldest when the ring is full.
    pub fn note(&mut self, event: Anomaly) {
        if self.events.len() >= self.capacity {
            self.events.remove(0);
        }
        self.events.push(event);
    }

    /// Notes a transport fault (disconnect, kill, injected error).
    pub fn note_fault(&mut self, step: u64, node: &str, kind: &str, detail: &str) {
        self.note(Anomaly {
            kind: format!("fault-{kind}"),
            step,
            node: node.to_string(),
            phase: String::new(),
            value: 0.0,
            threshold: 0.0,
            detail: detail.to_string(),
        });
    }

    /// Events noted so far, oldest first.
    pub fn events(&self) -> &[Anomaly] {
        &self.events
    }

    /// Assembles a dump: the event ring plus `extra` watchdog findings,
    /// the series store, and — when tracing is enabled — a non-draining
    /// snapshot of the local span buffer.
    pub fn dump(
        &self,
        trigger: &str,
        detail: &str,
        series: RunSeries,
        extra: &[Anomaly],
    ) -> FlightDump {
        let mut anomalies = self.events.clone();
        anomalies.extend_from_slice(extra);
        let spans = if crate::trace::trace_enabled() {
            vec![crate::trace::global_buffer().snapshot("flight")]
        } else {
            Vec::new()
        };
        FlightDump {
            version: FLIGHT_VERSION,
            trigger: trigger.to_string(),
            detail: detail.to_string(),
            steps_recorded: series.steps_recorded,
            anomalies,
            series,
            spans,
        }
    }
}

impl FlightDump {
    /// Parses a dump from JSON text. Errors on schema mismatch.
    pub fn from_json(text: &str) -> Result<FlightDump, String> {
        let dump: FlightDump =
            serde_json::from_str(text).map_err(|e| format!("not a flight dump: {e}"))?;
        if dump.version != FLIGHT_VERSION {
            return Err(format!(
                "flight dump version {} unsupported (expected {})",
                dump.version, FLIGHT_VERSION
            ));
        }
        Ok(dump)
    }

    /// One-line-per-anomaly text summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: trigger={} steps_recorded={} workers={}",
            self.trigger,
            self.steps_recorded,
            self.series.workers.len()
        );
        if !self.detail.is_empty() {
            let _ = writeln!(out, "  detail: {}", self.detail);
        }
        if self.anomalies.is_empty() {
            let _ = writeln!(out, "  no anomalies recorded");
        }
        for a in &self.anomalies {
            let _ = writeln!(out, "  [{}] step {}: {}", a.kind, a.step, a.detail);
        }
        out
    }
}

/// Serializes a dump and writes it to `path`, then bumps the
/// `obs.flight.dumps` counter and emits a `flight.dump` event so the
/// structured log records where the artifact went.
pub fn write_flight_dump(path: &str, dump: &FlightDump) -> std::io::Result<()> {
    let json = serde_json::to_string(dump).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")?;
    crate::global().counter("obs.flight.dumps").add(1);
    if crate::log_enabled(crate::Level::Warn) {
        crate::emit(
            crate::Level::Warn,
            "flight.dump",
            &[
                ("path", path.to_string()),
                ("trigger", dump.trigger.clone()),
                ("anomalies", dump.anomalies.len().to_string()),
            ],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{RunRecorder, WorkerDelta};

    fn delta(worker: usize) -> WorkerDelta {
        WorkerDelta {
            worker,
            wire_bytes: 64,
            ratio: 8.0,
            residual_l2: 0.1,
            loss: 1.0,
            multiplier: 1.0,
            rejoins: 0,
            step_seconds: 0.0,
            barrier_wait_seconds: 0.0,
        }
    }

    #[test]
    fn event_ring_is_bounded() {
        let mut fr = FlightRecorder::new();
        for step in 0..(DEFAULT_EVENT_CAPACITY as u64 + 10) {
            fr.note_fault(step, "worker0", "disconnect", "injected");
        }
        assert_eq!(fr.events().len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(fr.events()[0].step, 10, "oldest events evicted first");
    }

    #[test]
    fn dump_combines_events_watchdog_findings_and_series() {
        let mut rec = RunRecorder::new(1);
        rec.record_step(0, &[delta(0)]);
        rec.record_step(1, &[delta(0)]);
        let mut fr = FlightRecorder::new();
        fr.note_fault(1, "worker0", "kill", "injected kill@1");
        let wd = Anomaly {
            kind: "straggler".into(),
            step: 1,
            node: "worker0".into(),
            phase: "encode".into(),
            value: 1.0,
            threshold: 0.1,
            detail: "slow".into(),
        };
        let dump = fr.dump(trigger::ABORT, "barrier timed out", rec.snapshot(), &[wd]);
        assert_eq!(dump.version, FLIGHT_VERSION);
        assert_eq!(dump.trigger, "abort");
        assert_eq!(dump.steps_recorded, 2);
        assert_eq!(dump.anomalies.len(), 2);
        assert_eq!(dump.anomalies[0].kind, "fault-kill");
        assert_eq!(dump.anomalies[1].kind, "straggler");
        assert_eq!(dump.series.workers.len(), 1);
        let text = dump.render_text();
        assert!(text.contains("trigger=abort"), "{text}");
        assert!(text.contains("fault-kill"), "{text}");
    }

    #[test]
    fn dump_json_roundtrips_and_rejects_future_versions() {
        let fr = FlightRecorder::new();
        let dump = fr.dump(trigger::WATCHDOG, "", RunRecorder::new(2).snapshot(), &[]);
        let json = serde_json::to_string(&dump).expect("serialize");
        let back = FlightDump::from_json(&json).expect("parse");
        assert_eq!(back, dump);
        let future = json.replace("\"version\":1", "\"version\":99");
        assert!(FlightDump::from_json(&future).is_err());
    }

    #[test]
    fn write_flight_dump_creates_a_readable_file() {
        let path = std::env::temp_dir().join("threelc-flight-test.json");
        let path = path.to_str().expect("utf8 temp path").to_string();
        let fr = FlightRecorder::new();
        let dump = fr.dump(
            trigger::FAULT,
            "kill@2",
            RunRecorder::new(1).snapshot(),
            &[],
        );
        write_flight_dump(&path, &dump).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = FlightDump::from_json(&text).expect("parse");
        assert_eq!(back.trigger, "fault");
        let _ = std::fs::remove_file(&path);
    }
}
