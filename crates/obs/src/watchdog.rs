//! Telemetry anomaly watchdog: flags straggler workers, compression-ratio
//! drift, residual-L2 blowups, and rejoin-flapping nodes from a merged
//! timeline, per-step compression statistics, and transport fault events.
//!
//! The watchdog is deterministic and purely analytical — it looks at
//! collected data, never at live clocks — so the simulator and a TCP run
//! over the same data produce the same anomaly list.

use crate::timeline::MergedTimeline;
use crate::trace::NO_WORKER;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Detection thresholds. Defaults are deliberately loose: the watchdog is
/// a tripwire for pathology (a 4× straggler, a 10× residual blowup), not
/// a micro-benchmark regression gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// A worker's phase is a straggler when its duration exceeds
    /// `straggler_k` × the median duration of that phase across workers
    /// in the same step (strictly greater; exactly k·median passes).
    pub straggler_k: f64,
    /// Phases shorter than this (seconds) are never stragglers, however
    /// skewed — guards against flagging microsecond noise.
    pub straggler_min_seconds: f64,
    /// A step's compression ratio drifts when it falls below
    /// median ratio / `ratio_drift_factor`.
    pub ratio_drift_factor: f64,
    /// A step's residual L2 blows up when it exceeds
    /// `residual_blowup_factor` × the median residual.
    pub residual_blowup_factor: f64,
    /// A node is flapping when it rejoins at least this many times in one
    /// run. One rejoin is recovery working as designed; repeated rejoins
    /// of the same node point at a bad link or host.
    pub rejoin_flap_count: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            straggler_k: 4.0,
            straggler_min_seconds: 0.005,
            ratio_drift_factor: 2.0,
            residual_blowup_factor: 10.0,
            rejoin_flap_count: 3,
        }
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// `straggler`, `ratio-drift`, or `residual-blowup`.
    pub kind: String,
    /// Step the anomaly occurred at.
    pub step: u64,
    /// Lane involved (stragglers), empty otherwise.
    #[serde(default)]
    pub node: String,
    /// Phase involved (stragglers), empty otherwise.
    #[serde(default)]
    pub phase: String,
    /// The observed value (seconds, ratio, or L2 norm).
    pub value: f64,
    /// The threshold the value crossed.
    pub threshold: f64,
    /// Human-readable summary.
    pub detail: String,
}

/// Per-step compression statistics the step-level checks consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Training step.
    pub step: u64,
    /// Compression ratio (raw bytes / compressed bytes); 0 when unknown.
    pub compression_ratio: f64,
    /// Residual (error-accumulation buffer) L2 norm; 0 when unknown.
    pub residual_l2: f64,
}

/// Phases excluded from straggler comparison. `network` and the barrier
/// spans mostly measure *waiting at the barrier*, which is longest for
/// the **fastest** worker — flagging it would invert the signal. `step`
/// envelopes are compared through their constituent phases instead.
const STRAGGLER_SKIP: [&str; 6] = [
    "network",
    "step",
    "recv_push",
    "send_pull",
    "barrier",
    "barrier-wait",
];

/// Flags worker phases that exceed `k` × the per-step cross-worker median
/// (lower-middle median, so with two workers the baseline is the faster
/// one). Requires at least two worker lanes per phase — a single worker
/// has no peers to lag behind.
pub fn check_timeline(timeline: &MergedTimeline, cfg: &WatchdogConfig) -> Vec<Anomaly> {
    // (step, phase) → per-(node,worker) total seconds.
    let mut groups: BTreeMap<(u64, String), BTreeMap<(String, i64), f64>> = BTreeMap::new();
    for s in &timeline.spans {
        if s.worker == NO_WORKER || STRAGGLER_SKIP.contains(&s.name.as_str()) {
            continue;
        }
        // Server-side phases carry the server lane name but a worker id;
        // group by the lane that did the work.
        *groups
            .entry((s.step, s.name.clone()))
            .or_default()
            .entry((s.node.clone(), s.worker))
            .or_insert(0.0) += s.dur_ns as f64 / 1e9;
    }

    let mut anomalies = Vec::new();
    for ((step, phase), lanes) in &groups {
        if lanes.len() < 2 {
            continue;
        }
        let mut durs: Vec<f64> = lanes.values().copied().collect();
        durs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = durs[(durs.len() - 1) / 2];
        let threshold = cfg.straggler_k * median;
        for ((node, worker), &dur) in lanes {
            if dur > threshold && dur > cfg.straggler_min_seconds {
                anomalies.push(Anomaly {
                    kind: "straggler".into(),
                    step: *step,
                    node: node.clone(),
                    phase: phase.clone(),
                    value: dur,
                    threshold,
                    detail: format!(
                        "step {step}: worker {worker} ({node}) spent {:.3} ms in {phase}, \
                         > {:.1}x the {:.3} ms median",
                        dur * 1e3,
                        cfg.straggler_k,
                        median * 1e3
                    ),
                });
            }
        }
    }
    anomalies
}

/// Flags compression-ratio drift and residual-L2 blowups against the
/// run's median (lower-middle). Steps with zero/unknown values are
/// excluded from both the baseline and the checks.
pub fn check_steps(stats: &[StepStats], cfg: &WatchdogConfig) -> Vec<Anomaly> {
    let mut anomalies = Vec::new();

    let mut ratios: Vec<f64> = stats
        .iter()
        .map(|s| s.compression_ratio)
        .filter(|&r| r > 0.0)
        .collect();
    if ratios.len() >= 2 {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = ratios[(ratios.len() - 1) / 2];
        let floor = median / cfg.ratio_drift_factor;
        for s in stats {
            if s.compression_ratio > 0.0 && s.compression_ratio < floor {
                anomalies.push(Anomaly {
                    kind: "ratio-drift".into(),
                    step: s.step,
                    node: String::new(),
                    phase: String::new(),
                    value: s.compression_ratio,
                    threshold: floor,
                    detail: format!(
                        "step {}: compression ratio {:.2}x fell below {:.2}x \
                         (median {:.2}x / {:.1})",
                        s.step, s.compression_ratio, floor, median, cfg.ratio_drift_factor
                    ),
                });
            }
        }
    }

    let mut residuals: Vec<f64> = stats
        .iter()
        .map(|s| s.residual_l2)
        .filter(|&r| r > 0.0)
        .collect();
    if residuals.len() >= 2 {
        residuals.sort_by(|a, b| a.partial_cmp(b).expect("residuals are finite"));
        let median = residuals[(residuals.len() - 1) / 2];
        let ceil = median * cfg.residual_blowup_factor;
        for s in stats {
            if s.residual_l2 > ceil {
                anomalies.push(Anomaly {
                    kind: "residual-blowup".into(),
                    step: s.step,
                    node: String::new(),
                    phase: String::new(),
                    value: s.residual_l2,
                    threshold: ceil,
                    detail: format!(
                        "step {}: residual L2 {:.4} exceeded {:.4} \
                         ({:.1}x the {:.4} median)",
                        s.step, s.residual_l2, ceil, cfg.residual_blowup_factor, median
                    ),
                });
            }
        }
    }

    anomalies.sort_by(|a, b| a.step.cmp(&b.step).then(a.kind.cmp(&b.kind)));
    anomalies
}

/// One fault observation the rejoin-flap check consumes (the obs-side
/// view of a transport fault event — the transport layer converts its own
/// event type into this).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSample {
    /// Step the fault happened at.
    pub step: u64,
    /// Node involved (e.g. `worker3`).
    pub node: String,
    /// `disconnect` or `rejoin`.
    pub kind: String,
}

/// Flags nodes that rejoined at least `rejoin_flap_count` times — one
/// `rejoin-flap` anomaly per flapping node, anchored at its last rejoin
/// step.
pub fn check_faults(samples: &[FaultSample], cfg: &WatchdogConfig) -> Vec<Anomaly> {
    let mut rejoins: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in samples {
        if s.kind == "rejoin" {
            rejoins.entry(&s.node).or_default().push(s.step);
        }
    }
    let mut anomalies = Vec::new();
    for (node, steps) in rejoins {
        let count = steps.len() as u64;
        if cfg.rejoin_flap_count > 0 && count >= cfg.rejoin_flap_count {
            anomalies.push(Anomaly {
                kind: "rejoin-flap".into(),
                step: steps.iter().copied().max().unwrap_or(0),
                node: node.into(),
                phase: String::new(),
                value: count as f64,
                threshold: cfg.rejoin_flap_count as f64,
                detail: format!(
                    "{node} rejoined {count} times (>= {}); \
                     its link or host looks unhealthy",
                    cfg.rejoin_flap_count
                ),
            });
        }
    }
    anomalies
}

/// Flags stragglers from per-worker step-latency observations (the live
/// check `threelc top` runs on the `step_seconds` series): worker `i`
/// straggles when its latency exceeds `straggler_k` × the cross-worker
/// lower-middle median and the `straggler_min_seconds` floor. With fewer
/// than two workers there is no peer to lag behind, so nothing flags.
pub fn straggler_workers(seconds: &[f64], cfg: &WatchdogConfig) -> Vec<bool> {
    if seconds.len() < 2 {
        return vec![false; seconds.len()];
    }
    let mut sorted = seconds.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let median = sorted[(sorted.len() - 1) / 2];
    let threshold = cfg.straggler_k * median;
    seconds
        .iter()
        .map(|&s| s > threshold && s > cfg.straggler_min_seconds)
        .collect()
}

/// Runs both the timeline and step-level checks.
pub fn check(timeline: &MergedTimeline, stats: &[StepStats], cfg: &WatchdogConfig) -> Vec<Anomaly> {
    let mut anomalies = check_timeline(timeline, cfg);
    anomalies.extend(check_steps(stats, cfg));
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::MergedTimeline;
    use crate::trace::{NodeTrace, SpanRecord};

    fn span(
        name: &str,
        node: &str,
        step: u64,
        worker: i64,
        start_ms: u64,
        dur_ms: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span: (step + 1) * 1000 + start_ms,
            parent: 0,
            name: name.into(),
            node: node.into(),
            step,
            worker,
            start_ns: start_ms * 1_000_000,
            end_ns: (start_ms + dur_ms) * 1_000_000,
        }
    }

    fn timeline_with(spans: Vec<SpanRecord>) -> MergedTimeline {
        MergedTimeline::build(&[NodeTrace {
            clock: "server".into(),
            spans,
            dropped: 0,
        }])
    }

    #[test]
    fn a_true_straggler_is_flagged() {
        // Three workers: two take 10 ms to encode, one takes 100 ms
        // (> 4 × 10 ms median and > 5 ms floor).
        let tl = timeline_with(vec![
            span("encode", "worker0", 1, 0, 0, 10),
            span("encode", "worker1", 1, 1, 0, 10),
            span("encode", "worker2", 1, 2, 0, 100),
        ]);
        let found = check_timeline(&tl, &WatchdogConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, "straggler");
        assert_eq!(found[0].node, "worker2");
        assert_eq!(found[0].phase, "encode");
        assert_eq!(found[0].step, 1);
        assert!((found[0].value - 0.100).abs() < 1e-9);
    }

    #[test]
    fn exactly_k_times_median_is_not_a_straggler() {
        // The comparison is strict: 40 ms == 4 × 10 ms passes.
        let tl = timeline_with(vec![
            span("encode", "worker0", 0, 0, 0, 10),
            span("encode", "worker1", 0, 1, 0, 10),
            span("encode", "worker2", 0, 2, 0, 40),
        ]);
        assert!(check_timeline(&tl, &WatchdogConfig::default()).is_empty());
    }

    #[test]
    fn sub_floor_skew_is_not_a_straggler() {
        // 100× skew, but 2 ms < the 5 ms floor.
        let tl = timeline_with(vec![
            span("quantize", "worker0", 0, 0, 0, 0),
            span("quantize", "worker1", 0, 1, 0, 2),
        ]);
        assert!(check_timeline(&tl, &WatchdogConfig::default()).is_empty());
    }

    #[test]
    fn two_workers_use_the_faster_as_baseline() {
        // Lower-middle median of {10, 100} is 10: the slow worker of a
        // pair is still detectable.
        let tl = timeline_with(vec![
            span("compute", "worker0", 2, 0, 0, 10),
            span("compute", "worker1", 2, 1, 0, 100),
        ]);
        let found = check_timeline(&tl, &WatchdogConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].node, "worker1");
    }

    #[test]
    fn barrier_like_phases_and_single_lanes_are_skipped() {
        let tl = timeline_with(vec![
            // network measures barrier waiting; never compared.
            span("network", "worker0", 0, 0, 0, 10),
            span("network", "worker1", 0, 1, 0, 500),
            // one lane only: no peers, no comparison.
            span("encode", "worker0", 0, 0, 0, 500),
        ]);
        assert!(check_timeline(&tl, &WatchdogConfig::default()).is_empty());
    }

    #[test]
    fn ratio_drift_is_flagged_below_half_median() {
        let stats: Vec<StepStats> = (0..6)
            .map(|step| StepStats {
                step,
                compression_ratio: if step == 4 { 3.0 } else { 12.0 },
                residual_l2: 1.0,
            })
            .collect();
        let found = check_steps(&stats, &WatchdogConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, "ratio-drift");
        assert_eq!(found[0].step, 4);
    }

    #[test]
    fn residual_blowup_is_flagged_above_ten_times_median() {
        let stats: Vec<StepStats> = (0..5)
            .map(|step| StepStats {
                step,
                compression_ratio: 10.0,
                residual_l2: if step == 3 { 25.0 } else { 2.0 },
            })
            .collect();
        let found = check_steps(&stats, &WatchdogConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, "residual-blowup");
        assert_eq!(found[0].step, 3);
        assert!((found[0].value - 25.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_runs_produce_no_anomalies() {
        let tl = timeline_with(vec![
            span("encode", "worker0", 0, 0, 0, 10),
            span("encode", "worker1", 0, 1, 0, 12),
        ]);
        let stats: Vec<StepStats> = (0..4)
            .map(|step| StepStats {
                step,
                compression_ratio: 12.0 + step as f64 * 0.1,
                residual_l2: 1.0 + step as f64 * 0.05,
            })
            .collect();
        assert!(check(&tl, &stats, &WatchdogConfig::default()).is_empty());
    }

    #[test]
    fn rejoin_flap_needs_the_threshold_count() {
        let sample = |node: &str, step: u64, kind: &str| FaultSample {
            step,
            node: node.into(),
            kind: kind.into(),
        };
        let cfg = WatchdogConfig::default();
        // Two rejoins (threshold 3): recovery, not pathology.
        let calm = vec![
            sample("worker0", 2, "disconnect"),
            sample("worker0", 2, "rejoin"),
            sample("worker0", 5, "disconnect"),
            sample("worker0", 5, "rejoin"),
        ];
        assert!(check_faults(&calm, &cfg).is_empty());
        // A third rejoin of the same node trips the flap check; another
        // node's single rejoin does not.
        let mut flappy = calm.clone();
        flappy.push(sample("worker0", 7, "rejoin"));
        flappy.push(sample("worker1", 4, "rejoin"));
        let found = check_faults(&flappy, &cfg);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, "rejoin-flap");
        assert_eq!(found[0].node, "worker0");
        assert_eq!(found[0].step, 7);
        assert!((found[0].value - 3.0).abs() < 1e-12);
        // Disconnect-only samples (rejoin refused/failed) never flap.
        let lost = vec![
            sample("worker2", 1, "disconnect"),
            sample("worker2", 2, "disconnect"),
            sample("worker2", 3, "disconnect"),
        ];
        assert!(check_faults(&lost, &cfg).is_empty());
    }

    #[test]
    fn anomaly_serde_roundtrip() {
        let a = Anomaly {
            kind: "straggler".into(),
            step: 7,
            node: "worker3".into(),
            phase: "encode".into(),
            value: 0.25,
            threshold: 0.04,
            detail: "slow".into(),
        };
        let json = serde_json::to_string(&a).expect("serialize");
        let back: Anomaly = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, a);
    }
}
