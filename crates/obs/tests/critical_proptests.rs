//! Property tests for the critical-path analyzer: whatever spans a run
//! recorded — partial lanes, overlapping phases, junk names, zero-length
//! spans — the per-step attribution must tile the measured wall interval
//! exactly (conservation by construction), and the run-level aggregates
//! must be the sum of the post-warmup per-step ledgers.

use proptest::prelude::*;
use threelc_obs::{
    AnalysisConfig, MergedTimeline, NodeTrace, RunAnalysis, SpanRecord, StepAnalysis, NO_WORKER,
};

/// Every name the analyzer consumes, plus envelope/junk names it must
/// ignore without misattributing.
const NAMES: &[&str] = &[
    "compute",
    "quantize",
    "encode",
    "serialize",
    "network",
    "barrier-wait",
    "pull",
    "recv_push",
    "send_pull",
    "barrier",
    "server-decode",
    "aggregate",
    "re-encode",
    "server",
    "bogus-envelope",
];

/// One random span: `(step, name index, worker, start, duration)`.
type RawSpan = (u64, usize, i64, u64, u64);

fn span_strategy() -> impl Strategy<Value = RawSpan> {
    (
        0u64..3,
        0usize..NAMES.len(),
        prop_oneof![Just(NO_WORKER), 0i64..3],
        0u64..10_000,
        0u64..5_000,
    )
}

/// Materializes the raw tuples on a single clock (the simulator shape:
/// no cross-clock alignment, so the tiler sees the starts verbatim).
fn trace_of(raw: &[RawSpan]) -> Vec<NodeTrace> {
    let spans = raw
        .iter()
        .map(|&(step, name, worker, start, dur)| SpanRecord {
            trace: 1,
            span: (start ^ dur ^ step).wrapping_mul(2).wrapping_add(1),
            parent: 0,
            name: NAMES[name].into(),
            node: if worker == NO_WORKER {
                "server".into()
            } else {
                format!("worker{worker}")
            },
            step,
            worker,
            start_ns: start,
            end_ns: start + dur,
        })
        .collect();
    vec![NodeTrace {
        clock: "sim".into(),
        spans,
        dropped: 0,
    }]
}

fn analyze(raw: &[RawSpan]) -> RunAnalysis {
    RunAnalysis::build(
        &MergedTimeline::build(&trace_of(raw)),
        &AnalysisConfig::default(),
    )
}

/// `Σ buckets == wall` up to float rounding of the ns → s conversion.
fn assert_conserved(st: &StepAnalysis) -> Result<(), TestCaseError> {
    let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
    prop_assert!(
        (sum - st.wall_seconds).abs() <= 1e-9 * st.wall_seconds.max(1.0),
        "step {}: buckets sum {sum} vs wall {}",
        st.step,
        st.wall_seconds
    );
    Ok(())
}

proptest! {
    #[test]
    fn attribution_tiles_the_wall_interval_exactly(
        raw in prop::collection::vec(span_strategy(), 1..60),
    ) {
        let a = analyze(&raw);
        for st in &a.steps {
            // Ordered, contiguous, gap-free: each segment starts where
            // the previous one ended, and the tiles sum to the wall.
            let mut cursor = st.path.first().expect("non-empty path").start_ns;
            let mut total_ns = 0u64;
            for seg in &st.path {
                prop_assert!(
                    seg.start_ns == cursor,
                    "gap or overlap in step {}: segment starts at {} not {cursor}",
                    st.step,
                    seg.start_ns
                );
                cursor += seg.dur_ns;
                total_ns += seg.dur_ns;
            }
            prop_assert!(
                (total_ns as f64 / 1e9 - st.wall_seconds).abs() <= 1e-12,
                "path covers {total_ns} ns vs wall {} s",
                st.wall_seconds
            );
            assert_conserved(st)?;
            // No single tile (hence no bucket) can exceed the wall.
            for seg in &st.path {
                prop_assert!(seg.dur_ns <= total_ns);
            }
        }
    }

    #[test]
    fn run_totals_are_the_sum_of_post_warmup_steps(
        raw in prop::collection::vec(span_strategy(), 1..60),
    ) {
        let a = analyze(&raw);
        let measured = &a.steps[a.warmup_steps..];
        let wall: f64 = measured.iter().map(|s| s.wall_seconds).sum();
        prop_assert!((wall - a.total_wall_seconds).abs() <= 1e-9 * wall.max(1.0));
        let mut expect: std::collections::BTreeMap<(String, String), f64> =
            std::collections::BTreeMap::new();
        for st in measured {
            for b in &st.buckets {
                *expect.entry((b.node.clone(), b.phase.clone())).or_insert(0.0) += b.seconds;
            }
        }
        prop_assert_eq!(a.totals.len(), expect.len());
        for b in &a.totals {
            let want = expect[&(b.node.clone(), b.phase.clone())];
            prop_assert!((b.seconds - want).abs() <= 1e-9 * want.max(1.0));
        }
        // The reported residual really is the worst per-step residual.
        for st in &a.steps {
            if st.wall_seconds > 0.0 {
                let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
                let residual = (sum - st.wall_seconds).abs() / st.wall_seconds;
                prop_assert!(residual <= a.conservation_error + 1e-12);
            }
        }
    }

    #[test]
    fn analysis_roundtrips_through_json(
        raw in prop::collection::vec(span_strategy(), 1..30),
    ) {
        let a = analyze(&raw);
        let json = serde_json::to_string(&a).expect("serialize");
        let back: RunAnalysis = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(back, a);
    }
}
