//! Property tests for histogram merge semantics: merging snapshots must
//! behave like pooling the underlying observations, no matter how the
//! observations were sharded or in which order the shards are combined.

use proptest::prelude::*;
use threelc_obs::{Histogram, HistogramSnapshot};

/// Records `values` into a fresh histogram and snapshots it.
fn hist_of(values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Structural equality up to float rounding in `sum`.
fn assert_equivalent(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.count, b.count, "count");
    assert_eq!(a.min, b.min, "min");
    assert_eq!(a.max, b.max, "max");
    assert_eq!(a.buckets, b.buckets, "buckets");
    let tolerance = 1e-9 * (1.0 + a.sum.abs().max(b.sum.abs()));
    assert!(
        (a.sum - b.sum).abs() <= tolerance,
        "sum: {} vs {}",
        a.sum,
        b.sum
    );
}

fn merged(parts: &[&HistogramSnapshot]) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for p in parts {
        out.merge(p);
    }
    out
}

proptest! {
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(0.0f64..1e6, 0..40),
        ys in prop::collection::vec(0.0f64..1e6, 0..40),
        zs in prop::collection::vec(0.0f64..1e6, 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_equivalent(&left, &right);
    }

    #[test]
    fn merge_is_order_insensitive(
        xs in prop::collection::vec(1e-9f64..1e9, 0..40),
        ys in prop::collection::vec(1e-9f64..1e9, 0..40),
        zs in prop::collection::vec(1e-9f64..1e9, 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let abc = merged(&[&a, &b, &c]);
        let cba = merged(&[&c, &b, &a]);
        let bac = merged(&[&b, &a, &c]);
        assert_equivalent(&abc, &cba);
        assert_equivalent(&abc, &bac);
    }

    #[test]
    fn merging_shards_equals_pooling_the_observations(
        xs in prop::collection::vec(0.0f64..1e6, 0..40),
        ys in prop::collection::vec(0.0f64..1e6, 0..40),
    ) {
        let mut sharded = hist_of(&xs);
        sharded.merge(&hist_of(&ys));
        let mut pooled_values = xs.clone();
        pooled_values.extend_from_slice(&ys);
        let pooled = hist_of(&pooled_values);
        assert_equivalent(&sharded, &pooled);
    }
}
