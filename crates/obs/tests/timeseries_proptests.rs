//! Property tests for the time-series ring: wraparound must conserve
//! counts and extremes, and downsampling must commute with splitting the
//! observation stream at any point.

use proptest::prelude::*;
use threelc_obs::timeseries::{downsample, merge_buckets, Point, Series};

fn points_of(values: &[f64]) -> Vec<Point> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| Point {
            step: i as u64,
            value: v,
        })
        .collect()
}

proptest! {
    #[test]
    fn wraparound_conserves_count_min_max_and_sum(
        values in prop::collection::vec(-1e6f64..1e6, 0..200),
        raw_window in 1usize..8,
        bucket_capacity in 1usize..8,
    ) {
        let mut s = Series::with_capacity("x", raw_window, bucket_capacity);
        for (step, &v) in values.iter().enumerate() {
            s.push(step as u64, v);
        }
        prop_assert_eq!(s.count(), values.len() as u64);
        let exact_min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let exact_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if values.is_empty() {
            prop_assert!(s.min().is_none());
            prop_assert!(s.max().is_none());
        } else {
            prop_assert_eq!(s.min(), Some(exact_min));
            prop_assert_eq!(s.max(), Some(exact_max));
            let exact_sum: f64 = values.iter().sum();
            let tol = 1e-9 * (1.0 + exact_sum.abs());
            prop_assert!((s.sum() - exact_sum).abs() <= tol,
                "sum {} vs exact {}", s.sum(), exact_sum);
            prop_assert_eq!(s.last().map(|p| p.value), values.last().copied());
        }
        // The ring stays bounded no matter how many points went in.
        prop_assert!(s.raw.len() <= raw_window);
        prop_assert!(s.buckets.len() <= bucket_capacity);
    }

    #[test]
    fn buckets_tile_the_evicted_prefix_in_step_order(
        n in 0usize..300,
        raw_window in 1usize..6,
        bucket_capacity in 1usize..6,
    ) {
        let mut s = Series::with_capacity("x", raw_window, bucket_capacity);
        for step in 0..n as u64 {
            s.push(step, step as f64);
        }
        for w in s.buckets.windows(2) {
            prop_assert!(w[0].start_step < w[1].start_step, "buckets out of order");
            prop_assert_eq!(w[0].width, w[1].width);
            prop_assert!(w[0].start_step + w[0].width <= w[1].start_step,
                "buckets overlap");
        }
        // The raw tail starts after every bucketed step.
        if let (Some(last_bucket), Some(first_raw)) = (s.buckets.last(), s.raw.first()) {
            prop_assert!(last_bucket.start_step < first_raw.step + 1);
        }
    }

    #[test]
    fn merge_of_downsampled_equals_downsample_of_merged(
        values in prop::collection::vec(-1e3f64..1e3, 0..120),
        width in 1u64..16,
        split_seed in 0usize..1000,
    ) {
        let points = points_of(&values);
        let split = if points.is_empty() { 0 } else { split_seed % (points.len() + 1) };
        let whole = downsample(&points, width);
        let merged = merge_buckets(
            &downsample(&points[..split], width),
            &downsample(&points[split..], width),
        );
        prop_assert_eq!(merged.len(), whole.len());
        for (m, w) in merged.iter().zip(&whole) {
            // Exact under any split: alignment, count, min, max.
            prop_assert_eq!(m.start_step, w.start_step);
            prop_assert_eq!(m.width, w.width);
            prop_assert_eq!(m.count, w.count);
            prop_assert_eq!(m.min, w.min);
            prop_assert_eq!(m.max, w.max);
            // Sum only up to float associativity.
            let tol = 1e-9 * (1.0 + w.sum.abs());
            prop_assert!((m.sum - w.sum).abs() <= tol, "sum {} vs {}", m.sum, w.sum);
        }
    }

    #[test]
    fn identical_push_sequences_yield_identical_series(
        values in prop::collection::vec(-1e6f64..1e6, 0..150),
        raw_window in 1usize..8,
        bucket_capacity in 1usize..8,
    ) {
        // The determinism argument for sim-vs-net bit-identity: the series
        // state is a pure function of the pushed sequence and capacities.
        let mut a = Series::with_capacity("x", raw_window, bucket_capacity);
        let mut b = Series::with_capacity("x", raw_window, bucket_capacity);
        for (step, &v) in values.iter().enumerate() {
            a.push(step as u64, v);
        }
        for (step, &v) in values.iter().enumerate() {
            b.push(step as u64, v);
        }
        prop_assert_eq!(a, b);
    }
}
