//! The server's final JSON report.

use crate::counters::ConnCounters;
use serde::{Deserialize, Serialize};
use threelc_distsim::ExperimentResult;
use threelc_obs::{Anomaly, NodeTrace};

/// One connection's summary in the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnReport {
    /// Worker id this connection served.
    pub worker: usize,
    /// Peer address as reported by the socket.
    pub peer: String,
    /// Traffic and time counters.
    pub counters: ConnCounters,
}

/// The networked run's final report: the standard [`ExperimentResult`]
/// (the same schema the `bench` harness caches and plots from), plus the
/// transport-level per-connection counters only a real network run has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetReport {
    /// The training outcome in the simulator's result schema.
    pub result: ExperimentResult,
    /// Per-connection transport counters, in worker-id order.
    pub connections: Vec<ConnReport>,
    /// Per-node span buffers collected at shutdown (server first, then
    /// workers in id order). Empty unless the run traced
    /// (`THREELC_TRACE=1`); `threelc trace` rebuilds the cross-node
    /// timeline from these.
    #[serde(default)]
    pub node_traces: Vec<NodeTrace>,
    /// Cross-node anomalies (stragglers) the watchdog flagged in the
    /// merged timeline. Step-level anomalies (compression-ratio drift,
    /// residual blowups) live in `result.trace.anomalies`.
    #[serde(default)]
    pub anomalies: Vec<Anomaly>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;
    use threelc_distsim::{run_experiment, ExperimentConfig};

    #[test]
    fn report_embeds_a_plain_experiment_result() {
        let result = run_experiment(&ExperimentConfig {
            workers: 1,
            batch_per_worker: 4,
            total_steps: 2,
            model_width: 8,
            model_blocks: 1,
            ..ExperimentConfig::for_scheme(SchemeKind::Float32)
        });
        let report = NetReport {
            result: result.clone(),
            connections: vec![ConnReport {
                worker: 0,
                peer: "127.0.0.1:9".into(),
                counters: ConnCounters::default(),
            }],
            node_traces: vec![NodeTrace {
                clock: "server".into(),
                spans: Vec::new(),
                dropped: 0,
            }],
            anomalies: Vec::new(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: NetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // Reports from pre-trace builds (no node_traces/anomalies keys)
        // still parse.
        let stripped = json
            .replace(
                ",\"node_traces\":[{\"clock\":\"server\",\"spans\":[],\"dropped\":0}]",
                "",
            )
            .replace(",\"anomalies\":[]", "");
        assert_ne!(stripped, json);
        let old: NetReport = serde_json::from_str(&stripped).unwrap();
        assert!(old.node_traces.is_empty());
        assert!(old.anomalies.is_empty());
        // The embedded result stays readable by ExperimentResult readers
        // (bench's cache schema).
        let embedded = serde_json::to_string(&report.result).unwrap();
        let parsed: ExperimentResult = serde_json::from_str(&embedded).unwrap();
        assert_eq!(parsed, result);
    }
}
