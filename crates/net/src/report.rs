//! The server's final JSON report.

use crate::counters::ConnCounters;
use serde::{Deserialize, Serialize};
use threelc_distsim::ExperimentResult;
use threelc_obs::{Anomaly, NodeTrace, RunAnalysis, RunSeries, Snapshot};

/// One connection's summary in the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnReport {
    /// Worker id this connection served.
    pub worker: usize,
    /// Peer address as reported by the socket.
    pub peer: String,
    /// Traffic and time counters.
    pub counters: ConnCounters,
}

/// One server-visible fault during a run: a worker disconnect or a
/// successful rejoin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Step the coordinator was at when the event happened.
    pub step: u64,
    /// Worker involved.
    pub worker: usize,
    /// `disconnect` or `rejoin`.
    pub kind: String,
    /// Human-readable cause (the handler error for disconnects).
    pub detail: String,
}

/// The fault-tolerance section of the report: how turbulent the run was.
///
/// A fault-free run reports all zeros, and old reports without the
/// section parse as that.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultsReport {
    /// Mid-run worker disconnects the coordinator survived.
    pub disconnects: u64,
    /// Successful rejoins (each pairs with one disconnect).
    pub rejoins: u64,
    /// The event log, in coordinator order.
    #[serde(default)]
    pub events: Vec<FaultEvent>,
}

/// The networked run's final report: the standard [`ExperimentResult`]
/// (the same schema the `bench` harness caches and plots from), plus the
/// transport-level per-connection counters only a real network run has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetReport {
    /// The training outcome in the simulator's result schema.
    pub result: ExperimentResult,
    /// CRC-32 fingerprint of the final global model's parameter bytes
    /// ([`crate::protocol::model_crc32`]); `threelc simulate` prints the
    /// same fingerprint for the same configuration, so "did the networked
    /// run converge to the simulator's exact model" is one string compare.
    /// Zero in reports written before the field existed.
    #[serde(default)]
    pub final_model_crc32: u32,
    /// The server aggregation mode the run used (`f32`, `exact`, or
    /// `compressed` — [`threelc_distsim::AggregateMode::name`]). Empty in
    /// reports written before the field existed (those runs predate the
    /// mode switch and aggregated on the `f32` path).
    #[serde(default)]
    pub aggregate_mode: String,
    /// Per-connection transport counters, in worker-id order. Workers
    /// that reconnected mid-run report the totals across all their
    /// connections.
    pub connections: Vec<ConnReport>,
    /// Disconnect/rejoin accounting for the run.
    #[serde(default)]
    pub faults: FaultsReport,
    /// Per-node span buffers collected at shutdown (server first, then
    /// workers in id order). Empty unless the run traced
    /// (`THREELC_TRACE=1`); `threelc trace` rebuilds the cross-node
    /// timeline from these.
    #[serde(default)]
    pub node_traces: Vec<NodeTrace>,
    /// Cross-node anomalies (stragglers) the watchdog flagged in the
    /// merged timeline. Step-level anomalies (compression-ratio drift,
    /// residual blowups) live in `result.trace.anomalies`.
    #[serde(default)]
    pub anomalies: Vec<Anomaly>,
    /// The run's final time-series store (per-worker + run-level), exactly
    /// what the last live `SeriesRequest` scrape would have returned. Its
    /// [`RunSeries::deterministic`] view equals the simulator's for the
    /// same configuration. Empty in reports written before the field
    /// existed.
    #[serde(default)]
    pub series: RunSeries,
    /// Critical-path analysis of the run, computed server-side from the
    /// merged timeline at shutdown (`None` unless the run traced).
    /// `threelc analyze <report.json>` prefers rebuilding from
    /// `node_traces` and falls back to this embedded copy.
    #[serde(default)]
    pub analysis: Option<RunAnalysis>,
    /// Final metrics-registry snapshot, so `threelc metrics --prom` can
    /// expose a finished run to standard scrapers. Empty in reports
    /// written before the field existed.
    #[serde(default)]
    pub metrics: Snapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;
    use threelc_distsim::{run_experiment, ExperimentConfig};

    #[test]
    fn report_embeds_a_plain_experiment_result() {
        let result = run_experiment(&ExperimentConfig {
            workers: 1,
            batch_per_worker: 4,
            total_steps: 2,
            model_width: 8,
            model_blocks: 1,
            ..ExperimentConfig::for_scheme(SchemeKind::Float32)
        });
        let report = NetReport {
            result: result.clone(),
            final_model_crc32: 0xDEAD_BEEF,
            aggregate_mode: "exact".into(),
            connections: vec![ConnReport {
                worker: 0,
                peer: "127.0.0.1:9".into(),
                counters: ConnCounters::default(),
            }],
            faults: FaultsReport {
                disconnects: 1,
                rejoins: 1,
                events: vec![FaultEvent {
                    step: 3,
                    worker: 0,
                    kind: "rejoin".into(),
                    detail: "replayed 3 step(s)".into(),
                }],
            },
            node_traces: vec![NodeTrace {
                clock: "server".into(),
                spans: Vec::new(),
                dropped: 0,
            }],
            anomalies: Vec::new(),
            series: RunSeries::default(),
            analysis: None,
            metrics: Snapshot::default(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: NetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // Reports from pre-trace, pre-fault-tolerance builds (no
        // node_traces/anomalies/faults/final_model_crc32 keys) still parse.
        let stripped = json
            .replace(
                ",\"node_traces\":[{\"clock\":\"server\",\"spans\":[],\"dropped\":0}]",
                "",
            )
            .replace(",\"anomalies\":[]", "")
            .replace("\"final_model_crc32\":3735928559,", "")
            .replace("\"aggregate_mode\":\"exact\",", "")
            .replace(
                ",\"faults\":{\"disconnects\":1,\"rejoins\":1,\"events\":\
                 [{\"step\":3,\"worker\":0,\"kind\":\"rejoin\",\
                 \"detail\":\"replayed 3 step(s)\"}]}",
                "",
            );
        assert_ne!(stripped, json);
        assert!(!stripped.contains("faults"), "faults key not stripped");
        assert!(
            !stripped.contains("final_model_crc32"),
            "crc key not stripped"
        );
        // Pre-analyzer reports lack the analysis/metrics keys too.
        let stripped = stripped.replace(",\"analysis\":null", "").replace(
            ",\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}",
            "",
        );
        assert!(!stripped.contains("analysis"), "analysis key not stripped");
        assert!(!stripped.contains("metrics"), "metrics key not stripped");
        let old: NetReport = serde_json::from_str(&stripped).unwrap();
        assert!(old.node_traces.is_empty());
        assert!(old.anomalies.is_empty());
        assert!(old.analysis.is_none());
        assert_eq!(old.metrics, Snapshot::default());
        assert_eq!(old.final_model_crc32, 0);
        assert!(
            !stripped.contains("aggregate_mode"),
            "aggregate_mode key not stripped"
        );
        assert_eq!(old.aggregate_mode, "");
        assert_eq!(old.faults, FaultsReport::default());
        // The embedded result stays readable by ExperimentResult readers
        // (bench's cache schema).
        let embedded = serde_json::to_string(&report.result).unwrap();
        let parsed: ExperimentResult = serde_json::from_str(&embedded).unwrap();
        assert_eq!(parsed, result);
    }
}
