//! Per-connection traffic and time accounting.

use crate::frame::HEADER_LEN;
use serde::{Deserialize, Serialize};

/// Counters kept by each side of a connection: raw traffic, retry count,
/// and a split of CPU time into codec work (compress/decompress and
/// f32 serialization) versus socket work (blocking reads and writes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnCounters {
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Bytes received (headers + payloads).
    pub bytes_in: u64,
    /// Bytes sent (headers + payloads).
    pub bytes_out: u64,
    /// Connection attempts that failed and were retried.
    pub retries: u64,
    /// Seconds spent in codec work.
    pub codec_seconds: f64,
    /// Seconds spent blocked on socket reads/writes.
    pub socket_seconds: f64,
    /// Seconds spent sleeping in connect-retry backoff. Defaults to zero
    /// when absent, so reports written before this field existed still
    /// parse.
    #[serde(default)]
    pub backoff_seconds: f64,
}

impl ConnCounters {
    /// Records one received frame of `payload_len` payload bytes that took
    /// `seconds` of blocking read time.
    pub fn note_read(&mut self, payload_len: usize, seconds: f64) {
        self.frames_in += 1;
        self.bytes_in += (HEADER_LEN + payload_len) as u64;
        self.socket_seconds += seconds;
    }

    /// Records one sent frame of `payload_len` payload bytes that took
    /// `seconds` of blocking write time.
    pub fn note_write(&mut self, payload_len: usize, seconds: f64) {
        self.frames_out += 1;
        self.bytes_out += (HEADER_LEN + payload_len) as u64;
        self.socket_seconds += seconds;
    }

    /// Records one failed connection attempt and the backoff sleep that
    /// preceded it.
    pub fn note_retry(&mut self, backoff_seconds: f64) {
        self.retries += 1;
        self.backoff_seconds += backoff_seconds;
    }

    /// Accumulates another counter set (e.g. across reconnects).
    pub fn merge(&mut self, other: &ConnCounters) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.retries += other.retries;
        self.codec_seconds += other.codec_seconds;
        self.socket_seconds += other.socket_seconds;
        self.backoff_seconds += other.backoff_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_count_header_bytes() {
        let mut c = ConnCounters::default();
        c.note_read(100, 0.5);
        c.note_write(0, 0.25);
        assert_eq!(c.frames_in, 1);
        assert_eq!(c.frames_out, 1);
        assert_eq!(c.bytes_in, (HEADER_LEN + 100) as u64);
        assert_eq!(c.bytes_out, HEADER_LEN as u64);
        assert!((c.socket_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ConnCounters {
            frames_in: 1,
            frames_out: 2,
            bytes_in: 3,
            bytes_out: 4,
            retries: 5,
            codec_seconds: 0.5,
            socket_seconds: 0.25,
            backoff_seconds: 0.125,
        };
        a.merge(&a.clone());
        assert_eq!(a.frames_in, 2);
        assert_eq!(a.frames_out, 4);
        assert_eq!(a.bytes_in, 6);
        assert_eq!(a.bytes_out, 8);
        assert_eq!(a.retries, 10);
        assert!((a.codec_seconds - 1.0).abs() < 1e-12);
        assert!((a.backoff_seconds - 0.25).abs() < 1e-12);
    }

    #[test]
    fn note_retry_counts_attempts_and_sleep_time() {
        let mut c = ConnCounters::default();
        c.note_retry(0.1);
        c.note_retry(0.2);
        assert_eq!(c.retries, 2);
        assert!((c.backoff_seconds - 0.3).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let c = ConnCounters {
            frames_in: 7,
            retries: 1,
            codec_seconds: 0.125,
            backoff_seconds: 0.5,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: ConnCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn reports_without_backoff_field_still_parse() {
        // A report written before `backoff_seconds` existed.
        let old = r#"{"frames_in":1,"frames_out":2,"bytes_in":3,"bytes_out":4,
                      "retries":0,"codec_seconds":0.5,"socket_seconds":0.25}"#;
        let c: ConnCounters = serde_json::from_str(old).unwrap();
        assert_eq!(c.frames_in, 1);
        assert_eq!(c.backoff_seconds, 0.0);
    }
}
