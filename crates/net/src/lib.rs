//! `threelc-net`: a real TCP parameter-server runtime carrying the 3LC
//! wire format.
//!
//! The in-process simulator (`threelc-distsim`) models traffic; this crate
//! moves it. It is std-only — `std::net` sockets, `std::thread` handlers,
//! `std::sync::mpsc` barriers — and reuses the simulator's step engine
//! ([`threelc_distsim::engine`]) so a networked run produces bit-identical
//! models to a simulated run of the same configuration.
//!
//! # Frame format
//!
//! Every message is one length-prefixed frame (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "3LCN"
//!      4     1  protocol version (1 = no trace context, 2 = 16-byte ext)
//!      5     1  message type
//!      6     2  tensor id
//!      8     8  step number
//!     16     4  payload length
//!     20     4  CRC-32 (IEEE) over header bytes 0..20 + ext + payload
//!     24    16  [version 2 only] trace context: trace id + span id
//!   24/40     n  payload (the 3LC wire format, raw f32s, or control data)
//! ```
//!
//! Frames without a trace context are emitted as version 1, byte-for-byte
//! identical to the pre-trace protocol, so old and new peers interoperate
//! whenever tracing is off (see [`frame`]).
//!
//! See [`frame`] for the codec, [`server::serve`] and
//! [`worker::run_worker`] for the two runtime roles.

pub mod counters;
pub mod crc32;
pub mod faults;
pub mod frame;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod server;
pub mod worker;

pub use counters::ConnCounters;
pub use faults::{FaultAction, FaultInjector, FaultKind, FaultPlan, FAULT_ENV, KILL_EXIT_CODE};
pub use frame::{Frame, FrameError, MsgType, HEADER_LEN, MAX_PAYLOAD};
pub use metrics::{scrape_metrics, scrape_series, scrape_trace, Conn, NetMetrics};
pub use protocol::{model_crc32, NetError};
pub use report::{ConnReport, FaultEvent, FaultsReport, NetReport};
pub use server::{serve, ServeOptions};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome};
