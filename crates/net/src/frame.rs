//! The length-prefixed frame codec.
//!
//! Every message on a 3LC connection is one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"3LCN"
//!      4     1  version      protocol version (1 or 2)
//!      5     1  msg type     MsgType discriminant
//!      6     2  tensor id    u16 LE (0 where not applicable)
//!      8     8  step         u64 LE training step (0 during handshake)
//!     16     4  payload len  u32 LE (payload only, extension excluded)
//!     20     4  crc32        u32 LE over bytes 0..20, the extension
//!                            (if any), and the payload
//!     24    16  trace ext    version 2 only: trace id (u64 LE) +
//!                            span id (u64 LE) — the sender's trace
//!                            context ([`TraceContext`])
//!      …     …  payload      `len` bytes (a `threelc` wire payload,
//!                            raw f32 LE values, or protocol metadata)
//! ```
//!
//! Version 1 frames have no extension; version 2 frames carry the 16-byte
//! trace-context extension between header and payload. The encoder emits
//! version 1 whenever the trace context is [`TraceContext::NONE`] (so a
//! run without tracing is byte-identical to the pre-trace protocol) and
//! version 2 only when context is present; the decoder accepts both.
//!
//! The CRC covers the header fields, the extension, *and* the payload, so
//! any single corrupted byte anywhere in the frame is rejected. Decoding
//! validates the magic, version, message type, and length cap before
//! allocating or reading payload bytes, so a malicious length field
//! cannot trigger a huge allocation and a truncated stream yields a clean
//! error — never a panic, never an over-read.

use crate::crc32::Crc32;
use std::io::{self, Read, Write};

/// Frame magic: distinguishes the network protocol from `.3lc` files.
pub const MAGIC: [u8; 4] = *b"3LCN";

/// Highest protocol version this build emits (2 = trace-context frames).
pub const PROTOCOL_VERSION: u8 = 2;

/// Lowest protocol version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 24;

/// Length of the version-2 trace-context extension.
pub const TRACE_EXT_LEN: usize = 16;

/// Hard cap on payload length (64 MiB) — far above any tensor this
/// workspace trains, low enough that a corrupted length field cannot
/// exhaust memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Message types of the parameter-server protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Worker → server: `payload = worker id (u16 LE)`.
    Hello = 1,
    /// Server → worker: `payload = ExperimentConfig JSON`.
    HelloAck = 2,
    /// Worker → server: one compressed gradient tensor.
    PushTensor = 3,
    /// Worker → server: one uncompressed gradient tensor (f32 LE).
    PushRaw = 4,
    /// Worker → server: end of push; `payload = loss (f32 LE) +
    /// codec seconds (f64 LE) [+ residual L2 (f64 LE) [+ step seconds
    /// (f64 LE)]]` — length-gated, older short forms still decode.
    PushDone = 5,
    /// Server → worker: one compressed model-delta tensor.
    PullTensor = 6,
    /// Server → worker: one uncompressed model-delta tensor (f32 LE).
    PullRaw = 7,
    /// Server → worker: end of pull.
    PullDone = 8,
    /// Server → worker: training complete, close after acking.
    Shutdown = 9,
    /// Worker → server: shutdown acknowledged.
    ShutdownAck = 10,
    /// Scraper → server: request a metrics snapshot (empty payload).
    MetricsRequest = 11,
    /// Server → scraper: `payload = threelc_obs::Snapshot JSON`.
    MetricsSnapshot = 12,
    /// Server → worker (or scraper → server): request the peer's span
    /// buffer (empty payload).
    TraceDumpRequest = 13,
    /// Reply: `payload = threelc_obs::NodeTrace JSON`.
    TraceDump = 14,
    /// Worker → server: reconnect mid-run; `payload = worker id (u16 LE)`.
    Rejoin = 15,
    /// Server → worker: resume grant; `payload = resume step (u64 LE) +
    /// ExperimentConfig JSON`. Followed by a replay of every completed
    /// step's pull batch.
    RejoinAck = 16,
    /// Server → worker: the compression-policy decisions for the *next*
    /// step, broadcast with the pull batch; `payload = count (u16 LE) +
    /// count × [s (f32 LE) + reason (u8)]`. Only emitted when an adaptive
    /// policy is active, so static runs stay byte-identical to the
    /// pre-policy protocol.
    PolicyUpdate = 17,
    /// Scraper → server: request the run's time-series store (empty
    /// payload). Answered on the metrics side-door, like
    /// [`MsgType::MetricsRequest`].
    SeriesRequest = 18,
    /// Server → scraper: `payload = threelc_obs::RunSeries JSON`.
    SeriesDump = 19,
}

impl MsgType {
    /// Parses a wire discriminant.
    pub fn from_u8(v: u8) -> Option<MsgType> {
        match v {
            1 => Some(MsgType::Hello),
            2 => Some(MsgType::HelloAck),
            3 => Some(MsgType::PushTensor),
            4 => Some(MsgType::PushRaw),
            5 => Some(MsgType::PushDone),
            6 => Some(MsgType::PullTensor),
            7 => Some(MsgType::PullRaw),
            8 => Some(MsgType::PullDone),
            9 => Some(MsgType::Shutdown),
            10 => Some(MsgType::ShutdownAck),
            11 => Some(MsgType::MetricsRequest),
            12 => Some(MsgType::MetricsSnapshot),
            13 => Some(MsgType::TraceDumpRequest),
            14 => Some(MsgType::TraceDump),
            15 => Some(MsgType::Rejoin),
            16 => Some(MsgType::RejoinAck),
            17 => Some(MsgType::PolicyUpdate),
            18 => Some(MsgType::SeriesRequest),
            19 => Some(MsgType::SeriesDump),
            _ => None,
        }
    }
}

/// The trace context a frame carries in its version-2 extension: the
/// sender's run-wide trace id plus the span under which the frame was
/// sent, letting the receiver parent its own spans under the sender's.
///
/// The all-zero value means "no context" and is never emitted on the
/// wire — such frames encode as version 1 instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Run-wide trace identifier (0 = none).
    pub trace_id: u64,
    /// Sending span identifier (0 = none).
    pub span_id: u64,
}

impl TraceContext {
    /// The absent context; frames with this context encode as version 1.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        *self == TraceContext::NONE
    }

    /// Captures the calling thread's active trace scope (if tracing is
    /// enabled and a [`threelc_obs::TraceScope`] is live), else
    /// [`TraceContext::NONE`].
    pub fn current() -> TraceContext {
        match threelc_obs::current_ctx() {
            Some(ctx) => TraceContext {
                trace_id: ctx.trace,
                span_id: ctx.span,
            },
            None => TraceContext::NONE,
        }
    }

    /// The obs-side view of this context, or `None` if absent.
    pub fn to_obs(self) -> Option<threelc_obs::TraceCtx> {
        if self.is_none() {
            None
        } else {
            Some(threelc_obs::TraceCtx {
                trace: self.trace_id,
                span: self.span_id,
            })
        }
    }

    /// Serializes the 16-byte wire extension.
    fn to_bytes(self) -> [u8; TRACE_EXT_LEN] {
        let mut b = [0u8; TRACE_EXT_LEN];
        b[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        b[8..16].copy_from_slice(&self.span_id.to_le_bytes());
        b
    }

    /// Parses the 16-byte wire extension.
    fn from_bytes(b: &[u8]) -> TraceContext {
        TraceContext {
            trace_id: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            span_id: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type.
    pub msg: MsgType,
    /// Tensor index (0 where not applicable).
    pub tensor: u16,
    /// Training step (0 during handshake).
    pub step: u64,
    /// Trace context carried in the version-2 extension
    /// ([`TraceContext::NONE`] for version-1 frames).
    pub trace: TraceContext,
    /// Message payload.
    pub payload: Vec<u8>,
}

/// Frame codec failures.
#[derive(Debug)]
pub enum FrameError {
    /// The magic bytes did not match.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message type discriminant.
    BadMsgType(u8),
    /// Payload length above [`MAX_PAYLOAD`].
    Oversize {
        /// Claimed payload length.
        len: usize,
    },
    /// Checksum mismatch (corrupted frame).
    CrcMismatch {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received bytes.
        actual: u32,
    },
    /// Not enough bytes for the declared frame.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the frame needs.
        need: usize,
    },
    /// Underlying socket/stream error (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadMsgType(t) => write!(f, "unknown message type {t}"),
            FrameError::Oversize { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            FrameError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "frame checksum {actual:08x} != header checksum {expected:08x}"
                )
            }
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Builds the 24-byte header (including the CRC over header, extension,
/// and payload). An empty `ext` selects version 1; a 16-byte trace
/// extension selects version 2.
fn header_bytes(
    msg: MsgType,
    tensor: u16,
    step: u64,
    ext: &[u8],
    payload: &[u8],
) -> [u8; HEADER_LEN] {
    debug_assert!(ext.is_empty() || ext.len() == TRACE_EXT_LEN);
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = if ext.is_empty() {
        MIN_PROTOCOL_VERSION
    } else {
        PROTOCOL_VERSION
    };
    h[5] = msg as u8;
    h[6..8].copy_from_slice(&tensor.to_le_bytes());
    h[8..16].copy_from_slice(&step.to_le_bytes());
    h[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&h[..20]);
    crc.update(ext);
    crc.update(payload);
    h[20..24].copy_from_slice(&crc.finish().to_le_bytes());
    h
}

/// Extension length implied by a (validated) version byte.
fn ext_len_for(version: u8) -> usize {
    if version >= 2 {
        TRACE_EXT_LEN
    } else {
        0
    }
}

impl Frame {
    /// Constructs a frame with no trace context (encodes as version 1).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`]; senders control
    /// their payload sizes, so that is a programming error.
    pub fn new(msg: MsgType, tensor: u16, step: u64, payload: Vec<u8>) -> Frame {
        assert!(payload.len() <= MAX_PAYLOAD, "payload above MAX_PAYLOAD");
        Frame {
            msg,
            tensor,
            step,
            trace: TraceContext::NONE,
            payload,
        }
    }

    /// Attaches a trace context (a non-NONE context encodes as version 2).
    pub fn with_trace(mut self, trace: TraceContext) -> Frame {
        self.trace = trace;
        self
    }

    /// Total encoded length.
    pub fn encoded_len(&self) -> usize {
        let ext = if self.trace.is_none() {
            0
        } else {
            TRACE_EXT_LEN
        };
        HEADER_LEN + ext + self.payload.len()
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let ext_buf = self.trace.to_bytes();
        let ext: &[u8] = if self.trace.is_none() { &[] } else { &ext_buf };
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&header_bytes(
            self.msg,
            self.tensor,
            self.step,
            ext,
            &self.payload,
        ));
        out.extend_from_slice(ext);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses one frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for truncation, bad magic/version/type, an
    /// oversize length field, or a checksum mismatch. Never reads past
    /// the declared frame length.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: HEADER_LEN,
            });
        }
        let header = &bytes[..HEADER_LEN];
        validate_fixed_header(header)?;
        let ext_len = ext_len_for(header[4]);
        let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversize { len });
        }
        let total = HEADER_LEN + ext_len + len;
        if bytes.len() < total {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: total,
            });
        }
        let ext = &bytes[HEADER_LEN..HEADER_LEN + ext_len];
        let payload = &bytes[HEADER_LEN + ext_len..total];
        check_crc(header, ext, payload)?;
        Ok((
            Frame {
                msg: MsgType::from_u8(header[5]).expect("validated above"),
                tensor: u16::from_le_bytes(header[6..8].try_into().expect("2 bytes")),
                step: u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")),
                trace: if ext.is_empty() {
                    TraceContext::NONE
                } else {
                    TraceContext::from_bytes(ext)
                },
                payload: payload.to_vec(),
            },
            total,
        ))
    }
}

/// Validates magic, version, and message type (everything before the
/// length field).
fn validate_fixed_header(header: &[u8]) -> Result<(), FrameError> {
    if header[0..4] != MAGIC {
        return Err(FrameError::BadMagic(
            header[0..4].try_into().expect("4 bytes"),
        ));
    }
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&header[4]) {
        return Err(FrameError::BadVersion(header[4]));
    }
    if MsgType::from_u8(header[5]).is_none() {
        return Err(FrameError::BadMsgType(header[5]));
    }
    Ok(())
}

/// Verifies the header CRC against header bytes 0..20 plus the extension
/// and payload.
fn check_crc(header: &[u8], ext: &[u8], payload: &[u8]) -> Result<(), FrameError> {
    let expected = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&header[..20]);
    crc.update(ext);
    crc.update(payload);
    let actual = crc.finish();
    if actual != expected {
        return Err(FrameError::CrcMismatch { expected, actual });
    }
    Ok(())
}

/// Writes one frame without copying the payload into an owned [`Frame`],
/// stamping it with the calling thread's current trace context (a live
/// [`threelc_obs::TraceScope`] makes every outgoing frame a version-2
/// frame automatically; with tracing off the wire bytes are identical to
/// protocol version 1). Returns the number of bytes written.
///
/// # Errors
///
/// Propagates stream write failures (including write timeouts).
pub fn write_frame<W: Write>(
    w: &mut W,
    msg: MsgType,
    tensor: u16,
    step: u64,
    payload: &[u8],
) -> io::Result<usize> {
    write_frame_traced(w, msg, tensor, step, payload, TraceContext::current())
}

/// [`write_frame`] with an explicit trace context instead of the
/// thread-ambient one.
///
/// # Errors
///
/// Propagates stream write failures (including write timeouts).
pub fn write_frame_traced<W: Write>(
    w: &mut W,
    msg: MsgType,
    tensor: u16,
    step: u64,
    payload: &[u8],
    trace: TraceContext,
) -> io::Result<usize> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload above MAX_PAYLOAD");
    let ext_buf = trace.to_bytes();
    let ext: &[u8] = if trace.is_none() { &[] } else { &ext_buf };
    w.write_all(&header_bytes(msg, tensor, step, ext, payload))?;
    w.write_all(ext)?;
    w.write_all(payload)?;
    Ok(HEADER_LEN + ext.len() + payload.len())
}

/// Reads exactly one frame from a stream.
///
/// Reads the fixed header first, validates it (so a bogus length is
/// rejected before any allocation), then reads the version-implied
/// extension and exactly the declared payload. A peer that closes
/// mid-frame produces [`FrameError::Io`]/[`FrameError::Truncated`]-style
/// errors via `read_exact`, never a panic.
///
/// # Errors
///
/// Returns a [`FrameError`] for I/O failures (including read timeouts)
/// and every malformed-frame condition [`Frame::decode`] reports.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    validate_fixed_header(&header)?;
    let ext_len = ext_len_for(header[4]);
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize { len });
    }
    let mut ext = [0u8; TRACE_EXT_LEN];
    let ext = &mut ext[..ext_len];
    r.read_exact(ext)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    check_crc(&header, ext, &payload)?;
    Ok(Frame {
        msg: MsgType::from_u8(header[5]).expect("validated above"),
        tensor: u16::from_le_bytes(header[6..8].try_into().expect("2 bytes")),
        step: u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")),
        trace: if ext.is_empty() {
            TraceContext::NONE
        } else {
            TraceContext::from_bytes(ext)
        },
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(MsgType::PushTensor, 7, 42, vec![1, 2, 3, 4, 5])
    }

    fn sample_traced() -> Frame {
        sample().with_trace(TraceContext {
            trace_id: 0xDEAD_BEEF_0BAD_CAFE,
            span_id: 0x0123_4567_89AB_CDEF,
        })
    }

    /// Hand-builds a version-1 frame the way a pre-trace peer would.
    fn v1_bytes(msg: MsgType, tensor: u16, step: u64, payload: &[u8]) -> Vec<u8> {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&MAGIC);
        h[4] = 1;
        h[5] = msg as u8;
        h[6..8].copy_from_slice(&tensor.to_le_bytes());
        h[8..16].copy_from_slice(&step.to_le_bytes());
        h[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&h[..20]);
        crc.update(payload);
        h[20..24].copy_from_slice(&crc.finish().to_le_bytes());
        let mut out = h.to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn roundtrip_via_slice_and_stream() {
        let f = sample();
        let bytes = f.encode();
        let (back, used) = Frame::decode(&bytes).expect("decode");
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).expect("read"), f);
    }

    #[test]
    fn write_frame_matches_encode() {
        let f = sample();
        let mut out = Vec::new();
        let n = write_frame(&mut out, f.msg, f.tensor, f.step, &f.payload).expect("write");
        assert_eq!(out, f.encode());
        assert_eq!(n, f.encoded_len());
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(&[0xAA; 10]);
        let (_, used) = Frame::decode(&bytes).expect("decode");
        assert_eq!(used, bytes.len() - 10);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_errors() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(Frame::decode(&corrupt).is_err(), "flip at byte {i} decoded");
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = sample().encode();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(FrameError::Oversize { len }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversize, got {other:?}"),
        }
        // Streaming path too: the reader must not try to allocate 4 GiB.
        let mut cursor = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn specific_error_variants() {
        let good = sample().encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(FrameError::BadVersion(9))
        ));

        let mut bad_type = good.clone();
        bad_type[5] = 200;
        assert!(matches!(
            Frame::decode(&bad_type),
            Err(FrameError::BadMsgType(200))
        ));

        let mut bad_payload = good.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bad_payload),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_tensor_and_step_fields_are_caught() {
        // tensor id and step are covered by the CRC — a flipped routing
        // field must not deliver the payload to the wrong tensor.
        let bytes = sample().encode();
        for i in 6..16 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x80;
            assert!(matches!(
                Frame::decode(&corrupt),
                Err(FrameError::CrcMismatch { .. })
            ));
        }
    }

    #[test]
    fn empty_payload_frames_work() {
        let f = Frame::new(MsgType::PullDone, 0, 3, Vec::new());
        let (back, used) = Frame::decode(&f.encode()).expect("decode");
        assert_eq!(back, f);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn msg_type_roundtrip() {
        for v in 1..=19u8 {
            let m = MsgType::from_u8(v).expect("valid discriminant");
            assert_eq!(m as u8, v);
        }
        assert!(MsgType::from_u8(0).is_none());
        assert!(MsgType::from_u8(20).is_none());
    }

    #[test]
    fn contextless_frames_stay_version_1_on_the_wire() {
        // A trace-free frame must be byte-identical to what a pre-trace
        // build would emit: old peers keep decoding us.
        let f = sample();
        let bytes = f.encode();
        assert_eq!(bytes[4], 1, "contextless frames must carry version 1");
        assert_eq!(bytes, v1_bytes(f.msg, f.tensor, f.step, &f.payload));
    }

    #[test]
    fn version_1_frames_from_old_peers_decode() {
        let bytes = v1_bytes(MsgType::PushDone, 0, 9, &[7, 8, 9]);
        let (f, used) = Frame::decode(&bytes).expect("v1 decode");
        assert_eq!(used, bytes.len());
        assert_eq!(f.msg, MsgType::PushDone);
        assert_eq!(f.step, 9);
        assert!(f.trace.is_none());
        assert_eq!(f.payload, vec![7, 8, 9]);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).expect("v1 stream"), f);
    }

    #[test]
    fn traced_frames_roundtrip_with_context() {
        let f = sample_traced();
        let bytes = f.encode();
        assert_eq!(bytes[4], 2, "traced frames must carry version 2");
        assert_eq!(bytes.len(), HEADER_LEN + TRACE_EXT_LEN + f.payload.len());
        let (back, used) = Frame::decode(&bytes).expect("decode");
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).expect("read"), f);
    }

    #[test]
    fn write_frame_traced_matches_encode() {
        let f = sample_traced();
        let mut out = Vec::new();
        let n = write_frame_traced(&mut out, f.msg, f.tensor, f.step, &f.payload, f.trace)
            .expect("write");
        assert_eq!(out, f.encode());
        assert_eq!(n, f.encoded_len());
    }

    #[test]
    fn traced_frame_corruption_and_truncation_error() {
        // The CRC must cover the trace extension too: flipping any byte
        // of a v2 frame — header, extension, or payload — is rejected,
        // and so is every truncated prefix.
        let bytes = sample_traced().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(Frame::decode(&corrupt).is_err(), "flip at byte {i} decoded");
        }
        for cut in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample_traced().encode();
        bytes[4] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadVersion(_))
        ));
    }
}
