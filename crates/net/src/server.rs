//! The parameter-server side of the networked runtime.
//!
//! One OS thread per worker connection handles framing; a coordinator
//! (the calling thread) owns the [`ServerCore`] and enforces the BSP
//! barrier: it waits for every worker's push batch, applies the step, and
//! broadcasts one shared pull batch back to all handlers. The arithmetic
//! is exactly [`threelc_distsim::engine`]'s, so a networked run matches
//! the in-process simulator bit for bit.
//!
//! Failure semantics are fail-stop: a protocol violation, checksum
//! mismatch, timeout, or dropped connection on any worker aborts the run
//! with an error. Every blocking socket operation is bounded by
//! [`ServeOptions::io_timeout`], and every barrier wait by
//! [`ServeOptions::step_timeout`], so a dead peer cannot wedge the
//! server.

use crate::counters::ConnCounters;
use crate::frame::{read_frame, write_frame, MsgType};
use crate::metrics::{Conn, NetMetrics};
use crate::protocol::{
    bytes_to_tensor, decode_hello, decode_push_done, decode_trace_dump, encode_metrics_snapshot,
    encode_trace_dump, tensor_to_bytes, NetError,
};
use crate::report::{ConnReport, NetReport};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};
use threelc_distsim::engine::{self, Problem, ServerCore, TensorPayload};
use threelc_distsim::trace::{EvalRecord, StepRecord, TrainingTrace};
use threelc_distsim::{ExperimentConfig, ExperimentResult};
use threelc_learning::Evaluation;
use threelc_obs::{
    trace, Level, MergedTimeline, NodeTrace, SpanGuard, TraceBuffer, TraceScope, TraceSpan,
    WatchdogConfig,
};
use threelc_tensor::Shape;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Read/write timeout on every worker socket.
    pub io_timeout: Duration,
    /// How long the coordinator waits at a barrier (for all pushes to
    /// arrive, or for handlers to finish) before declaring the run dead.
    pub step_timeout: Duration,
    /// Codec/aggregation threads for the server core (`0` = one per
    /// hardware core). A performance hint only: the trained model is
    /// bit-identical at any setting.
    pub threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            io_timeout: Duration::from_secs(30),
            step_timeout: Duration::from_secs(300),
            threads: 1,
        }
    }
}

/// Handler → coordinator messages.
enum ToCoord {
    /// One worker's complete push batch for a step.
    Pushed {
        worker: usize,
        step: u64,
        payloads: Vec<TensorPayload>,
        loss: f32,
        codec_seconds: f64,
        residual_l2: f64,
    },
    /// The handler finished (cleanly or with an error).
    Finished {
        worker: usize,
        peer: String,
        counters: ConnCounters,
        /// The worker's span buffer, if the shutdown trace-dump exchange
        /// ran (tracing on, clean finish).
        trace: Option<NodeTrace>,
        error: Option<String>,
    },
}

/// One worker's contribution at the push barrier: tensor payloads, local
/// loss, codec seconds, residual L2.
type PushSlot = (Vec<TensorPayload>, f32, f64, f64);

/// One step's shared pull batch, encoded once and broadcast to every
/// handler (shared pull compression, paper Fig. 2b).
struct PullBatch {
    step: u64,
    /// `(message type, payload bytes)` per tensor, in parameter order.
    frames: Vec<(MsgType, Vec<u8>)>,
}

/// Coordinator → handler messages.
enum FromCoord {
    Pulls(Arc<PullBatch>),
}

/// Runs a full training experiment as the parameter server.
///
/// Accepts `config.workers` connections on `listener`, drives
/// `config.total_steps` barrier-synchronized BSP steps, shuts the workers
/// down gracefully, and returns the final report (the standard
/// [`ExperimentResult`] plus per-connection transport counters).
///
/// # Errors
///
/// Returns [`NetError::Config`] for configurations the networked runtime
/// does not support (staleness, backup workers), and
/// [`NetError::Protocol`]/[`NetError::Frame`]/[`NetError::Io`] when any
/// worker misbehaves, times out, or disconnects.
pub fn serve(
    listener: &TcpListener,
    config: &ExperimentConfig,
    opts: &ServeOptions,
) -> Result<NetReport, NetError> {
    validate_config(config)?;
    let problem = Problem::build(config);
    let n_params = problem.num_tensors();
    if n_params > usize::from(u16::MAX) {
        return Err(NetError::Config(format!(
            "{n_params} tensors exceed the u16 tensor-id space"
        )));
    }
    let mut server = ServerCore::new(&problem);
    server.set_threads(opts.threads);
    let shapes: Arc<Vec<Shape>> = Arc::new(problem.shapes.clone());
    let workers = config.workers;
    let config_json = serde_json::to_string(config)
        .map_err(|e| NetError::Config(format!("config does not serialize: {e}")))?;

    // Tracing: the server's own span buffer (its clock domain is the
    // reference the timeline aligns every worker against). The run-wide
    // trace id is derived from the seed, identically on every node.
    let tracing = trace::trace_enabled();
    let trace_id = trace::run_trace_id(config.seed);
    let server_buf = Arc::new(TraceBuffer::default());

    // ---- Handshake: fill every worker slot. Metrics/trace scrapes
    // arriving in this phase are answered inline without consuming a slot.
    let (to_coord, from_handlers) = mpsc::channel::<ToCoord>();
    let mut pull_txs: Vec<Option<mpsc::Sender<FromCoord>>> = (0..workers).map(|_| None).collect();
    let mut handles = Vec::with_capacity(workers);
    while handles.len() < workers {
        let (stream, _) = listener.accept().map_err(NetError::Io)?;
        let (worker, handshake_counters) = match handshake(
            &stream,
            opts.io_timeout,
            workers,
            &pull_txs,
            &config_json,
            &server_buf,
        )? {
            Handshake::Worker(worker, counters) => (worker, counters),
            Handshake::Scrape => continue,
        };
        threelc_obs::event!(Level::Info, "server.worker_connected", worker = worker);
        let (tx, rx) = mpsc::channel::<FromCoord>();
        pull_txs[worker] = Some(tx);
        let to_coord = to_coord.clone();
        let shapes = Arc::clone(&shapes);
        let total_steps = config.total_steps;
        let step_timeout = opts.step_timeout;
        let buf = Arc::clone(&server_buf);
        handles.push(thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown".into());
            let mut conn = Conn::new(handshake_counters, NetMetrics::server());
            let (trace_dump, error) = match run_handler(
                stream,
                worker,
                total_steps,
                &shapes,
                &to_coord,
                rx,
                &mut conn,
                step_timeout,
                &buf,
                trace_id,
            ) {
                Ok(dump) => (dump, None),
                Err(e) => (None, Some(e.to_string())),
            };
            // The coordinator may already be gone on abort; ignore.
            let _ = to_coord.send(ToCoord::Finished {
                worker,
                peer,
                counters: conn.counters,
                trace: trace_dump,
                error,
            });
        }));
    }
    drop(to_coord);

    // Training phase: the main thread no longer accepts, so hand the
    // listener to a background scraper that keeps answering
    // `MetricsRequest`/`TraceDumpRequest` connections. Dropped (stopping
    // the thread and restoring the listener) on every exit path.
    let _scraper = MetricsScraper::start(listener, opts.io_timeout, Arc::clone(&server_buf))?;
    let server_metrics = NetMetrics::server();

    // ---- Barrier-synchronized BSP training loop.
    let mut trace = TrainingTrace::default();
    let mut straggler_rng = threelc_tensor::rng(config.seed ^ 0x5357_4147);
    let compressible_values = problem.compressible_values();
    let servers = config.servers.max(1);
    for step in 0..config.total_steps {
        let step_span = SpanGuard::on(Arc::clone(&server_metrics.step_seconds));
        let _coord_scope = tracing
            .then(|| TraceScope::enter(&server_buf, "server", trace_id, step, trace::NO_WORKER));
        let (_accepted, compute_multiplier) = engine::sample_stragglers(config, &mut straggler_rng);

        // Collect every worker's push batch (the barrier).
        let barrier_span = TraceSpan::start("barrier");
        let mut slots: Vec<Option<PushSlot>> = (0..workers).map(|_| None).collect();
        let mut missing = workers;
        while missing > 0 {
            match from_handlers.recv_timeout(opts.step_timeout) {
                Ok(ToCoord::Pushed {
                    worker,
                    step: s,
                    payloads,
                    loss,
                    codec_seconds,
                    residual_l2,
                }) => {
                    if s != step {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed step {s} during step {step}"
                        )));
                    }
                    if slots[worker].is_some() {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed twice in step {step}"
                        )));
                    }
                    slots[worker] = Some((payloads, loss, codec_seconds, residual_l2));
                    missing -= 1;
                }
                Ok(ToCoord::Finished { worker, error, .. }) => {
                    let detail = error.unwrap_or_else(|| "closed early".into());
                    return Err(NetError::Protocol(format!(
                        "worker {worker} left during step {step}: {detail}"
                    )));
                }
                Err(_) => {
                    return Err(NetError::Protocol(format!(
                        "timed out waiting for pushes in step {step}"
                    )));
                }
            }
        }
        barrier_span.finish();

        // Worker-order accounting, exactly as the simulator does it.
        let mut payloads_by_worker = Vec::with_capacity(workers);
        let mut loss_sum = 0.0f64;
        let mut worker_codec_max = 0.0f64;
        let mut residual_l2 = 0.0f64;
        let mut push_bytes = 0u64;
        let mut raw_bytes = 0u64;
        let mut server_bytes = vec![0u64; servers];
        for slot in &mut slots {
            let (payloads, loss, codec, residual) = slot.take().expect("barrier filled every slot");
            loss_sum += loss as f64;
            worker_codec_max = worker_codec_max.max(codec);
            residual_l2 = residual_l2.max(residual);
            for (i, payload) in payloads.iter().enumerate() {
                let bytes = payload.wire_len();
                server_bytes[i % servers] += bytes;
                match payload {
                    TensorPayload::Compressed(_) => push_bytes += bytes,
                    TensorPayload::Raw(_) => raw_bytes += bytes,
                }
            }
            payloads_by_worker.push(payloads);
        }

        let out = server.apply_step(&payloads_by_worker, workers);

        // Encode the shared pull batch once; handlers fan it out.
        let mut pull_bytes = 0u64;
        let mut frames = Vec::with_capacity(n_params);
        for (i, payload) in out.pulls.into_iter().enumerate() {
            let bytes = payload.wire_len() * workers as u64;
            server_bytes[i % servers] += bytes;
            match payload {
                TensorPayload::Compressed(wire) => {
                    pull_bytes += bytes;
                    frames.push((MsgType::PullTensor, wire));
                }
                TensorPayload::Raw(t) => {
                    raw_bytes += bytes;
                    frames.push((MsgType::PullRaw, tensor_to_bytes(&t)));
                }
            }
        }
        let batch = Arc::new(PullBatch { step, frames });
        for tx in pull_txs.iter().flatten() {
            tx.send(FromCoord::Pulls(Arc::clone(&batch)))
                .map_err(|_| NetError::Protocol("a handler thread died".into()))?;
        }

        trace.record_step(StepRecord {
            step,
            lr: out.lr,
            loss: (loss_sum / workers as f64) as f32,
            push_bytes,
            pull_bytes,
            raw_bytes,
            compressible_values,
            worker_codec_seconds: worker_codec_max,
            server_codec_seconds: out.server_codec_seconds,
            compute_multiplier,
            pull_overlapped: false,
            critical_bytes: server_bytes.iter().copied().max().unwrap_or(0),
            residual_l2,
        });
        step_span.finish();
        let due = config.eval_every > 0 && (step + 1) % config.eval_every == 0;
        if due && step + 1 < config.total_steps {
            trace.evals.push(EvalRecord {
                step: step + 1,
                eval: Evaluation::of(server.global(), &problem.test),
            });
        }
    }

    // ---- Graceful shutdown: handlers collect each worker's span buffer
    // (when tracing) and run the Shutdown/ShutdownAck handshake on their
    // own after the last pull, then report in.
    let mut connections: Vec<Option<ConnReport>> = (0..workers).map(|_| None).collect();
    let mut worker_traces: Vec<Option<NodeTrace>> = (0..workers).map(|_| None).collect();
    for _ in 0..workers {
        match from_handlers.recv_timeout(opts.step_timeout) {
            Ok(ToCoord::Finished {
                worker,
                peer,
                counters,
                trace,
                error: None,
            }) => {
                connections[worker] = Some(ConnReport {
                    worker,
                    peer,
                    counters,
                });
                worker_traces[worker] = trace;
            }
            Ok(ToCoord::Finished {
                worker,
                error: Some(e),
                ..
            }) => {
                return Err(NetError::Protocol(format!(
                    "worker {worker} failed to shut down cleanly: {e}"
                )));
            }
            Ok(ToCoord::Pushed { worker, step, .. }) => {
                return Err(NetError::Protocol(format!(
                    "worker {worker} pushed step {step} after training ended"
                )));
            }
            Err(_) => {
                return Err(NetError::Protocol(
                    "timed out waiting for workers to shut down".into(),
                ));
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }

    let final_eval = Evaluation::of(server.global(), &problem.test);
    trace.evals.push(EvalRecord {
        step: config.total_steps,
        eval: final_eval,
    });
    // Step-level anomalies (ratio drift, residual blowups) go into the
    // embedded trace; cross-node stragglers come from the merged timeline.
    trace.run_watchdog(workers as u64);
    let mut node_traces = Vec::new();
    let mut anomalies = Vec::new();
    if tracing {
        node_traces.push(server_buf.drain("server"));
        node_traces.extend(worker_traces.into_iter().flatten());
        let timeline = MergedTimeline::build(&node_traces);
        anomalies = threelc_obs::watchdog::check_timeline(&timeline, &WatchdogConfig::default());
        for a in &anomalies {
            threelc_obs::event!(
                Level::Warn,
                "server.trace_anomaly",
                kind = a.kind,
                step = a.step,
                node = a.node
            );
        }
    }
    Ok(NetReport {
        result: ExperimentResult {
            config: *config,
            scheme_label: config.scheme.label(),
            model_params: server.global().num_params() as u64,
            final_eval,
            trace,
        },
        connections: connections
            .into_iter()
            .map(|c| c.expect("every slot reported"))
            .collect(),
        node_traces,
        anomalies,
    })
}

/// Rejects configurations the barrier-synchronized runtime cannot honor.
fn validate_config(config: &ExperimentConfig) -> Result<(), NetError> {
    if config.workers == 0 {
        return Err(NetError::Config("at least one worker required".into()));
    }
    if config.workers > usize::from(u16::MAX) {
        return Err(NetError::Config(format!(
            "{} workers exceed the u16 worker-id space",
            config.workers
        )));
    }
    if config.backup_workers != 0 {
        return Err(NetError::Config(
            "backup workers are simulator-only; the TCP runtime is strict BSP".into(),
        ));
    }
    if config.staleness != 0 {
        return Err(NetError::Config(
            "stale pulls are simulator-only; the TCP runtime is strict BSP".into(),
        ));
    }
    Ok(())
}

/// What a fresh connection's first frame turned out to be.
enum Handshake {
    /// A worker joined: validated id plus the handshake-frame counters
    /// (carried into the handler's accounting).
    Worker(usize, ConnCounters),
    /// A metrics scrape, already answered; the connection is done.
    Scrape,
}

/// Dispatches the first frame of a fresh connection: either the worker
/// Hello/HelloAck handshake, or a one-shot metrics/trace scrape.
fn handshake(
    stream: &TcpStream,
    io_timeout: Duration,
    workers: usize,
    taken: &[Option<mpsc::Sender<FromCoord>>],
    config_json: &str,
    server_buf: &Arc<TraceBuffer>,
) -> Result<Handshake, NetError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut counters = ConnCounters::default();
    let t0 = Instant::now();
    let hello = read_frame(&mut &*stream)?;
    counters.note_read(hello.payload.len(), t0.elapsed().as_secs_f64());
    if hello.msg == MsgType::MetricsRequest {
        answer_scrape(stream)?;
        return Ok(Handshake::Scrape);
    }
    if hello.msg == MsgType::TraceDumpRequest {
        answer_trace_scrape(stream, server_buf)?;
        return Ok(Handshake::Scrape);
    }
    if hello.msg != MsgType::Hello {
        return Err(NetError::Protocol(format!(
            "expected Hello, got {:?}",
            hello.msg
        )));
    }
    let worker = usize::from(decode_hello(&hello.payload)?);
    if worker >= workers {
        return Err(NetError::Protocol(format!(
            "worker id {worker} out of range (cluster has {workers})"
        )));
    }
    if taken[worker].is_some() {
        return Err(NetError::Protocol(format!(
            "worker id {worker} connected twice"
        )));
    }
    let t0 = Instant::now();
    write_frame(
        &mut &*stream,
        MsgType::HelloAck,
        0,
        0,
        config_json.as_bytes(),
    )?;
    counters.note_write(config_json.len(), t0.elapsed().as_secs_f64());
    Ok(Handshake::Worker(worker, counters))
}

/// Replies to a `MetricsRequest` with a snapshot of the global registry.
fn answer_scrape(stream: &TcpStream) -> Result<(), NetError> {
    let payload = encode_metrics_snapshot(&threelc_obs::global().snapshot())?;
    write_frame(&mut &*stream, MsgType::MetricsSnapshot, 0, 0, &payload)?;
    (&*stream).flush()?;
    threelc_obs::event!(Level::Info, "server.metrics_scraped", bytes = payload.len());
    Ok(())
}

/// Replies to a `TraceDumpRequest` with a (non-draining) snapshot of the
/// server's span buffer, so a live run can be inspected mid-training.
fn answer_trace_scrape(stream: &TcpStream, buf: &Arc<TraceBuffer>) -> Result<(), NetError> {
    let payload = encode_trace_dump(&buf.snapshot("server"))?;
    write_frame(&mut &*stream, MsgType::TraceDump, 0, 0, &payload)?;
    (&*stream).flush()?;
    threelc_obs::event!(Level::Info, "server.trace_scraped", bytes = payload.len());
    Ok(())
}

/// Background thread answering metrics scrapes while the coordinator is
/// busy training (the main accept loop only runs during the handshake
/// phase).
///
/// The listener clone shares its file description with the original, so
/// switching it to non-blocking affects both — safe here precisely
/// because the main thread is done accepting. Dropping the scraper stops
/// the thread and restores blocking mode, covering early-error returns
/// from `serve` too.
struct MetricsScraper<'a> {
    listener: &'a TcpListener,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<'a> MetricsScraper<'a> {
    fn start(
        listener: &'a TcpListener,
        io_timeout: Duration,
        server_buf: Arc<TraceBuffer>,
    ) -> Result<Self, NetError> {
        let clone = listener.try_clone().map_err(NetError::Io)?;
        clone.set_nonblocking(true).map_err(NetError::Io)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match clone.accept() {
                    Ok((stream, _)) => {
                        // Anything other than a well-formed scrape on a
                        // mid-training connection is dropped; workers all
                        // joined during the handshake phase.
                        let _ = serve_one_scrape(stream, io_timeout, &server_buf);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(20)),
                }
            }
        });
        Ok(MetricsScraper {
            listener,
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for MetricsScraper<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = self.listener.set_nonblocking(false);
    }
}

/// Handles one connection accepted by the scraper thread.
fn serve_one_scrape(
    stream: TcpStream,
    io_timeout: Duration,
    server_buf: &Arc<TraceBuffer>,
) -> Result<(), NetError> {
    // The accepting listener is non-blocking and the stream inherits
    // that; scrape I/O should block (bounded by the timeouts).
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let frame = read_frame(&mut &stream)?;
    match frame.msg {
        MsgType::MetricsRequest => answer_scrape(&stream),
        MsgType::TraceDumpRequest => answer_trace_scrape(&stream, server_buf),
        other => Err(NetError::Protocol(format!(
            "unexpected {other:?} on a mid-training connection"
        ))),
    }
}

/// One connection's framing loop: collect pushes, forward to the
/// coordinator, fan the shared pull batch back out, and finally collect
/// the worker's trace dump (when tracing) and run the shutdown handshake.
///
/// On success, returns the worker's span buffer if the trace-dump
/// exchange ran.
#[allow(clippy::too_many_arguments)]
fn run_handler(
    stream: TcpStream,
    worker: usize,
    total_steps: u64,
    shapes: &[Shape],
    to_coord: &mpsc::Sender<ToCoord>,
    pulls: mpsc::Receiver<FromCoord>,
    conn: &mut Conn,
    step_timeout: Duration,
    server_buf: &Arc<TraceBuffer>,
    trace_id: u64,
) -> Result<Option<NodeTrace>, NetError> {
    let tracing = trace::trace_enabled();
    let n_params = shapes.len();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for step in 0..total_steps {
        // Handler spans land in the server's buffer (server clock), tagged
        // with this worker's id — the timeline pairs them with the worker's
        // own network span to estimate the worker clock's offset.
        let _scope =
            tracing.then(|| TraceScope::enter(server_buf, "server", trace_id, step, worker as i64));

        // ---- Gather this worker's push batch. The recv_push span closes
        // when the worker's PushDone lands, and is re-parented onto the
        // span that sent it (carried by the frame's trace context).
        let mut recv_span = TraceSpan::start("recv_push");
        let mut payloads: Vec<TensorPayload> = Vec::with_capacity(n_params);
        let (loss, codec_seconds, residual_l2) = loop {
            // One span per incoming frame: read plus dispatch (dropped at
            // the end of the iteration, including on break/error).
            let _frame_span = SpanGuard::on(Arc::clone(&conn.metrics.frame_seconds));
            let t0 = Instant::now();
            let frame = read_frame(&mut reader)?;
            conn.note_read(frame.payload.len(), t0.elapsed().as_secs_f64());
            if frame.step != step {
                return Err(NetError::Protocol(format!(
                    "worker {worker} sent step {} during step {step}",
                    frame.step
                )));
            }
            match frame.msg {
                MsgType::PushTensor | MsgType::PushRaw => {
                    let i = payloads.len();
                    if i >= n_params || usize::from(frame.tensor) != i {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed tensor {} out of order (expected {i})",
                            frame.tensor
                        )));
                    }
                    if frame.msg == MsgType::PushTensor {
                        payloads.push(TensorPayload::Compressed(frame.payload));
                    } else {
                        let t1 = Instant::now();
                        let tensor = bytes_to_tensor(&frame.payload, &shapes[i])?;
                        conn.note_codec(t1.elapsed().as_secs_f64());
                        payloads.push(TensorPayload::Raw(tensor));
                    }
                }
                MsgType::PushDone => {
                    if payloads.len() != n_params {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed {} of {n_params} tensors",
                            payloads.len()
                        )));
                    }
                    if let Some(ctx) = frame.trace.to_obs() {
                        recv_span.set_remote_parent(ctx);
                    }
                    break decode_push_done(&frame.payload)?;
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "worker {worker} sent {other:?} during the push phase"
                    )));
                }
            }
        };
        recv_span.finish();
        to_coord
            .send(ToCoord::Pushed {
                worker,
                step,
                payloads,
                loss,
                codec_seconds,
                residual_l2,
            })
            .map_err(|_| NetError::Protocol("coordinator is gone".into()))?;

        // ---- Wait at the barrier, then fan out the shared pulls.
        let batch = match pulls.recv_timeout(step_timeout) {
            Ok(FromCoord::Pulls(batch)) => batch,
            Err(_) => return Err(NetError::Protocol("no pull batch from coordinator".into())),
        };
        if batch.step != step {
            return Err(NetError::Protocol(format!(
                "pull batch for step {} arrived during step {step}",
                batch.step
            )));
        }
        let send_span = TraceSpan::start("send_pull");
        for (i, (msg, payload)) in batch.frames.iter().enumerate() {
            let _frame_span = SpanGuard::on(Arc::clone(&conn.metrics.frame_seconds));
            let t0 = Instant::now();
            write_frame(&mut writer, *msg, i as u16, step, payload)?;
            conn.note_write(payload.len(), t0.elapsed().as_secs_f64());
        }
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::PullDone, 0, step, &[])?;
        writer.flush()?;
        conn.note_write(0, t0.elapsed().as_secs_f64());
        send_span.finish();
    }

    // ---- Collect the worker's span buffer before shutting it down.
    let worker_trace = if tracing {
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::TraceDumpRequest, 0, total_steps, &[])?;
        writer.flush()?;
        conn.note_write(0, t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let dump = read_frame(&mut reader)?;
        conn.note_read(dump.payload.len(), t0.elapsed().as_secs_f64());
        if dump.msg != MsgType::TraceDump {
            return Err(NetError::Protocol(format!(
                "worker {worker} answered TraceDumpRequest with {:?}",
                dump.msg
            )));
        }
        Some(decode_trace_dump(&dump.payload)?)
    } else {
        None
    };

    // ---- Graceful shutdown handshake.
    let t0 = Instant::now();
    write_frame(&mut writer, MsgType::Shutdown, 0, total_steps, &[])?;
    writer.flush()?;
    conn.note_write(0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let ack = read_frame(&mut reader)?;
    conn.note_read(ack.payload.len(), t0.elapsed().as_secs_f64());
    if ack.msg != MsgType::ShutdownAck {
        return Err(NetError::Protocol(format!(
            "worker {worker} answered shutdown with {:?}",
            ack.msg
        )));
    }
    Ok(worker_trace)
}
