//! The parameter-server side of the networked runtime.
//!
//! One OS thread per worker connection handles framing; a coordinator
//! (the calling thread) owns the [`ServerCore`] and enforces the BSP
//! barrier: it waits for every worker's push batch, applies the step, and
//! broadcasts one shared pull batch back to all handlers. The arithmetic
//! is exactly [`threelc_distsim::engine`]'s, so a networked run matches
//! the in-process simulator bit for bit.
//!
//! Failure semantics are fault-tolerant by default: when a worker's
//! connection dies mid-run (timeout, checksum mismatch, reset), the
//! coordinator parks the barrier for up to [`ServeOptions::rejoin_timeout`]
//! and lets the worker reconnect with a `Rejoin` frame. The rejoined
//! worker is granted the current step and a replay of every completed
//! pull batch, from which it deterministically rebuilds a bit-identical
//! replica (see `DESIGN.md` §11). With [`ServeOptions::max_rejoins`] `= 0`
//! the runtime is strictly fail-stop, as it was before rejoin existed:
//! any mid-run disconnect aborts the run. Protocol violations (wrong
//! step, out-of-order tensors) always abort — those are bugs, not faults.
//! Every blocking socket operation is bounded by
//! [`ServeOptions::io_timeout`], and every barrier wait by
//! [`ServeOptions::step_timeout`] (or the rejoin timeout while a worker
//! is out), so a dead peer cannot wedge the server.

use crate::counters::ConnCounters;
use crate::frame::{read_frame, write_frame, MsgType};
use crate::metrics::{Conn, NetMetrics};
use crate::protocol::{
    bytes_to_tensor, decode_hello, decode_push_done, decode_trace_dump, encode_metrics_snapshot,
    encode_policy_update, encode_rejoin_ack, encode_series_dump, encode_trace_dump, model_crc32,
    tensor_to_bytes, NetError,
};
use crate::report::{ConnReport, FaultEvent, FaultsReport, NetReport};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use threelc_distsim::engine::{self, EngineError, Problem, ServerCore, TensorPayload};
use threelc_distsim::trace::{EvalRecord, StepRecord, TrainingTrace};
use threelc_distsim::{AggregateMode, ExperimentConfig, ExperimentResult};
use threelc_learning::Evaluation;
use threelc_obs::flight::trigger;
use threelc_obs::{
    trace, write_flight_dump, AnalysisConfig, FaultSample, FlightRecorder, Level, MergedTimeline,
    NodeTrace, RunAnalysis, RunRecorder, SpanGuard, TraceBuffer, TraceScope, TraceSpan,
    WatchdogConfig, WorkerDelta,
};
use threelc_tensor::Shape;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Read/write timeout on every worker socket.
    pub io_timeout: Duration,
    /// How long the coordinator waits at a barrier (for all pushes to
    /// arrive, or for handlers to finish) before declaring the run dead.
    pub step_timeout: Duration,
    /// How long the coordinator parks a barrier waiting for a
    /// disconnected worker to rejoin (which includes the worker's replay
    /// of every completed step) before declaring the run dead.
    pub rejoin_timeout: Duration,
    /// Mid-run rejoins tolerated across the whole run. `0` restores the
    /// original fail-stop semantics: any mid-run disconnect aborts, and
    /// no pull-batch history is retained.
    pub max_rejoins: u32,
    /// Codec/aggregation threads for the server core (`0` = one per
    /// hardware core). A performance hint only: the trained model is
    /// bit-identical at any setting.
    pub threads: usize,
    /// Where to write the flight-recorder dump (`<out>.flight.json`).
    /// When set, a dump is written automatically if the run aborts, a
    /// handler panics, a fault fires, or the end-of-run watchdog flags
    /// anomalies. `None` disables dumping (series are still recorded and
    /// scrapeable).
    pub flight: Option<String>,
    /// Overrides the configuration's server aggregation mode for this run
    /// (`None` keeps [`ExperimentConfig::aggregate`]). The effective mode
    /// lands in the config broadcast to workers and in the report, so a
    /// matching `simulate` run stays bit-comparable.
    pub aggregate: Option<AggregateMode>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            io_timeout: Duration::from_secs(30),
            step_timeout: Duration::from_secs(300),
            rejoin_timeout: Duration::from_secs(60),
            max_rejoins: 4,
            threads: 1,
            flight: None,
            aggregate: None,
        }
    }
}

/// Handler → coordinator messages. Every message carries the sender's
/// per-worker generation, so messages from a superseded connection (one
/// the worker already rejoined past) are recognizably stale.
enum ToCoord {
    /// One worker's complete push batch for a step.
    Pushed {
        worker: usize,
        gen: u64,
        step: u64,
        payloads: Vec<TensorPayload>,
        loss: f32,
        codec_seconds: f64,
        residual_l2: f64,
        step_seconds: f64,
    },
    /// The handler finished (cleanly or with an error). Handler panics
    /// arrive here too, converted to an error by the catch-unwind wrapper
    /// in [`spawn_handler`] — a panicked handler can never silently
    /// vanish and wedge the barrier.
    Finished {
        worker: usize,
        gen: u64,
        peer: String,
        counters: ConnCounters,
        /// The worker's span buffer, if the shutdown trace-dump exchange
        /// ran (tracing on, clean finish).
        trace: Option<NodeTrace>,
        error: Option<String>,
    },
    /// A worker reconnected mid-run through the side door; the stream has
    /// consumed its `Rejoin` frame and awaits a `RejoinAck`.
    Rejoin {
        worker: usize,
        stream: TcpStream,
        counters: ConnCounters,
    },
}

/// One worker's contribution at the push barrier: tensor payloads, local
/// loss, codec seconds, residual L2, wall-clock step seconds.
type PushSlot = (Vec<TensorPayload>, f32, f64, f64, f64);

/// One step's shared pull batch, encoded once and broadcast to every
/// handler (shared pull compression, paper Fig. 2b). Retained in the
/// coordinator's history (when rejoins are enabled) so a rejoining worker
/// can replay the run's full pull sequence.
struct PullBatch {
    step: u64,
    /// `(message type, payload bytes)` per tensor, in parameter order.
    frames: Vec<(MsgType, Vec<u8>)>,
}

/// Coordinator → handler messages.
enum FromCoord {
    Pulls(Arc<PullBatch>),
}

/// Everything a handler spawned for a rejoined worker must send before
/// entering the normal per-step loop: the resume grant and the replay of
/// every completed step's pull batch.
struct RejoinTask {
    resume_step: u64,
    config_json: Arc<String>,
    replay: Vec<Arc<PullBatch>>,
}

/// Runs a full training experiment as the parameter server.
///
/// Accepts `config.workers` connections on `listener`, drives
/// `config.total_steps` barrier-synchronized BSP steps (surviving up to
/// [`ServeOptions::max_rejoins`] mid-run worker reconnects), shuts the
/// workers down gracefully, and returns the final report (the standard
/// [`ExperimentResult`] plus per-connection transport counters and the
/// run's fault log).
///
/// # Errors
///
/// Returns [`NetError::Config`] for configurations the networked runtime
/// does not support (staleness, backup workers), and
/// [`NetError::Protocol`]/[`NetError::Frame`]/[`NetError::Io`] when any
/// worker violates the protocol, exhausts the rejoin budget, or fails to
/// rejoin in time.
pub fn serve(
    listener: &TcpListener,
    config: &ExperimentConfig,
    opts: &ServeOptions,
) -> Result<NetReport, NetError> {
    // The recorder is shared with the metrics side-door (live `SeriesRequest`
    // scrapes); the flight recorder is coordinator-only.
    let recorder = Arc::new(Mutex::new(RunRecorder::new(config.workers)));
    let mut flight = FlightRecorder::new();
    // Owned here (not inside serve_run) so an aborted run's flight dump can
    // still carry the server's spans — the global buffer the recorder
    // snapshots belongs to the in-process simulator, not this runtime.
    let server_buf = Arc::new(TraceBuffer::default());
    let result = serve_run(listener, config, opts, &recorder, &mut flight, &server_buf);
    if let Some(path) = &opts.flight {
        let series = recorder.lock().expect("series recorder lock").snapshot();
        let dump = match &result {
            Err(e) => {
                let text = e.to_string();
                let cause = if text.contains("panicked") {
                    trigger::PANIC
                } else {
                    trigger::ABORT
                };
                Some(flight.dump(cause, &text, series, &[]))
            }
            Ok(report) => {
                let mut findings = report.anomalies.clone();
                findings.extend(report.result.trace.anomalies.iter().cloned());
                if !findings.is_empty() {
                    Some(flight.dump(
                        trigger::WATCHDOG,
                        "end-of-run watchdog flagged anomalies",
                        series,
                        &findings,
                    ))
                } else if !flight.events().is_empty() {
                    Some(flight.dump(
                        trigger::FAULT,
                        "transport faults occurred during the run",
                        series,
                        &[],
                    ))
                } else {
                    None
                }
            }
        };
        let dump = dump.map(|mut d| {
            // The recorder snapshots the in-process (simulator) span buffer;
            // this runtime's spans live in `server_buf`. Swap them in so
            // `threelc trace`/`analyze <dump.flight.json>` see the timeline.
            d.spans.retain(|n| !n.spans.is_empty());
            if trace::trace_enabled() {
                let nt = server_buf.snapshot("server");
                if !nt.spans.is_empty() {
                    d.spans.push(nt);
                }
            }
            d
        });
        if let Some(dump) = dump {
            if let Err(e) = write_flight_dump(path, &dump) {
                threelc_obs::event!(
                    Level::Warn,
                    "server.flight_dump_failed",
                    path = path,
                    error = e.to_string()
                );
            }
        }
    }
    result
}

/// The body of [`serve`]: the actual accept/handshake/train/shutdown
/// sequence, recording per-worker series into `recorder` at every barrier
/// and transport faults into `flight` as they happen. Split out so the
/// wrapper can still reach both stores after an early-error return.
fn serve_run(
    listener: &TcpListener,
    config: &ExperimentConfig,
    opts: &ServeOptions,
    recorder: &Arc<Mutex<RunRecorder>>,
    flight: &mut FlightRecorder,
    server_buf: &Arc<TraceBuffer>,
) -> Result<NetReport, NetError> {
    validate_config(config)?;
    // Resolve the effective aggregation mode up front: everything
    // downstream — the server core, the config JSON workers receive, the
    // report — sees one consistent config.
    let config = &{
        let mut c = *config;
        if let Some(mode) = opts.aggregate {
            c.aggregate = mode;
        }
        c
    };
    let problem = Problem::build(config);
    let n_params = problem.num_tensors();
    if n_params > usize::from(u16::MAX) {
        return Err(NetError::Config(format!(
            "{n_params} tensors exceed the u16 tensor-id space"
        )));
    }
    let mut server = ServerCore::new(&problem);
    server.set_threads(opts.threads);
    let shapes: Arc<Vec<Shape>> = Arc::new(problem.shapes.clone());
    let workers = config.workers;
    let config_json = Arc::new(
        serde_json::to_string(config)
            .map_err(|e| NetError::Config(format!("config does not serialize: {e}")))?,
    );

    // Tracing: the server's own span buffer (its clock domain is the
    // reference the timeline aligns every worker against). The run-wide
    // trace id is derived from the seed, identically on every node.
    let tracing = trace::trace_enabled();
    let trace_id = trace::run_trace_id(config.seed);
    let server_buf = Arc::clone(server_buf);

    // ---- Handshake: fill every worker slot. Metrics/trace scrapes
    // arriving in this phase are answered inline without consuming a slot.
    let (to_coord, from_handlers) = mpsc::channel::<ToCoord>();
    let mut pull_txs: Vec<Option<mpsc::Sender<FromCoord>>> = (0..workers).map(|_| None).collect();
    let mut handles = Vec::with_capacity(workers);
    // A barrier wait while any worker is out covers both a normal step
    // and a rejoin-plus-replay, whichever is longer.
    let park_timeout = opts.step_timeout.max(opts.rejoin_timeout);
    while handles.len() < workers {
        let (stream, _) = listener.accept().map_err(NetError::Io)?;
        let (worker, handshake_counters) = match handshake(
            &stream,
            opts.io_timeout,
            workers,
            &pull_txs,
            &config_json,
            &server_buf,
            recorder,
        )? {
            Handshake::Worker(worker, counters) => (worker, counters),
            Handshake::Scrape => continue,
        };
        threelc_obs::event!(Level::Info, "server.worker_connected", worker = worker);
        let (tx, rx) = mpsc::channel::<FromCoord>();
        pull_txs[worker] = Some(tx);
        handles.push(spawn_handler(
            stream,
            worker,
            0,
            0,
            config.total_steps,
            Arc::clone(&shapes),
            to_coord.clone(),
            rx,
            handshake_counters,
            park_timeout,
            Arc::clone(&server_buf),
            trace_id,
            None,
        ));
    }

    // Training phase: the main thread no longer accepts, so hand the
    // listener to a background side-door thread that keeps answering
    // `MetricsRequest`/`TraceDumpRequest` connections and forwards
    // mid-run `Rejoin` connections to the coordinator. Dropped (stopping
    // the thread and restoring the listener) on every exit path.
    let _scraper = MetricsScraper::start(
        listener,
        opts.io_timeout,
        Arc::clone(&server_buf),
        Arc::clone(recorder),
        to_coord.clone(),
    )?;
    let server_metrics = NetMetrics::server();

    // ---- Fault-tolerance state.
    let max_rejoins = u64::from(opts.max_rejoins);
    // Per-worker connection generation; bumped on every admitted rejoin.
    let mut gens: Vec<u64> = vec![0; workers];
    let mut connected: Vec<bool> = vec![true; workers];
    // Cumulative admitted rejoins per worker, recorded as a series so the
    // dashboard can show flapping workers.
    let mut rejoin_counts: Vec<u64> = vec![0; workers];
    // Traffic of a worker's finished (lost or superseded) connections,
    // folded into its final ConnReport.
    let mut lost: Vec<ConnCounters> = vec![ConnCounters::default(); workers];
    let mut faults = FaultsReport::default();
    // Every completed step's pull batch, the replay a rejoiner resyncs
    // from. Arc'd frames, so the history costs one encoded copy per step;
    // disabled (empty) in fail-stop mode.
    let mut history: Vec<Arc<PullBatch>> = Vec::new();

    // ---- Barrier-synchronized BSP training loop.
    let mut trace = TrainingTrace::default();
    trace.policy.label = config.policy.label();
    let mut straggler_rng = threelc_tensor::rng(config.seed ^ 0x5357_4147);
    let compressible_values = problem.compressible_values();
    let servers = config.servers.max(1);
    for step in 0..config.total_steps {
        let step_span = SpanGuard::on(Arc::clone(&server_metrics.step_seconds));
        let _coord_scope = tracing
            .then(|| TraceScope::enter(&server_buf, "server", trace_id, step, trace::NO_WORKER));
        let (_accepted, compute_multiplier) = engine::sample_stragglers(config, &mut straggler_rng);

        // Collect every worker's push batch (the barrier). The deadline
        // extends when a worker disconnects or rejoins, parking the
        // barrier instead of aborting.
        let barrier_span = TraceSpan::start("barrier");
        let mut slots: Vec<Option<PushSlot>> = (0..workers).map(|_| None).collect();
        // Wall-clock arrival of each worker's complete push: the lag past
        // the earliest arrival is that worker's barrier-wait charge.
        let mut arrivals: Vec<Option<Instant>> = (0..workers).map(|_| None).collect();
        let mut missing = workers;
        let mut deadline = Instant::now()
            + if connected.iter().all(|&c| c) {
                opts.step_timeout
            } else {
                park_timeout
            };
        while missing > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                let out: Vec<usize> = (0..workers).filter(|&w| !connected[w]).collect();
                return Err(NetError::Protocol(if out.is_empty() {
                    format!("timed out waiting for pushes in step {step}")
                } else {
                    format!("timed out waiting for worker(s) {out:?} to rejoin in step {step}")
                }));
            }
            match from_handlers.recv_timeout(remaining) {
                Ok(ToCoord::Pushed {
                    worker,
                    gen,
                    step: s,
                    payloads,
                    loss,
                    codec_seconds,
                    residual_l2,
                    step_seconds,
                }) => {
                    if gen != gens[worker] {
                        // A superseded connection's push raced its death.
                        continue;
                    }
                    if s != step {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed step {s} during step {step}"
                        )));
                    }
                    if slots[worker].is_some() {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed twice in step {step}"
                        )));
                    }
                    slots[worker] =
                        Some((payloads, loss, codec_seconds, residual_l2, step_seconds));
                    arrivals[worker] = Some(Instant::now());
                    missing -= 1;
                }
                Ok(ToCoord::Finished {
                    worker,
                    gen,
                    counters,
                    error,
                    ..
                }) => {
                    lost[worker].merge(&counters);
                    if gen != gens[worker] || !connected[worker] {
                        // A superseded or already-noted connection winding
                        // down; its traffic is kept, nothing else changes.
                        continue;
                    }
                    let detail = error.unwrap_or_else(|| "closed early".into());
                    note_disconnect(
                        worker,
                        step,
                        detail,
                        max_rejoins,
                        &mut faults,
                        &mut connected,
                        &mut pull_txs,
                        &server_metrics,
                        flight,
                    )?;
                    // The dead connection's push (if it landed) is
                    // discarded: the rejoined worker re-pushes this step,
                    // and deterministic replay makes the re-push
                    // byte-identical.
                    if slots[worker].take().is_some() {
                        arrivals[worker] = None;
                        missing += 1;
                    }
                    deadline = deadline.max(Instant::now() + opts.rejoin_timeout);
                }
                Ok(ToCoord::Rejoin {
                    worker,
                    stream,
                    counters,
                }) => {
                    if worker >= workers {
                        threelc_obs::event!(
                            Level::Warn,
                            "server.rejoin_refused",
                            worker = worker,
                            reason = "id out of range"
                        );
                        continue; // dropping the stream refuses the rejoin
                    }
                    if faults.rejoins >= max_rejoins {
                        threelc_obs::event!(
                            Level::Warn,
                            "server.rejoin_refused",
                            worker = worker,
                            reason = "rejoin budget exhausted"
                        );
                        continue;
                    }
                    if connected[worker] {
                        // The old connection is half-dead (its Finished
                        // has not landed yet). Retire it; the generation
                        // bump below makes its remaining messages stale.
                        note_disconnect(
                            worker,
                            step,
                            "superseded by a rejoin".into(),
                            max_rejoins,
                            &mut faults,
                            &mut connected,
                            &mut pull_txs,
                            &server_metrics,
                            flight,
                        )?;
                        if slots[worker].take().is_some() {
                            arrivals[worker] = None;
                            missing += 1;
                        }
                    }
                    gens[worker] += 1;
                    faults.rejoins += 1;
                    rejoin_counts[worker] += 1;
                    let rejoin_detail = format!(
                        "resumed at step {step} after a replay of {} step(s)",
                        history.len()
                    );
                    flight.note_fault(step, &format!("worker{worker}"), "rejoin", &rejoin_detail);
                    faults.events.push(FaultEvent {
                        step,
                        worker,
                        kind: "rejoin".into(),
                        detail: rejoin_detail,
                    });
                    server_metrics.rejoins.add(1);
                    threelc_obs::event!(
                        Level::Info,
                        "server.worker_rejoined",
                        worker = worker,
                        step = step,
                        gen = gens[worker]
                    );
                    debug_assert_eq!(history.len() as u64, step);
                    let (tx, rx) = mpsc::channel::<FromCoord>();
                    pull_txs[worker] = Some(tx);
                    connected[worker] = true;
                    handles.push(spawn_handler(
                        stream,
                        worker,
                        gens[worker],
                        step,
                        config.total_steps,
                        Arc::clone(&shapes),
                        to_coord.clone(),
                        rx,
                        counters,
                        park_timeout,
                        Arc::clone(&server_buf),
                        trace_id,
                        Some(RejoinTask {
                            resume_step: step,
                            config_json: Arc::clone(&config_json),
                            replay: history.clone(),
                        }),
                    ));
                    deadline = deadline.max(Instant::now() + park_timeout);
                }
                Err(_) => continue, // the deadline check above decides
            }
        }
        barrier_span.finish();

        // Worker-order accounting, exactly as the simulator does it. The
        // per-step policy multiplier must be read before apply_step swaps
        // in the next step's decisions (the simulator reads it at the same
        // point, so the recorded series match bit for bit).
        let decisions = server.current_decisions();
        let step_multiplier = if decisions.is_empty() {
            f64::from(engine::base_sparsity(config).value())
        } else {
            f64::from(decisions[0].s.value())
        };
        let mut payloads_by_worker = Vec::with_capacity(workers);
        let mut deltas = Vec::with_capacity(workers);
        let mut loss_sum = 0.0f64;
        let mut worker_codec_max = 0.0f64;
        let mut residual_l2 = 0.0f64;
        let mut push_bytes = 0u64;
        let mut raw_bytes = 0u64;
        let mut server_bytes = vec![0u64; servers];
        let first_arrival = arrivals.iter().flatten().min().copied();
        for (w, slot) in slots.iter_mut().enumerate() {
            let (payloads, loss, codec, residual, step_seconds) =
                slot.take().expect("barrier filled every slot");
            loss_sum += loss as f64;
            worker_codec_max = worker_codec_max.max(codec);
            residual_l2 = residual_l2.max(residual);
            let mut worker_wire = 0u64;
            let mut worker_push = 0u64;
            for (i, payload) in payloads.iter().enumerate() {
                let bytes = payload.wire_len();
                server_bytes[i % servers] += bytes;
                worker_wire += bytes;
                match payload {
                    TensorPayload::Compressed(_) => {
                        push_bytes += bytes;
                        worker_push += bytes;
                    }
                    TensorPayload::Raw(_) => raw_bytes += bytes,
                }
            }
            deltas.push(WorkerDelta {
                worker: w,
                wire_bytes: worker_wire,
                ratio: if worker_push > 0 {
                    (compressible_values as f64 * 32.0) / (worker_push as f64 * 8.0)
                } else {
                    0.0
                },
                residual_l2: residual,
                loss: loss as f64,
                multiplier: step_multiplier,
                rejoins: rejoin_counts[w],
                step_seconds,
                barrier_wait_seconds: match (arrivals[w], first_arrival) {
                    (Some(at), Some(first)) => at.saturating_duration_since(first).as_secs_f64(),
                    _ => 0.0,
                },
            });
            payloads_by_worker.push(payloads);
        }
        recorder
            .lock()
            .expect("series recorder lock")
            .record_step(step, &deltas);

        let out = server
            .apply_step(&payloads_by_worker, workers, residual_l2)
            .map_err(aggregation_error)?;
        trace
            .policy
            .records
            .extend(out.policy_records.iter().copied());

        // Encode the shared pull batch once; handlers fan it out.
        let mut pull_bytes = 0u64;
        let mut frames = Vec::with_capacity(n_params + 1);
        for (i, payload) in out.pulls.into_iter().enumerate() {
            let bytes = payload.wire_len() * workers as u64;
            server_bytes[i % servers] += bytes;
            match payload {
                TensorPayload::Compressed(wire) => {
                    pull_bytes += bytes;
                    frames.push((MsgType::PullTensor, wire));
                }
                TensorPayload::Raw(t) => {
                    raw_bytes += bytes;
                    frames.push((MsgType::PullRaw, tensor_to_bytes(&t)));
                }
            }
        }
        // Adaptive policies broadcast the next step's decisions with the
        // pull batch. Appending them here puts them in the replay history
        // too, so a rejoining worker reconstructs the exact decision
        // sequence. (Deliberately excluded from the traffic accounting:
        // the simulator's StepRecords carry no policy bytes either, and
        // the two must stay bit-identical.)
        if !out.next_decisions.is_empty() {
            frames.push((
                MsgType::PolicyUpdate,
                encode_policy_update(&out.next_decisions)?,
            ));
        }
        let batch = Arc::new(PullBatch { step, frames });
        if max_rejoins > 0 {
            history.push(Arc::clone(&batch));
        }
        for w in 0..workers {
            let alive = match &pull_txs[w] {
                Some(tx) => tx.send(FromCoord::Pulls(Arc::clone(&batch))).is_ok(),
                None => true, // already marked disconnected
            };
            if !alive {
                // The handler died between its push and our broadcast. Its
                // Finished message (with the underlying error) is still in
                // the channel; the connected[] check deduplicates it.
                note_disconnect(
                    w,
                    step,
                    "pull channel closed".into(),
                    max_rejoins,
                    &mut faults,
                    &mut connected,
                    &mut pull_txs,
                    &server_metrics,
                    flight,
                )?;
            }
        }

        trace.record_step(StepRecord {
            step,
            lr: out.lr,
            loss: (loss_sum / workers as f64) as f32,
            push_bytes,
            pull_bytes,
            raw_bytes,
            compressible_values,
            worker_codec_seconds: worker_codec_max,
            server_codec_seconds: out.server_codec_seconds,
            compute_multiplier,
            pull_overlapped: false,
            critical_bytes: server_bytes.iter().copied().max().unwrap_or(0),
            residual_l2,
        });
        step_span.finish();
        let due = config.eval_every > 0 && (step + 1) % config.eval_every == 0;
        if due && step + 1 < config.total_steps {
            trace.evals.push(EvalRecord {
                step: step + 1,
                eval: Evaluation::of(server.global(), &problem.test),
            });
        }
    }

    // ---- Graceful shutdown: handlers collect each worker's span buffer
    // (when tracing) and run the Shutdown/ShutdownAck handshake on their
    // own after the last pull, then report in. A disconnect in this phase
    // aborts — rejoin is a mid-run mechanism; there are no steps left to
    // resume into.
    let mut connections: Vec<Option<ConnReport>> = (0..workers).map(|_| None).collect();
    let mut worker_traces: Vec<Option<NodeTrace>> = (0..workers).map(|_| None).collect();
    let mut remaining = workers;
    let shutdown_deadline = Instant::now() + opts.step_timeout;
    while remaining > 0 {
        let left = shutdown_deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(NetError::Protocol(
                "timed out waiting for workers to shut down".into(),
            ));
        }
        match from_handlers.recv_timeout(left) {
            Ok(ToCoord::Finished {
                worker,
                gen,
                peer,
                counters,
                trace,
                error,
            }) => {
                if gen != gens[worker] {
                    lost[worker].merge(&counters);
                    continue;
                }
                if let Some(e) = error {
                    return Err(NetError::Protocol(format!(
                        "worker {worker} failed to shut down cleanly: {e}"
                    )));
                }
                let mut total = lost[worker];
                total.merge(&counters);
                connections[worker] = Some(ConnReport {
                    worker,
                    peer,
                    counters: total,
                });
                worker_traces[worker] = trace;
                remaining -= 1;
            }
            Ok(ToCoord::Pushed {
                worker, gen, step, ..
            }) => {
                if gen != gens[worker] {
                    continue;
                }
                return Err(NetError::Protocol(format!(
                    "worker {worker} pushed step {step} after training ended"
                )));
            }
            Ok(ToCoord::Rejoin { worker, .. }) => {
                threelc_obs::event!(
                    Level::Warn,
                    "server.rejoin_refused",
                    worker = worker,
                    reason = "training already ended"
                );
                continue;
            }
            Err(_) => continue, // the deadline check above decides
        }
    }
    for handle in handles {
        if handle.join().is_err() {
            // run_handler panics are caught and reported as Finished
            // errors; a join failure means the reporting wrapper itself
            // blew up. Surface it — never misreport the run as clean.
            return Err(NetError::Protocol(
                "a handler thread panicked outside the run loop".into(),
            ));
        }
    }

    let final_eval = Evaluation::of(server.global(), &problem.test);
    trace.evals.push(EvalRecord {
        step: config.total_steps,
        eval: final_eval,
    });
    // Step-level anomalies (ratio drift, residual blowups) go into the
    // embedded trace; cross-node stragglers come from the merged timeline.
    trace.run_watchdog(workers as u64);
    let mut node_traces = Vec::new();
    let mut anomalies = Vec::new();
    let mut analysis = None;
    if tracing {
        node_traces.push(server_buf.drain("server"));
        node_traces.extend(worker_traces.into_iter().flatten());
        let timeline = MergedTimeline::build(&node_traces);
        anomalies = threelc_obs::watchdog::check_timeline(&timeline, &WatchdogConfig::default());
        // Critical-path attribution over the same merged timeline; the
        // blame buckets land in the report and in the global registry so
        // `threelc metrics` (and `--prom` scrapers) see them too.
        let run_analysis = RunAnalysis::build(&timeline, &AnalysisConfig::default());
        if !run_analysis.steps.is_empty() {
            run_analysis.export_gauges(threelc_obs::global());
            analysis = Some(run_analysis);
        }
    }
    // Fault anomalies (rejoin flapping) need no tracing — the coordinator
    // saw every disconnect itself.
    let samples: Vec<FaultSample> = faults
        .events
        .iter()
        .map(|e| FaultSample {
            step: e.step,
            node: format!("worker{}", e.worker),
            kind: e.kind.clone(),
        })
        .collect();
    anomalies.extend(threelc_obs::watchdog::check_faults(
        &samples,
        &WatchdogConfig::default(),
    ));
    for a in &anomalies {
        threelc_obs::event!(
            Level::Warn,
            "server.trace_anomaly",
            kind = a.kind,
            step = a.step,
            node = a.node
        );
    }
    Ok(NetReport {
        result: ExperimentResult {
            config: *config,
            scheme_label: config.scheme.label(),
            model_params: server.global().num_params() as u64,
            final_eval,
            trace,
        },
        final_model_crc32: model_crc32(server.global()),
        aggregate_mode: config.aggregate.name().into(),
        connections: connections
            .into_iter()
            .map(|c| c.expect("every slot reported"))
            .collect(),
        faults,
        node_traces,
        anomalies,
        series: recorder.lock().expect("series recorder lock").snapshot(),
        analysis,
        metrics: threelc_obs::global().snapshot(),
    })
}

/// Marks a worker's connection dead: closes its pull channel, records the
/// fault, and — when the rejoin budget is already spent (or rejoins are
/// disabled) — aborts the run with the fail-stop error.
#[allow(clippy::too_many_arguments)]
fn note_disconnect(
    worker: usize,
    step: u64,
    detail: String,
    max_rejoins: u64,
    faults: &mut FaultsReport,
    connected: &mut [bool],
    pull_txs: &mut [Option<mpsc::Sender<FromCoord>>],
    metrics: &NetMetrics,
    flight: &mut FlightRecorder,
) -> Result<(), NetError> {
    connected[worker] = false;
    pull_txs[worker] = None;
    metrics.disconnects.add(1);
    flight.note_fault(step, &format!("worker{worker}"), "disconnect", &detail);
    threelc_obs::event!(
        Level::Warn,
        "server.worker_disconnected",
        worker = worker,
        step = step,
        detail = detail
    );
    faults.disconnects += 1;
    faults.events.push(FaultEvent {
        step,
        worker,
        kind: "disconnect".into(),
        detail: detail.clone(),
    });
    if faults.rejoins >= max_rejoins {
        return Err(NetError::Protocol(format!(
            "worker {worker} left during step {step}: {detail}"
        )));
    }
    Ok(())
}

/// Spawns one connection's handler thread. The handler body runs under
/// `catch_unwind`, so a panic is reported to the coordinator as a
/// `Finished { error }` exactly like any other handler failure — the
/// barrier sees it immediately instead of timing out, and the run is
/// never misreported as clean.
#[allow(clippy::too_many_arguments)]
fn spawn_handler(
    stream: TcpStream,
    worker: usize,
    gen: u64,
    start_step: u64,
    total_steps: u64,
    shapes: Arc<Vec<Shape>>,
    to_coord: mpsc::Sender<ToCoord>,
    pulls: mpsc::Receiver<FromCoord>,
    handshake_counters: ConnCounters,
    pull_timeout: Duration,
    server_buf: Arc<TraceBuffer>,
    trace_id: u64,
    rejoin: Option<RejoinTask>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".into());
        let mut conn = Conn::new(handshake_counters, NetMetrics::server());
        let (trace_dump, error) = match catch_unwind(AssertUnwindSafe(|| {
            run_handler(
                stream,
                worker,
                gen,
                start_step,
                total_steps,
                &shapes,
                &to_coord,
                pulls,
                &mut conn,
                pull_timeout,
                &server_buf,
                trace_id,
                rejoin,
            )
        })) {
            Ok(Ok(dump)) => (dump, None),
            Ok(Err(e)) => (None, Some(e.to_string())),
            Err(panic) => (
                None,
                Some(format!(
                    "handler thread panicked: {}",
                    panic_message(panic.as_ref())
                )),
            ),
        };
        // The coordinator may already be gone on abort; ignore.
        let _ = to_coord.send(ToCoord::Finished {
            worker,
            gen,
            peer,
            counters: conn.counters,
            trace: trace_dump,
            error,
        });
    })
}

/// Renders a caught panic payload (the `&str`/`String` most panics carry).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Rejects configurations the barrier-synchronized runtime cannot honor.
fn validate_config(config: &ExperimentConfig) -> Result<(), NetError> {
    if config.workers == 0 {
        return Err(NetError::Config("at least one worker required".into()));
    }
    if config.workers > usize::from(u16::MAX) {
        return Err(NetError::Config(format!(
            "{} workers exceed the u16 worker-id space",
            config.workers
        )));
    }
    if config.backup_workers != 0 {
        return Err(NetError::Config(
            "backup workers are simulator-only; the TCP runtime is strict BSP".into(),
        ));
    }
    if config.staleness != 0 {
        return Err(NetError::Config(
            "stale pulls are simulator-only; the TCP runtime is strict BSP".into(),
        ));
    }
    Ok(())
}

/// Names an engine aggregation failure as the run's error. The seed
/// engine `panic!`ed here (taking the coordinator thread down with an
/// opaque abort); now the serve loop finishes with a typed [`NetError`]
/// that reaches the caller and the report like any other run failure.
fn aggregation_error(e: EngineError) -> NetError {
    NetError::Protocol(format!("server aggregation failed: {e}"))
}

/// What a fresh connection's first frame turned out to be.
enum Handshake {
    /// A worker joined: validated id plus the handshake-frame counters
    /// (carried into the handler's accounting).
    Worker(usize, ConnCounters),
    /// A metrics scrape, already answered; the connection is done.
    Scrape,
}

/// Dispatches the first frame of a fresh connection: either the worker
/// Hello/HelloAck handshake, or a one-shot metrics/trace scrape. A
/// `Rejoin` in this phase (a leftover from some earlier run) is refused
/// by dropping the connection.
#[allow(clippy::too_many_arguments)]
fn handshake(
    stream: &TcpStream,
    io_timeout: Duration,
    workers: usize,
    taken: &[Option<mpsc::Sender<FromCoord>>],
    config_json: &str,
    server_buf: &Arc<TraceBuffer>,
    recorder: &Arc<Mutex<RunRecorder>>,
) -> Result<Handshake, NetError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut counters = ConnCounters::default();
    let t0 = Instant::now();
    let hello = read_frame(&mut &*stream)?;
    counters.note_read(hello.payload.len(), t0.elapsed().as_secs_f64());
    if hello.msg == MsgType::MetricsRequest {
        answer_scrape(stream)?;
        return Ok(Handshake::Scrape);
    }
    if hello.msg == MsgType::TraceDumpRequest {
        answer_trace_scrape(stream, server_buf)?;
        return Ok(Handshake::Scrape);
    }
    if hello.msg == MsgType::SeriesRequest {
        answer_series_scrape(stream, recorder)?;
        return Ok(Handshake::Scrape);
    }
    if hello.msg == MsgType::Rejoin {
        threelc_obs::event!(
            Level::Warn,
            "server.rejoin_refused",
            reason = "run has not started"
        );
        return Ok(Handshake::Scrape);
    }
    if hello.msg != MsgType::Hello {
        return Err(NetError::Protocol(format!(
            "expected Hello, got {:?}",
            hello.msg
        )));
    }
    let worker = usize::from(decode_hello(&hello.payload)?);
    if worker >= workers {
        return Err(NetError::Protocol(format!(
            "worker id {worker} out of range (cluster has {workers})"
        )));
    }
    if taken[worker].is_some() {
        return Err(NetError::Protocol(format!(
            "worker id {worker} connected twice"
        )));
    }
    let t0 = Instant::now();
    write_frame(
        &mut &*stream,
        MsgType::HelloAck,
        0,
        0,
        config_json.as_bytes(),
    )?;
    counters.note_write(config_json.len(), t0.elapsed().as_secs_f64());
    Ok(Handshake::Worker(worker, counters))
}

/// Replies to a `MetricsRequest` with a snapshot of the global registry.
fn answer_scrape(stream: &TcpStream) -> Result<(), NetError> {
    let payload = encode_metrics_snapshot(&threelc_obs::global().snapshot())?;
    write_frame(&mut &*stream, MsgType::MetricsSnapshot, 0, 0, &payload)?;
    (&*stream).flush()?;
    threelc_obs::event!(Level::Info, "server.metrics_scraped", bytes = payload.len());
    Ok(())
}

/// Replies to a `TraceDumpRequest` with a (non-draining) snapshot of the
/// server's span buffer, so a live run can be inspected mid-training.
fn answer_trace_scrape(stream: &TcpStream, buf: &Arc<TraceBuffer>) -> Result<(), NetError> {
    let payload = encode_trace_dump(&buf.snapshot("server"))?;
    write_frame(&mut &*stream, MsgType::TraceDump, 0, 0, &payload)?;
    (&*stream).flush()?;
    threelc_obs::event!(Level::Info, "server.trace_scraped", bytes = payload.len());
    Ok(())
}

/// Replies to a `SeriesRequest` with a snapshot of the run's time-series
/// store, so `threelc top` can render a live dashboard mid-training.
fn answer_series_scrape(
    stream: &TcpStream,
    recorder: &Arc<Mutex<RunRecorder>>,
) -> Result<(), NetError> {
    let payload = encode_series_dump(&recorder.lock().expect("series recorder lock").snapshot())?;
    write_frame(&mut &*stream, MsgType::SeriesDump, 0, 0, &payload)?;
    (&*stream).flush()?;
    threelc_obs::event!(Level::Info, "server.series_scraped", bytes = payload.len());
    Ok(())
}

/// Background thread owning the listener while the coordinator is busy
/// training (the main accept loop only runs during the handshake phase):
/// answers metrics/trace scrapes itself and forwards mid-run `Rejoin`
/// connections — stream and all — to the coordinator.
///
/// The listener clone shares its file description with the original, so
/// switching it to non-blocking affects both — safe here precisely
/// because the main thread is done accepting. Dropping the scraper stops
/// the thread and restores blocking mode, covering early-error returns
/// from `serve` too.
struct MetricsScraper<'a> {
    listener: &'a TcpListener,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<'a> MetricsScraper<'a> {
    fn start(
        listener: &'a TcpListener,
        io_timeout: Duration,
        server_buf: Arc<TraceBuffer>,
        recorder: Arc<Mutex<RunRecorder>>,
        to_coord: mpsc::Sender<ToCoord>,
    ) -> Result<Self, NetError> {
        let clone = listener.try_clone().map_err(NetError::Io)?;
        clone.set_nonblocking(true).map_err(NetError::Io)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match clone.accept() {
                    Ok((stream, _)) => {
                        // Anything other than a well-formed scrape or
                        // rejoin on a mid-training connection is dropped.
                        let _ =
                            serve_side_door(stream, io_timeout, &server_buf, &recorder, &to_coord);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(20)),
                }
            }
        });
        Ok(MetricsScraper {
            listener,
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for MetricsScraper<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            if handle.join().is_err() {
                // Nothing to propagate from a Drop; say it loudly instead
                // of swallowing it — scrapes and rejoins were unavailable
                // for some part of the run.
                threelc_obs::event!(Level::Warn, "server.side_door_panicked");
            }
        }
        let _ = self.listener.set_nonblocking(false);
    }
}

/// Handles one connection accepted by the side-door thread: scrapes are
/// answered inline; a `Rejoin` hands the prepared stream (plus the
/// counters of the frame just read) to the coordinator for admission at
/// the current barrier.
fn serve_side_door(
    stream: TcpStream,
    io_timeout: Duration,
    server_buf: &Arc<TraceBuffer>,
    recorder: &Arc<Mutex<RunRecorder>>,
    to_coord: &mpsc::Sender<ToCoord>,
) -> Result<(), NetError> {
    // The accepting listener is non-blocking and the stream inherits
    // that; side-door I/O should block (bounded by the timeouts).
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut counters = ConnCounters::default();
    let t0 = Instant::now();
    let frame = read_frame(&mut &stream)?;
    counters.note_read(frame.payload.len(), t0.elapsed().as_secs_f64());
    match frame.msg {
        MsgType::MetricsRequest => answer_scrape(&stream),
        MsgType::TraceDumpRequest => answer_trace_scrape(&stream, server_buf),
        MsgType::SeriesRequest => answer_series_scrape(&stream, recorder),
        MsgType::Rejoin => {
            let worker = usize::from(decode_hello(&frame.payload)?);
            to_coord
                .send(ToCoord::Rejoin {
                    worker,
                    stream,
                    counters,
                })
                .map_err(|_| NetError::Protocol("coordinator is gone".into()))
        }
        other => Err(NetError::Protocol(format!(
            "unexpected {other:?} on a mid-training connection"
        ))),
    }
}

/// One connection's framing loop: collect pushes, forward to the
/// coordinator, fan the shared pull batch back out, and finally collect
/// the worker's trace dump (when tracing) and run the shutdown handshake.
///
/// For a rejoined worker the loop is preceded by the `RejoinAck` and a
/// replay of every completed step's pull batch (the resync the worker
/// rebuilds its replica from), and starts at `start_step` instead of 0.
///
/// On success, returns the worker's span buffer if the trace-dump
/// exchange ran.
#[allow(clippy::too_many_arguments)]
fn run_handler(
    stream: TcpStream,
    worker: usize,
    gen: u64,
    start_step: u64,
    total_steps: u64,
    shapes: &[Shape],
    to_coord: &mpsc::Sender<ToCoord>,
    pulls: mpsc::Receiver<FromCoord>,
    conn: &mut Conn,
    pull_timeout: Duration,
    server_buf: &Arc<TraceBuffer>,
    trace_id: u64,
    rejoin: Option<RejoinTask>,
) -> Result<Option<NodeTrace>, NetError> {
    let tracing = trace::trace_enabled();
    let n_params = shapes.len();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    if let Some(task) = &rejoin {
        // Resume grant: the step to resume at plus the configuration (a
        // replacement process joins with nothing but an address and id).
        let payload = encode_rejoin_ack(task.resume_step, &task.config_json);
        let t0 = Instant::now();
        write_frame(
            &mut writer,
            MsgType::RejoinAck,
            0,
            task.resume_step,
            &payload,
        )?;
        conn.note_write(payload.len(), t0.elapsed().as_secs_f64());
        // Replay the full pull history. The worker interleaves reading
        // these with recomputing each step, so the stream drains as fast
        // as the worker replays.
        for batch in &task.replay {
            for (i, (msg, payload)) in batch.frames.iter().enumerate() {
                let t0 = Instant::now();
                write_frame(&mut writer, *msg, i as u16, batch.step, payload)?;
                conn.note_write(payload.len(), t0.elapsed().as_secs_f64());
            }
            let t0 = Instant::now();
            write_frame(&mut writer, MsgType::PullDone, 0, batch.step, &[])?;
            conn.note_write(0, t0.elapsed().as_secs_f64());
        }
        writer.flush()?;
    }

    for step in start_step..total_steps {
        // Handler spans land in the server's buffer (server clock), tagged
        // with this worker's id — the timeline pairs them with the worker's
        // own network span to estimate the worker clock's offset.
        let _scope =
            tracing.then(|| TraceScope::enter(server_buf, "server", trace_id, step, worker as i64));

        // ---- Gather this worker's push batch. The recv_push span closes
        // when the worker's PushDone lands, and is re-parented onto the
        // span that sent it (carried by the frame's trace context).
        let mut recv_span = TraceSpan::start("recv_push");
        let mut payloads: Vec<TensorPayload> = Vec::with_capacity(n_params);
        let (loss, codec_seconds, residual_l2, step_seconds) = loop {
            // One span per incoming frame: read plus dispatch (dropped at
            // the end of the iteration, including on break/error).
            let _frame_span = SpanGuard::on(Arc::clone(&conn.metrics.frame_seconds));
            let t0 = Instant::now();
            let frame = read_frame(&mut reader)?;
            conn.note_read(frame.payload.len(), t0.elapsed().as_secs_f64());
            if frame.step != step {
                return Err(NetError::Protocol(format!(
                    "worker {worker} sent step {} during step {step}",
                    frame.step
                )));
            }
            match frame.msg {
                MsgType::PushTensor | MsgType::PushRaw => {
                    let i = payloads.len();
                    if i >= n_params || usize::from(frame.tensor) != i {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed tensor {} out of order (expected {i})",
                            frame.tensor
                        )));
                    }
                    if frame.msg == MsgType::PushTensor {
                        payloads.push(TensorPayload::Compressed(frame.payload));
                    } else {
                        let t1 = Instant::now();
                        let tensor = bytes_to_tensor(&frame.payload, &shapes[i])?;
                        conn.note_codec(t1.elapsed().as_secs_f64());
                        payloads.push(TensorPayload::Raw(tensor));
                    }
                }
                MsgType::PushDone => {
                    if payloads.len() != n_params {
                        return Err(NetError::Protocol(format!(
                            "worker {worker} pushed {} of {n_params} tensors",
                            payloads.len()
                        )));
                    }
                    if let Some(ctx) = frame.trace.to_obs() {
                        recv_span.set_remote_parent(ctx);
                    }
                    break decode_push_done(&frame.payload)?;
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "worker {worker} sent {other:?} during the push phase"
                    )));
                }
            }
        };
        recv_span.finish();
        to_coord
            .send(ToCoord::Pushed {
                worker,
                gen,
                step,
                payloads,
                loss,
                codec_seconds,
                residual_l2,
                step_seconds,
            })
            .map_err(|_| NetError::Protocol("coordinator is gone".into()))?;

        // ---- Wait at the barrier, then fan out the shared pulls. The
        // wait covers a sibling worker's rejoin-plus-replay too.
        let batch = match pulls.recv_timeout(pull_timeout) {
            Ok(FromCoord::Pulls(batch)) => batch,
            Err(_) => return Err(NetError::Protocol("no pull batch from coordinator".into())),
        };
        if batch.step != step {
            return Err(NetError::Protocol(format!(
                "pull batch for step {} arrived during step {step}",
                batch.step
            )));
        }
        let send_span = TraceSpan::start("send_pull");
        for (i, (msg, payload)) in batch.frames.iter().enumerate() {
            let _frame_span = SpanGuard::on(Arc::clone(&conn.metrics.frame_seconds));
            let t0 = Instant::now();
            write_frame(&mut writer, *msg, i as u16, step, payload)?;
            conn.note_write(payload.len(), t0.elapsed().as_secs_f64());
        }
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::PullDone, 0, step, &[])?;
        writer.flush()?;
        conn.note_write(0, t0.elapsed().as_secs_f64());
        send_span.finish();
    }

    // ---- Collect the worker's span buffer before shutting it down.
    let worker_trace = if tracing {
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::TraceDumpRequest, 0, total_steps, &[])?;
        writer.flush()?;
        conn.note_write(0, t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let dump = read_frame(&mut reader)?;
        conn.note_read(dump.payload.len(), t0.elapsed().as_secs_f64());
        if dump.msg != MsgType::TraceDump {
            return Err(NetError::Protocol(format!(
                "worker {worker} answered TraceDumpRequest with {:?}",
                dump.msg
            )));
        }
        Some(decode_trace_dump(&dump.payload)?)
    } else {
        None
    };

    // ---- Graceful shutdown handshake.
    let t0 = Instant::now();
    write_frame(&mut writer, MsgType::Shutdown, 0, total_steps, &[])?;
    writer.flush()?;
    conn.note_write(0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let ack = read_frame(&mut reader)?;
    conn.note_read(ack.payload.len(), t0.elapsed().as_secs_f64());
    if ack.msg != MsgType::ShutdownAck {
        return Err(NetError::Protocol(format!(
            "worker {worker} answered shutdown with {:?}",
            ack.msg
        )));
    }
    Ok(worker_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_messages_render_str_string_and_other_payloads() {
        let caught = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain str");
        let caught = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }

    #[test]
    fn all_rejected_aggregation_maps_to_a_named_run_error() {
        let e = aggregation_error(EngineError::NoAcceptedPushes { step: 7 });
        let msg = e.to_string();
        assert!(
            msg.contains("server aggregation failed"),
            "error must name the failing phase: {msg}"
        );
        assert!(msg.contains("step 7"), "error must carry the step: {msg}");
        assert!(
            msg.contains("rejected"),
            "error must explain the cause: {msg}"
        );
    }

    #[test]
    fn a_panicking_handler_body_reports_finished_with_an_error() {
        // The same catch-unwind + Finished path spawn_handler uses, driven
        // with a body that panics: the coordinator must receive a named
        // error, not silence.
        let (tx, rx) = mpsc::channel::<ToCoord>();
        let handle = thread::spawn(move || {
            let result: Result<Option<NodeTrace>, NetError> = match catch_unwind(AssertUnwindSafe(
                || -> Result<Option<NodeTrace>, NetError> {
                    panic!("handler blew up");
                },
            )) {
                Ok(r) => r,
                Err(p) => Err(NetError::Protocol(format!(
                    "handler thread panicked: {}",
                    panic_message(p.as_ref())
                ))),
            };
            let error = result.err().map(|e| e.to_string());
            let _ = tx.send(ToCoord::Finished {
                worker: 0,
                gen: 0,
                peer: "test".into(),
                counters: ConnCounters::default(),
                trace: None,
                error,
            });
        });
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok(ToCoord::Finished { error: Some(e), .. }) => {
                assert!(e.contains("panicked"), "error should name the panic: {e}");
                assert!(e.contains("handler blew up"), "panic text lost: {e}");
            }
            other => panic!(
                "expected Finished with an error, got {:?}",
                match other {
                    Ok(_) => "a different message",
                    Err(_) => "a timeout",
                }
            ),
        }
        handle.join().expect("test thread");
    }
}
