//! Transport telemetry: cached metric handles, the instrumented
//! connection wrapper, and the client side of the live scrape protocol.
//!
//! [`ConnCounters`] keeps the exact per-connection totals that go into
//! [`NetReport`](crate::NetReport) JSON (schema unchanged); this module
//! layers distribution telemetry on top of them. Every socket read/write
//! and codec operation also lands in a process-global
//! [`threelc_obs`] histogram under `net.server.*` / `net.worker.*`, so a
//! live scrape shows latency percentiles, not just totals.

use crate::counters::ConnCounters;
use crate::frame::{read_frame, write_frame, MsgType};
use crate::protocol::{decode_metrics_snapshot, decode_series_dump, decode_trace_dump, NetError};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use threelc_obs::{global, Counter, Histogram, NodeTrace, RunSeries, Snapshot};

/// Cached handles to one role's `net.*` metrics. Resolved once per
/// connection; recording is then a few relaxed atomics per frame.
#[derive(Clone)]
pub struct NetMetrics {
    /// Per-operation codec time (compress/decompress/serialize).
    pub codec_seconds: Arc<Histogram>,
    /// Per-operation blocking socket time.
    pub socket_seconds: Arc<Histogram>,
    /// Whole-frame handling time (read + dispatch, or encode + write).
    pub frame_seconds: Arc<Histogram>,
    /// Whole-BSP-step time.
    pub step_seconds: Arc<Histogram>,
    /// Connect-retry backoff sleeps.
    pub backoff_seconds: Arc<Histogram>,
    /// Total bytes received (headers + payloads).
    pub bytes_in: Arc<Counter>,
    /// Total bytes sent (headers + payloads).
    pub bytes_out: Arc<Counter>,
    /// Mid-run connection losses survived (server: worker disconnects
    /// tolerated; worker: sessions lost and retried).
    pub disconnects: Arc<Counter>,
    /// Successful mid-run rejoins.
    pub rejoins: Arc<Counter>,
}

impl NetMetrics {
    fn with_prefix(prefix: &str) -> Self {
        let reg = global();
        NetMetrics {
            codec_seconds: reg.histogram(&format!("{prefix}.codec_seconds")),
            socket_seconds: reg.histogram(&format!("{prefix}.socket_seconds")),
            frame_seconds: reg.histogram(&format!("{prefix}.frame_seconds")),
            step_seconds: reg.histogram(&format!("{prefix}.step_seconds")),
            backoff_seconds: reg.histogram(&format!("{prefix}.backoff_seconds")),
            bytes_in: reg.counter(&format!("{prefix}.bytes_in")),
            bytes_out: reg.counter(&format!("{prefix}.bytes_out")),
            disconnects: reg.counter(&format!("{prefix}.disconnects")),
            rejoins: reg.counter(&format!("{prefix}.rejoins")),
        }
    }

    /// Handles for the parameter-server role (`net.server.*`).
    pub fn server() -> Self {
        NetMetrics::with_prefix("net.server")
    }

    /// Handles for the worker role (`net.worker.*`).
    pub fn worker() -> Self {
        NetMetrics::with_prefix("net.worker")
    }
}

impl std::fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetMetrics")
            .field("frames", &self.frame_seconds.count())
            .finish()
    }
}

/// One instrumented connection: the exact [`ConnCounters`] totals plus
/// the global histograms, updated together so the two views can never
/// disagree about what happened.
#[derive(Debug)]
pub struct Conn {
    /// Exact totals, reported in [`NetReport`](crate::NetReport) JSON.
    pub counters: ConnCounters,
    /// Shared distribution telemetry.
    pub metrics: NetMetrics,
}

impl Conn {
    /// Wraps existing counters (e.g. carried over from a handshake).
    pub fn new(counters: ConnCounters, metrics: NetMetrics) -> Self {
        Conn { counters, metrics }
    }

    /// Records one received frame of `payload_len` payload bytes that
    /// took `seconds` of blocking read time.
    pub fn note_read(&mut self, payload_len: usize, seconds: f64) {
        self.counters.note_read(payload_len, seconds);
        self.metrics.socket_seconds.record(seconds);
        self.metrics
            .bytes_in
            .add((crate::frame::HEADER_LEN + payload_len) as u64);
    }

    /// Records one sent frame of `payload_len` payload bytes that took
    /// `seconds` of blocking write time.
    pub fn note_write(&mut self, payload_len: usize, seconds: f64) {
        self.counters.note_write(payload_len, seconds);
        self.metrics.socket_seconds.record(seconds);
        self.metrics
            .bytes_out
            .add((crate::frame::HEADER_LEN + payload_len) as u64);
    }

    /// Records `seconds` of codec work (one compress/decompress/serialize
    /// operation).
    pub fn note_codec(&mut self, seconds: f64) {
        self.counters.codec_seconds += seconds;
        self.metrics.codec_seconds.record(seconds);
    }

    /// Records one failed connection attempt and its backoff sleep.
    pub fn note_retry(&mut self, backoff_seconds: f64) {
        self.counters.note_retry(backoff_seconds);
        self.metrics.backoff_seconds.record(backoff_seconds);
    }
}

/// Scrapes a live metrics snapshot from a serving parameter server.
///
/// Opens a fresh connection to `addr`, sends one `MetricsRequest` frame,
/// and parses the `MetricsSnapshot` reply. Works at any point in the
/// server's lifetime — during the connection handshake phase and during
/// training — without disturbing worker connections.
///
/// # Errors
///
/// Returns [`NetError::Io`] if the server is unreachable within
/// `timeout`, and [`NetError::Protocol`]/[`NetError::Frame`] if the reply
/// is not a well-formed snapshot.
pub fn scrape_metrics(addr: &str, timeout: Duration) -> Result<Snapshot, NetError> {
    let stream = connect_scrape(addr, timeout)?;
    write_frame(&mut &stream, MsgType::MetricsRequest, 0, 0, &[])?;
    let reply = read_frame(&mut &stream)?;
    if reply.msg != MsgType::MetricsSnapshot {
        return Err(NetError::Protocol(format!(
            "expected MetricsSnapshot, got {:?}",
            reply.msg
        )));
    }
    decode_metrics_snapshot(&reply.payload)
}

/// Scrapes a live (non-draining) snapshot of the server's own span buffer
/// from a serving parameter server.
///
/// Like [`scrape_metrics`] this opens a fresh connection, so it works at
/// any point in the server's lifetime without disturbing workers. Only
/// the server's clock domain is visible live; worker buffers are
/// collected at shutdown into [`NetReport`](crate::NetReport). Empty
/// unless the server runs with `THREELC_TRACE=1`.
///
/// # Errors
///
/// Returns [`NetError::Io`] if the server is unreachable within
/// `timeout`, and [`NetError::Protocol`]/[`NetError::Frame`] if the reply
/// is not a well-formed trace dump.
pub fn scrape_trace(addr: &str, timeout: Duration) -> Result<NodeTrace, NetError> {
    let stream = connect_scrape(addr, timeout)?;
    write_frame(&mut &stream, MsgType::TraceDumpRequest, 0, 0, &[])?;
    let reply = read_frame(&mut &stream)?;
    if reply.msg != MsgType::TraceDump {
        return Err(NetError::Protocol(format!(
            "expected TraceDump, got {:?}",
            reply.msg
        )));
    }
    decode_trace_dump(&reply.payload)
}

/// Scrapes the run's live time-series store from a serving parameter
/// server.
///
/// Like [`scrape_metrics`] this opens a fresh connection, so it works at
/// any point in the server's lifetime without disturbing workers. The
/// reply is the bounded per-worker/run-level series store fed at every
/// barrier — what `threelc top` renders and `threelc top --json` prints.
///
/// # Errors
///
/// Returns [`NetError::Io`] if the server is unreachable within
/// `timeout`, and [`NetError::Protocol`]/[`NetError::Frame`] if the reply
/// is not a well-formed series dump.
pub fn scrape_series(addr: &str, timeout: Duration) -> Result<RunSeries, NetError> {
    let stream = connect_scrape(addr, timeout)?;
    write_frame(&mut &stream, MsgType::SeriesRequest, 0, 0, &[])?;
    let reply = read_frame(&mut &stream)?;
    if reply.msg != MsgType::SeriesDump {
        return Err(NetError::Protocol(format!(
            "expected SeriesDump, got {:?}",
            reply.msg
        )));
    }
    decode_series_dump(&reply.payload)
}

/// Opens the short-lived connection both scrape clients use.
fn connect_scrape(addr: &str, timeout: Duration) -> Result<TcpStream, NetError> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| NetError::Protocol(format!("bad address {addr:?}: {e}")))?
        .collect();
    let first = addrs
        .first()
        .ok_or_else(|| NetError::Protocol(format!("address {addr:?} resolved to nothing")))?;
    let stream = TcpStream::connect_timeout(first, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_updates_counters_and_histograms_together() {
        let mut conn = Conn::new(ConnCounters::default(), NetMetrics::server());
        let socket_before = conn.metrics.socket_seconds.count();
        let bytes_in_before = conn.metrics.bytes_in.get();
        conn.note_read(100, 0.25);
        conn.note_write(50, 0.5);
        conn.note_codec(0.125);
        conn.note_retry(0.0625);
        assert_eq!(conn.counters.frames_in, 1);
        assert_eq!(conn.counters.frames_out, 1);
        assert_eq!(conn.counters.retries, 1);
        assert!((conn.counters.codec_seconds - 0.125).abs() < 1e-12);
        assert!((conn.counters.backoff_seconds - 0.0625).abs() < 1e-12);
        assert_eq!(conn.metrics.socket_seconds.count(), socket_before + 2);
        assert_eq!(
            conn.metrics.bytes_in.get() - bytes_in_before,
            (crate::frame::HEADER_LEN + 100) as u64
        );
    }

    #[test]
    fn roles_use_distinct_metric_names() {
        let s = NetMetrics::server();
        let w = NetMetrics::worker();
        assert!(!Arc::ptr_eq(&s.codec_seconds, &w.codec_seconds));
        let snap = global().snapshot();
        assert!(snap.histogram("net.server.codec_seconds").is_some());
        assert!(snap.histogram("net.worker.codec_seconds").is_some());
    }

    #[test]
    fn scrape_rejects_unresolvable_addresses() {
        assert!(matches!(
            scrape_metrics("not an address", Duration::from_millis(100)),
            Err(NetError::Protocol(_))
        ));
        assert!(matches!(
            scrape_trace("not an address", Duration::from_millis(100)),
            Err(NetError::Protocol(_))
        ));
    }
}
