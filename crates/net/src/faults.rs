//! Deterministic fault injection for the networked runtime.
//!
//! A [`FaultPlan`] names one transport fault and the step it fires at; a
//! [`FaultInjector`] arms the plan inside a worker's BSP loop and fires it
//! exactly once, surviving the reconnect-and-resume cycle the fault
//! triggers (so a rejoined worker does not re-injure itself while
//! replaying the very step that killed it).
//!
//! Everything here is deterministic: a plan is pure data, the injector
//! holds no clock or entropy source, and the one randomized choice (which
//! payload byte a [`FaultKind::CorruptCrc`] flips) comes from the plan's
//! own seed via a fixed mixing function. Two runs with the same
//! configuration and the same plan inject byte-identical faults at the
//! same points, which is what lets the integration tests assert that a
//! faulted run converges to the *exact* final model of an undisturbed one.
//!
//! Plans parse from compact spec strings (the `--inject-fault` flag and
//! the `THREELC_FAULT` environment variable):
//!
//! | spec                 | effect                                          |
//! |----------------------|-------------------------------------------------|
//! | `disconnect@N`       | drop the connection at the start of step N      |
//! | `drop-after-push@N`  | drop it between step N's push and pull          |
//! | `kill@N`             | exit the process (code [`KILL_EXIT_CODE`]) between push and pull |
//! | `crc@N` / `crc@N:S`  | corrupt one byte of step N's first push frame (seed S) |
//! | `delay@N:MS`         | sleep MS milliseconds before step N's push      |

use std::time::Duration;

/// Exit code a worker process uses for an injected [`FaultKind::Kill`],
/// so a supervisor (or the `ci.sh` chaos stage) can tell an injected kill
/// from a real failure and restart the worker with `--rejoin`.
pub const KILL_EXIT_CODE: i32 = 43;

/// Environment variable consulted for a fault spec when no `--inject-fault`
/// flag is given.
pub const FAULT_ENV: &str = "THREELC_FAULT";

/// The transport faults the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the connection at the start of the step, before pushing.
    Disconnect,
    /// Close the connection after the push batch is flushed, before
    /// reading the pull — the in-process stand-in for a worker killed
    /// between push and pull.
    DropAfterPush,
    /// Exit the whole process (code [`KILL_EXIT_CODE`]) after the push is
    /// flushed. Only meaningful for real worker processes; in-process
    /// tests use [`FaultKind::DropAfterPush`] instead.
    Kill,
    /// Flip one payload byte of the step's first push frame, breaking its
    /// CRC. The server rejects the frame and drops the connection, which
    /// the worker survives by rejoining.
    CorruptCrc,
    /// Sleep before pushing (an I/O delay, not a failure).
    Delay,
}

/// One planned fault: what, when, and the deterministic knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// The BSP step it fires at.
    pub step: u64,
    /// Sleep length for [`FaultKind::Delay`]; zero otherwise.
    pub delay_ms: u64,
    /// Seed for the corrupted-byte choice of [`FaultKind::CorruptCrc`];
    /// zero otherwise.
    pub seed: u64,
}

impl FaultPlan {
    /// Parses a spec string (see the module table).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown kinds, missing `@`,
    /// or unparsable numbers.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (kind, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{spec}` has no `@step` (e.g. disconnect@3)"))?;
        let (step_str, arg) = match rest.split_once(':') {
            Some((s, a)) => (s, Some(a)),
            None => (rest, None),
        };
        let step: u64 = step_str
            .parse()
            .map_err(|_| format!("fault spec `{spec}`: bad step `{step_str}`"))?;
        let arg_num = |what: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("fault spec `{spec}` needs `:{what}`"))?
                .parse()
                .map_err(|_| format!("fault spec `{spec}`: bad {what}"))
        };
        let plan = match kind {
            "disconnect" => FaultPlan {
                kind: FaultKind::Disconnect,
                step,
                delay_ms: 0,
                seed: 0,
            },
            "drop-after-push" => FaultPlan {
                kind: FaultKind::DropAfterPush,
                step,
                delay_ms: 0,
                seed: 0,
            },
            "kill" => FaultPlan {
                kind: FaultKind::Kill,
                step,
                delay_ms: 0,
                seed: 0,
            },
            "crc" => FaultPlan {
                kind: FaultKind::CorruptCrc,
                step,
                delay_ms: 0,
                seed: arg.map(|_| arg_num("seed")).transpose()?.unwrap_or(0),
            },
            "delay" => FaultPlan {
                kind: FaultKind::Delay,
                step,
                delay_ms: arg_num("ms")?,
                seed: 0,
            },
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` \
                     (expected disconnect|drop-after-push|kill|crc|delay)"
                ));
            }
        };
        if kind != "crc" && kind != "delay" {
            if let Some(extra) = arg {
                return Err(format!("fault spec `{spec}`: `{kind}` takes no `:{extra}`"));
            }
        }
        Ok(plan)
    }

    /// Reads a plan from [`FAULT_ENV`], if set.
    ///
    /// # Errors
    ///
    /// Returns the parse error for a set-but-malformed value (a silently
    /// ignored fault spec would defeat the point of chaos testing).
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULT_ENV) {
            Ok(spec) if !spec.is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }
}

/// What the worker loop must do at an injection point.
#[derive(Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long, then continue normally.
    Delay(Duration),
    /// Abandon the connection (as if the network dropped it) and rejoin.
    Disconnect,
    /// Exit the process with [`KILL_EXIT_CODE`].
    Kill,
}

/// Arms a [`FaultPlan`] and fires it exactly once.
///
/// The injector outlives individual connection sessions: the worker's
/// reconnect-and-resume loop keeps one injector across all its sessions,
/// so a fault that already fired stays fired during replay.
#[derive(Debug)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
    fired: bool,
}

impl FaultInjector {
    /// Arms `plan` (or nothing).
    pub fn new(plan: Option<FaultPlan>) -> Self {
        FaultInjector { plan, fired: false }
    }

    /// An injector that never fires.
    pub fn inert() -> Self {
        FaultInjector::new(None)
    }

    /// Whether the armed fault has already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    fn due(&self, step: u64, kind: FaultKind) -> bool {
        !self.fired
            && self
                .plan
                .as_ref()
                .is_some_and(|p| p.kind == kind && p.step == step)
    }

    /// Injection point at the start of a step, before any push bytes are
    /// written.
    pub fn before_push(&mut self, step: u64) -> Option<FaultAction> {
        if self.due(step, FaultKind::Disconnect) {
            self.fired = true;
            return Some(FaultAction::Disconnect);
        }
        if self.due(step, FaultKind::Delay) {
            self.fired = true;
            let ms = self.plan.as_ref().expect("due implies a plan").delay_ms;
            return Some(FaultAction::Delay(Duration::from_millis(ms)));
        }
        None
    }

    /// Injection point after the push batch (including `PushDone`) is
    /// flushed, before the pull is read.
    pub fn after_push(&mut self, step: u64) -> Option<FaultAction> {
        if self.due(step, FaultKind::DropAfterPush) {
            self.fired = true;
            return Some(FaultAction::Disconnect);
        }
        if self.due(step, FaultKind::Kill) {
            self.fired = true;
            return Some(FaultAction::Kill);
        }
        None
    }

    /// Whether a CRC corruption is due at `step` — a cheap pre-check so
    /// the push path only re-encodes a frame when it will be corrupted.
    pub fn crc_due(&self, step: u64) -> bool {
        self.due(step, FaultKind::CorruptCrc)
    }

    /// If a CRC corruption is due at `step`, flips one deterministically
    /// chosen byte of `frame_bytes`'s payload region (everything past
    /// `header_len`) and reports true.
    pub fn corrupt_push(&mut self, step: u64, frame_bytes: &mut [u8], header_len: usize) -> bool {
        if !self.due(step, FaultKind::CorruptCrc) {
            return false;
        }
        self.fired = true;
        let body = frame_bytes.len().saturating_sub(header_len);
        if body == 0 {
            // Nothing past the header to flip; corrupt the checksum field
            // itself (the last header bytes) instead.
            if let Some(last) = frame_bytes.last_mut() {
                *last ^= 0xFF;
            }
            return true;
        }
        let seed = self.plan.as_ref().expect("due implies a plan").seed;
        // SplitMix64-style mixing: a fixed, seeded choice with no runtime
        // entropy, so every run flips the same byte.
        let mut x = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(step)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 31;
        let idx = header_len + (x as usize % body);
        frame_bytes[idx] ^= 0xFF;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse() {
        assert_eq!(
            FaultPlan::parse("disconnect@3").unwrap(),
            FaultPlan {
                kind: FaultKind::Disconnect,
                step: 3,
                delay_ms: 0,
                seed: 0
            }
        );
        assert_eq!(
            FaultPlan::parse("drop-after-push@5").unwrap().kind,
            FaultKind::DropAfterPush
        );
        assert_eq!(FaultPlan::parse("kill@0").unwrap().kind, FaultKind::Kill);
        let crc = FaultPlan::parse("crc@4:9").unwrap();
        assert_eq!(crc.kind, FaultKind::CorruptCrc);
        assert_eq!(crc.step, 4);
        assert_eq!(crc.seed, 9);
        assert_eq!(FaultPlan::parse("crc@4").unwrap().seed, 0);
        let delay = FaultPlan::parse("delay@2:250").unwrap();
        assert_eq!(delay.kind, FaultKind::Delay);
        assert_eq!(delay.delay_ms, 250);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("disconnect").is_err());
        assert!(FaultPlan::parse("explode@3").is_err());
        assert!(FaultPlan::parse("disconnect@x").is_err());
        assert!(FaultPlan::parse("delay@2").is_err());
        assert!(FaultPlan::parse("delay@2:fast").is_err());
        assert!(FaultPlan::parse("disconnect@2:junk").is_err());
        assert!(FaultPlan::parse("kill@1:9").is_err());
    }

    #[test]
    fn injector_fires_exactly_once_at_its_step() {
        let mut inj = FaultInjector::new(Some(FaultPlan::parse("disconnect@2").unwrap()));
        assert_eq!(inj.before_push(0), None);
        assert_eq!(inj.before_push(1), None);
        assert_eq!(inj.before_push(2), Some(FaultAction::Disconnect));
        assert!(inj.fired());
        // Replaying the same step after a rejoin must not re-fire.
        assert_eq!(inj.before_push(2), None);
        assert_eq!(inj.after_push(2), None);
    }

    #[test]
    fn kill_and_drop_fire_after_push() {
        let mut inj = FaultInjector::new(Some(FaultPlan::parse("kill@1").unwrap()));
        assert_eq!(inj.before_push(1), None);
        assert_eq!(inj.after_push(1), Some(FaultAction::Kill));
        let mut inj = FaultInjector::new(Some(FaultPlan::parse("drop-after-push@1").unwrap()));
        assert_eq!(inj.after_push(1), Some(FaultAction::Disconnect));
    }

    #[test]
    fn delay_returns_the_configured_duration() {
        let mut inj = FaultInjector::new(Some(FaultPlan::parse("delay@0:40").unwrap()));
        assert_eq!(
            inj.before_push(0),
            Some(FaultAction::Delay(Duration::from_millis(40)))
        );
    }

    #[test]
    fn crc_corruption_is_deterministic_and_payload_only() {
        let frame: Vec<u8> = (0u8..64).collect();
        let corrupt = |seed: u64| {
            let mut inj = FaultInjector::new(Some(FaultPlan {
                kind: FaultKind::CorruptCrc,
                step: 3,
                delay_ms: 0,
                seed,
            }));
            let mut bytes = frame.clone();
            assert!(inj.corrupt_push(3, &mut bytes, 24));
            assert!(!inj.corrupt_push(3, &mut bytes.clone(), 24));
            bytes
        };
        let a = corrupt(7);
        let b = corrupt(7);
        assert_eq!(a, b, "same seed flips the same byte");
        // Exactly one byte differs, and it is past the header.
        let flipped: Vec<usize> = (0..64).filter(|&i| a[i] != frame[i]).collect();
        assert_eq!(flipped.len(), 1);
        assert!(flipped[0] >= 24);
    }

    #[test]
    fn crc_corruption_of_an_empty_payload_hits_the_header() {
        let mut inj = FaultInjector::new(Some(FaultPlan::parse("crc@0").unwrap()));
        let mut bytes = vec![0u8; 24];
        assert!(inj.corrupt_push(0, &mut bytes, 24));
        assert_ne!(bytes, vec![0u8; 24]);
    }

    #[test]
    fn inert_injector_never_fires() {
        let mut inj = FaultInjector::inert();
        for step in 0..10 {
            assert_eq!(inj.before_push(step), None);
            assert_eq!(inj.after_push(step), None);
            assert!(!inj.corrupt_push(step, &mut [0u8; 32], 24));
        }
        assert!(!inj.fired());
    }
}
