//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Frame integrity checking needs nothing fancier: CRC-32 detects all
//! single- and double-bit errors, all odd numbers of bit errors, and all
//! burst errors up to 32 bits — the failure modes of a torn or corrupted
//! TCP bytestream boundary. The table is built at compile time.

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Incremental CRC-32 over multiple slices (header, then payload).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
