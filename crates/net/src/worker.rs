//! The worker side of the networked runtime.
//!
//! A worker connects (with bounded retry and exponential backoff),
//! receives the experiment configuration from the server's `HelloAck`,
//! derives the identical [`Problem`] instance locally, and then runs the
//! BSP loop: compute → compress → push, pull → decode → apply. Every
//! blocking socket operation is bounded by [`WorkerOptions::io_timeout`].

use crate::counters::ConnCounters;
use crate::frame::{read_frame, write_frame, MsgType};
use crate::metrics::{Conn, NetMetrics};
use crate::protocol::{
    bytes_to_tensor, encode_hello, encode_push_done, encode_trace_dump, tensor_to_bytes, NetError,
};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use threelc_distsim::engine::{Problem, TensorPayload, WorkerReplica};
use threelc_distsim::ExperimentConfig;
use threelc_learning::Network;
use threelc_obs::{trace, Level, SpanGuard, TraceBuffer, TraceScope, TraceSpan};

/// Worker connection and retry knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server address, e.g. `"127.0.0.1:7171"`.
    pub addr: String,
    /// This worker's id (`0..config.workers`; the server assigns slots by
    /// id, so every worker must use a distinct one).
    pub worker: u16,
    /// Timeout for each connection attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established connection.
    pub io_timeout: Duration,
    /// How many times to retry connecting after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry, capped at 10 s.
    pub initial_backoff: Duration,
    /// Codec threads for push compression (`0` = one per hardware core).
    /// A performance hint only: payloads are bit-identical at any setting.
    pub threads: usize,
}

impl WorkerOptions {
    /// Sensible defaults for `addr` and `worker`: 5 s connect timeout,
    /// 30 s I/O timeout, 5 retries starting at 100 ms backoff.
    pub fn new(addr: impl Into<String>, worker: u16) -> Self {
        WorkerOptions {
            addr: addr.into(),
            worker,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            max_retries: 5,
            initial_backoff: Duration::from_millis(100),
            threads: 1,
        }
    }
}

/// What a worker brings home from a completed run.
pub struct WorkerOutcome {
    /// The configuration the server distributed.
    pub config: ExperimentConfig,
    /// BSP steps completed.
    pub steps: u64,
    /// Transport counters for this connection.
    pub counters: ConnCounters,
    /// The final local model replica (bit-identical to the simulator's
    /// replica for the same configuration).
    pub model: Network,
}

const BACKOFF_CAP: Duration = Duration::from_secs(10);

/// Connects with per-attempt timeout and bounded exponential backoff,
/// counting failed attempts and the measured backoff sleep time.
fn connect_with_retry(opts: &WorkerOptions, conn: &mut Conn) -> Result<TcpStream, NetError> {
    let addrs: Vec<SocketAddr> = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| NetError::Protocol(format!("bad address {:?}: {e}", opts.addr)))?
        .collect();
    if addrs.is_empty() {
        return Err(NetError::Protocol(format!(
            "address {:?} resolved to nothing",
            opts.addr
        )));
    }
    let mut backoff = opts.initial_backoff;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..=opts.max_retries {
        if attempt > 0 {
            // Measure the sleep that actually happened, not the nominal
            // backoff — the OS may oversleep.
            let slept = Instant::now();
            thread::sleep(backoff);
            conn.note_retry(slept.elapsed().as_secs_f64());
            threelc_obs::event!(
                Level::Warn,
                "worker.connect_retry",
                attempt = attempt,
                backoff_ms = backoff.as_millis()
            );
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
        match TcpStream::connect_timeout(&addrs[0], opts.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(NetError::Io(last_err.expect("at least one attempt failed")))
}

/// Runs one worker to completion against a serving parameter server.
///
/// # Errors
///
/// Returns an error if the connection cannot be established within the
/// retry budget, the server misbehaves, or any frame fails validation.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerOutcome, NetError> {
    let mut conn = Conn::new(ConnCounters::default(), NetMetrics::worker());
    let stream = connect_with_retry(opts, &mut conn)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(opts.io_timeout))?;
    stream.set_write_timeout(Some(opts.io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // ---- Hello / HelloAck: the server distributes the configuration, so
    // a worker needs nothing but an address and an id.
    let t0 = Instant::now();
    write_frame(
        &mut writer,
        MsgType::Hello,
        0,
        0,
        &encode_hello(opts.worker),
    )?;
    writer.flush()?;
    conn.note_write(2, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let ack = read_frame(&mut reader)?;
    conn.note_read(ack.payload.len(), t0.elapsed().as_secs_f64());
    if ack.msg != MsgType::HelloAck {
        return Err(NetError::Protocol(format!(
            "expected HelloAck, got {:?}",
            ack.msg
        )));
    }
    let config_json = std::str::from_utf8(&ack.payload)
        .map_err(|_| NetError::Protocol("config payload is not UTF-8".into()))?;
    let config: ExperimentConfig = serde_json::from_str(config_json)
        .map_err(|e| NetError::Protocol(format!("config does not parse: {e}")))?;
    if usize::from(opts.worker) >= config.workers {
        return Err(NetError::Protocol(format!(
            "server config has {} workers, this is worker {}",
            config.workers, opts.worker
        )));
    }

    // ---- Derive the identical problem instance locally.
    let problem = Problem::build(&config);
    let n_params = problem.num_tensors();
    let mut replica = WorkerReplica::new(&problem, usize::from(opts.worker));
    replica.set_threads(opts.threads);
    // Decode-only mirrors of the server's pull contexts (decode is pure).
    let pull_ctxs = problem.pull_ctxs();

    // Tracing: a worker-local span buffer (its own clock domain — in a
    // loopback run every node shares one process, so node identity must
    // live in the buffer, not in process globals). The run-wide trace id
    // is derived from the seed, identically on every node, so it never
    // needs to cross the wire. Drained into the server's TraceDumpRequest
    // at shutdown.
    let tracing = trace::trace_enabled();
    let node = format!("worker{}", opts.worker);
    let buffer = Arc::new(TraceBuffer::default());
    let trace_id = trace::run_trace_id(config.seed);
    // Fault injection for exercising the straggler watchdog end to end:
    // sleep this many milliseconds inside every compute span.
    let straggle = std::env::var("THREELC_STRAGGLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);

    // ---- The BSP loop.
    for step in 0..config.total_steps {
        let _step_span = SpanGuard::on(Arc::clone(&conn.metrics.step_seconds));
        let _scope =
            tracing.then(|| TraceScope::enter(&buffer, &node, trace_id, step, opts.worker as i64));

        let compute_span = TraceSpan::start("compute");
        if straggle > 0 {
            thread::sleep(Duration::from_millis(straggle));
        }
        let (loss, grads) = replica.compute(&problem.data, config.batch_per_worker);
        compute_span.finish();

        // encode_push emits the quantize/encode spans from inside the codec.
        let encoded = replica.encode_push(grads);
        let residual_l2 = replica.residual_l2();
        let mut codec_seconds = encoded.codec_seconds;
        let serialize_span = TraceSpan::start("serialize");
        for (i, payload) in encoded.payloads.iter().enumerate() {
            let (msg, bytes) = match payload {
                TensorPayload::Compressed(wire) => (MsgType::PushTensor, wire.clone()),
                TensorPayload::Raw(t) => {
                    let t1 = Instant::now();
                    let bytes = tensor_to_bytes(t);
                    codec_seconds += t1.elapsed().as_secs_f64();
                    (MsgType::PushRaw, bytes)
                }
            };
            let t0 = Instant::now();
            write_frame(&mut writer, msg, i as u16, step, &bytes)?;
            conn.note_write(bytes.len(), t0.elapsed().as_secs_f64());
        }
        conn.note_codec(codec_seconds);
        serialize_span.finish();

        // The network span runs from flushing the push batch until the
        // barrier releases us with a complete pull batch. Decoding is
        // deliberately excluded (it happens below, under "pull"): the
        // clock-offset estimator pairs this span's endpoints with the
        // server's recv_push/send_pull spans.
        let network_span = TraceSpan::start("network");
        let done = encode_push_done(loss, codec_seconds, residual_l2);
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::PushDone, 0, step, &done)?;
        writer.flush()?;
        conn.note_write(done.len(), t0.elapsed().as_secs_f64());

        // Read the shared pull batch.
        let mut pull_frames = Vec::with_capacity(n_params);
        loop {
            let t0 = Instant::now();
            let frame = read_frame(&mut reader)?;
            conn.note_read(frame.payload.len(), t0.elapsed().as_secs_f64());
            if frame.step != step {
                return Err(NetError::Protocol(format!(
                    "server sent step {} during step {step}",
                    frame.step
                )));
            }
            match frame.msg {
                MsgType::PullTensor | MsgType::PullRaw => {
                    let i = pull_frames.len();
                    if i >= n_params || usize::from(frame.tensor) != i {
                        return Err(NetError::Protocol(format!(
                            "server pulled tensor {} out of order (expected {i})",
                            frame.tensor
                        )));
                    }
                    pull_frames.push((frame.msg, frame.payload));
                }
                MsgType::PullDone => {
                    if pull_frames.len() != n_params {
                        return Err(NetError::Protocol(format!(
                            "server pulled {} of {n_params} tensors",
                            pull_frames.len()
                        )));
                    }
                    break;
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "server sent {other:?} during the pull phase"
                    )));
                }
            }
        }
        network_span.finish();

        // Decode the shared model delta and apply it.
        let pull_span = TraceSpan::start("pull");
        let mut deltas = Vec::with_capacity(n_params);
        for (i, (msg, payload)) in pull_frames.into_iter().enumerate() {
            let t1 = Instant::now();
            let delta = if msg == MsgType::PullTensor {
                pull_ctxs[i]
                    .as_ref()
                    .ok_or_else(|| {
                        NetError::Protocol(format!(
                            "server compressed tensor {i}, which is below the threshold"
                        ))
                    })?
                    .decompress(&payload)
                    .map_err(|e| {
                        NetError::Protocol(format!("pull payload {i} does not decode: {e}"))
                    })?
            } else {
                bytes_to_tensor(&payload, &problem.shapes[i])?
            };
            conn.note_codec(t1.elapsed().as_secs_f64());
            deltas.push(delta);
        }
        replica.apply_deltas(&deltas);
        pull_span.finish();
    }

    // ---- Graceful shutdown handshake. The server may first ask for this
    // worker's span buffer (TraceDumpRequest); answer any number of those
    // — even with tracing off the reply is just an empty buffer — then
    // ack the Shutdown.
    loop {
        let t0 = Instant::now();
        let fin = read_frame(&mut reader)?;
        conn.note_read(fin.payload.len(), t0.elapsed().as_secs_f64());
        match fin.msg {
            MsgType::TraceDumpRequest => {
                let dump = encode_trace_dump(&buffer.drain(&node))?;
                let t0 = Instant::now();
                write_frame(
                    &mut writer,
                    MsgType::TraceDump,
                    0,
                    config.total_steps,
                    &dump,
                )?;
                writer.flush()?;
                conn.note_write(dump.len(), t0.elapsed().as_secs_f64());
            }
            MsgType::Shutdown => break,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Shutdown, got {other:?}"
                )));
            }
        }
    }
    let t0 = Instant::now();
    write_frame(
        &mut writer,
        MsgType::ShutdownAck,
        0,
        config.total_steps,
        &[],
    )?;
    writer.flush()?;
    conn.note_write(0, t0.elapsed().as_secs_f64());

    Ok(WorkerOutcome {
        config,
        steps: config.total_steps,
        counters: conn.counters,
        model: replica.into_model(),
    })
}
