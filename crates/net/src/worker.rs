//! The worker side of the networked runtime.
//!
//! A worker connects (with bounded retry and exponential backoff),
//! receives the experiment configuration from the server's `HelloAck`,
//! derives the identical [`Problem`] instance locally, and then runs the
//! BSP loop: compute → compress → push, pull → decode → apply. Every
//! blocking socket operation is bounded by [`WorkerOptions::io_timeout`].
//!
//! The BSP loop runs inside a reconnect-and-resume outer loop: when an
//! established connection dies mid-run (and the rejoin budget allows),
//! the worker dials back, sends a `Rejoin` frame, and resynchronizes from
//! the server's `RejoinAck` — rebuilding a fresh replica and replaying
//! every completed step (recomputing gradients to advance its RNG and
//! residual state, applying the server's replayed pull batches) so its
//! state is bit-identical to an undisturbed worker's before it resumes
//! live training (see `DESIGN.md` §11). A replacement process for a
//! worker that died outright starts the same way via
//! [`WorkerOptions::start_rejoined`].
//!
//! The [`crate::faults`] injector hooks into the loop at fixed points
//! (before the push, while writing it, after flushing it), so chaos tests
//! can produce each failure mode deterministically.

use crate::counters::ConnCounters;
use crate::faults::{FaultAction, FaultInjector, FaultPlan, KILL_EXIT_CODE};
use crate::frame::{read_frame, write_frame, Frame, FrameError, MsgType, HEADER_LEN};
use crate::metrics::{Conn, NetMetrics};
use crate::protocol::{
    bytes_to_tensor, decode_policy_update, decode_rejoin_ack, encode_hello, encode_push_done,
    encode_trace_dump, tensor_to_bytes, NetError,
};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use threelc_distsim::engine::{Problem, TensorPayload, WorkerReplica};
use threelc_distsim::{base_sparsity, ExperimentConfig};
use threelc_learning::Network;
use threelc_obs::{trace, Level, SpanGuard, TraceBuffer, TraceScope, TraceSpan};
use threelc_policy::Decision;

/// Worker connection and retry knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server address, e.g. `"127.0.0.1:7171"`.
    pub addr: String,
    /// This worker's id (`0..config.workers`; the server assigns slots by
    /// id, so every worker must use a distinct one).
    pub worker: u16,
    /// Timeout for each connection attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established connection.
    pub io_timeout: Duration,
    /// How many times to retry connecting after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry, capped at 10 s.
    pub initial_backoff: Duration,
    /// Codec threads for push compression (`0` = one per hardware core).
    /// A performance hint only: payloads are bit-identical at any setting.
    pub threads: usize,
    /// Mid-run reconnect-and-resume attempts after an established
    /// connection dies. `0` restores strict fail-stop behavior. Must not
    /// exceed the server's budget, or late rejoins are refused and time
    /// out.
    pub max_rejoins: u32,
    /// Deterministic fault to inject into the BSP loop (chaos testing);
    /// `None` for a normal run.
    pub fault: Option<FaultPlan>,
    /// Open with a `Rejoin` handshake instead of `Hello`: this process
    /// replaces a worker that died mid-run (e.g. after an injected kill),
    /// and resynchronizes from the server's replay before training live.
    pub start_rejoined: bool,
}

impl WorkerOptions {
    /// Sensible defaults for `addr` and `worker`: 5 s connect timeout,
    /// 30 s I/O timeout, 5 retries starting at 100 ms backoff, 4 rejoins,
    /// no fault injection.
    pub fn new(addr: impl Into<String>, worker: u16) -> Self {
        WorkerOptions {
            addr: addr.into(),
            worker,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            max_retries: 5,
            initial_backoff: Duration::from_millis(100),
            threads: 1,
            max_rejoins: 4,
            fault: None,
            start_rejoined: false,
        }
    }
}

/// What a worker brings home from a completed run.
pub struct WorkerOutcome {
    /// The configuration the server distributed.
    pub config: ExperimentConfig,
    /// BSP steps completed.
    pub steps: u64,
    /// Transport counters, totalled across every connection the run used
    /// (one for an undisturbed run, more after rejoins).
    pub counters: ConnCounters,
    /// Mid-run rejoins this worker performed.
    pub rejoins: u32,
    /// The final local model replica (bit-identical to the simulator's
    /// replica for the same configuration).
    pub model: Network,
}

const BACKOFF_CAP: Duration = Duration::from_secs(10);

/// Dials the resolved addresses in order, returning the first stream that
/// connects within `timeout` (per attempt). Multi-homed hostnames — e.g.
/// `localhost` resolving to both `127.0.0.1` and `::1` — reach the server
/// even when it listens on only one of them.
fn connect_any(addrs: &[SocketAddr], timeout: Duration) -> io::Result<TcpStream> {
    let mut last_err: Option<io::Error> = None;
    for addr in addrs {
        match TcpStream::connect_timeout(addr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses to dial")))
}

/// Connects with per-attempt timeout and bounded exponential backoff,
/// counting failed attempts and the measured backoff sleep time. Each
/// attempt tries every resolved address.
fn connect_with_retry(opts: &WorkerOptions, conn: &mut Conn) -> Result<TcpStream, NetError> {
    let addrs: Vec<SocketAddr> = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| NetError::Protocol(format!("bad address {:?}: {e}", opts.addr)))?
        .collect();
    if addrs.is_empty() {
        return Err(NetError::Protocol(format!(
            "address {:?} resolved to nothing",
            opts.addr
        )));
    }
    let mut backoff = opts.initial_backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..=opts.max_retries {
        if attempt > 0 {
            // Measure the sleep that actually happened, not the nominal
            // backoff — the OS may oversleep.
            let slept = Instant::now();
            thread::sleep(backoff);
            conn.note_retry(slept.elapsed().as_secs_f64());
            threelc_obs::event!(
                Level::Warn,
                "worker.connect_retry",
                attempt = attempt,
                backoff_ms = backoff.as_millis()
            );
            backoff = (backoff * 2).min(BACKOFF_CAP);
        }
        match connect_any(&addrs, opts.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(NetError::Io(last_err.expect("at least one attempt failed")))
}

/// Whether a session failure is the kind a rejoin can recover from: a
/// transport-level loss (reset, EOF, timeout), as opposed to a protocol
/// violation or bad configuration, which would just recur.
fn is_recoverable(error: &NetError) -> bool {
    matches!(error, NetError::Io(_) | NetError::Frame(FrameError::Io(_)))
}

/// Runs one worker to completion against a serving parameter server,
/// surviving up to [`WorkerOptions::max_rejoins`] mid-run connection
/// losses by reconnecting and resuming (see the module docs).
///
/// # Errors
///
/// Returns an error if the connection cannot be established within the
/// retry budget, the server misbehaves, any frame fails validation, or a
/// connection dies with the rejoin budget exhausted.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerOutcome, NetError> {
    // One injector for the whole run: a fault that already fired stays
    // fired across the rejoin it caused.
    let mut injector = FaultInjector::new(opts.fault);
    // Counters of connections already lost, folded into the final total.
    let mut carried = ConnCounters::default();
    let mut rejoins_used: u32 = 0;
    let mut rejoining = opts.start_rejoined;
    loop {
        let mut conn = Conn::new(ConnCounters::default(), NetMetrics::worker());
        let mut established = false;
        match run_session(opts, rejoining, &mut injector, &mut conn, &mut established) {
            Ok((config, model)) => {
                let mut counters = carried;
                counters.merge(&conn.counters);
                return Ok(WorkerOutcome {
                    steps: config.total_steps,
                    config,
                    counters,
                    rejoins: rejoins_used,
                    model,
                });
            }
            Err(error) => {
                carried.merge(&conn.counters);
                // Only established sessions rejoin: a handshake that never
                // completed (wrong server, bad id) is not a mid-run fault.
                if !established || !is_recoverable(&error) || rejoins_used >= opts.max_rejoins {
                    return Err(error);
                }
                rejoins_used += 1;
                conn.metrics.disconnects.add(1);
                conn.metrics.rejoins.add(1);
                threelc_obs::event!(
                    Level::Warn,
                    "worker.rejoining",
                    worker = opts.worker,
                    attempt = rejoins_used,
                    cause = error.to_string()
                );
                rejoining = true;
            }
        }
    }
}

/// One connection's lifetime: handshake (or rejoin resync), the BSP loop,
/// and the shutdown handshake. Returns the configuration and the final
/// model on a clean run; `established` reports whether the handshake
/// completed (the rejoin-eligibility line).
fn run_session(
    opts: &WorkerOptions,
    rejoining: bool,
    injector: &mut FaultInjector,
    conn: &mut Conn,
    established: &mut bool,
) -> Result<(ExperimentConfig, Network), NetError> {
    let stream = connect_with_retry(opts, conn)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(opts.io_timeout))?;
    stream.set_write_timeout(Some(opts.io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // ---- Hello / HelloAck (or Rejoin / RejoinAck): the server
    // distributes the configuration either way, so a worker — or a
    // replacement for a dead one — needs nothing but an address and an id.
    let hello_payload = encode_hello(opts.worker);
    let (open_msg, ack_msg) = if rejoining {
        (MsgType::Rejoin, MsgType::RejoinAck)
    } else {
        (MsgType::Hello, MsgType::HelloAck)
    };
    let t0 = Instant::now();
    write_frame(&mut writer, open_msg, 0, 0, &hello_payload)?;
    writer.flush()?;
    conn.note_write(hello_payload.len(), t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let ack = read_frame(&mut reader)?;
    conn.note_read(ack.payload.len(), t0.elapsed().as_secs_f64());
    if ack.msg != ack_msg {
        return Err(NetError::Protocol(format!(
            "expected {ack_msg:?}, got {:?}",
            ack.msg
        )));
    }
    let (resume_step, config_json) = if rejoining {
        decode_rejoin_ack(&ack.payload)?
    } else {
        let json = std::str::from_utf8(&ack.payload)
            .map_err(|_| NetError::Protocol("config payload is not UTF-8".into()))?;
        (0, json)
    };
    let config: ExperimentConfig = serde_json::from_str(config_json)
        .map_err(|e| NetError::Protocol(format!("config does not parse: {e}")))?;
    if usize::from(opts.worker) >= config.workers {
        return Err(NetError::Protocol(format!(
            "server config has {} workers, this is worker {}",
            config.workers, opts.worker
        )));
    }
    if resume_step > config.total_steps {
        return Err(NetError::Protocol(format!(
            "resume step {resume_step} beyond the {}-step run",
            config.total_steps
        )));
    }
    *established = true;

    // ---- Derive the identical problem instance locally.
    let problem = Problem::build(&config);
    let n_params = problem.num_tensors();
    let mut replica = WorkerReplica::new(&problem, usize::from(opts.worker));
    replica.set_threads(opts.threads);
    // Decode-only mirrors of the server's pull contexts (decode is pure).
    let pull_ctxs = problem.pull_ctxs();
    // Adaptive policies: the step-0 decisions are a pure function of the
    // configuration — the server computes the identical vector in
    // `ServerCore::new` — so the worker derives them locally instead of
    // waiting for a broadcast. Every later step's decisions arrive as a
    // `PolicyUpdate` frame appended to the pull batch (replayed batches
    // included, so a rejoined replica reconstructs the exact decision
    // sequence).
    if config.policy.is_adaptive() {
        let first = config
            .policy
            .initial_decisions(n_params, base_sparsity(&config))
            .map_err(|e| NetError::Config(format!("server config has a bad policy: {e}")))?;
        replica.apply_policy(&first);
    }

    // Tracing: a worker-local span buffer (its own clock domain — in a
    // loopback run every node shares one process, so node identity must
    // live in the buffer, not in process globals). The run-wide trace id
    // is derived from the seed, identically on every node, so it never
    // needs to cross the wire. Drained into the server's TraceDumpRequest
    // at shutdown. A rejoined session starts a fresh buffer: spans from
    // the lost connection die with it.
    let tracing = trace::trace_enabled();
    let node = format!("worker{}", opts.worker);
    let buffer = Arc::new(TraceBuffer::default());
    let trace_id = trace::run_trace_id(config.seed);
    // Fault injection for exercising the straggler watchdog end to end:
    // sleep this many milliseconds inside every compute span.
    let straggle = std::env::var("THREELC_STRAGGLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);

    // ---- Replay: resynchronize a rejoined replica by re-running every
    // completed step against the server's replayed pull batches. Compute
    // and encode_push run for their *state* (RNG draws, residual
    // accumulation) — the payloads go nowhere. After the last replayed
    // step the replica is bit-identical to one that never disconnected.
    // Replayed steps record no trace spans; the timeline shows only live
    // work.
    for step in 0..resume_step {
        let (_loss, grads) = replica.compute(&problem.data, config.batch_per_worker);
        let _ = replica.encode_push(grads);
        let (pull_frames, policy) = read_pull_batch(&mut reader, conn, step, n_params)?;
        decode_and_apply(pull_frames, &pull_ctxs, &problem, &mut replica, conn)?;
        if let Some(decisions) = policy {
            replica.apply_policy(&decisions);
        }
    }
    if rejoining {
        threelc_obs::event!(
            Level::Info,
            "worker.resynced",
            worker = opts.worker,
            resume_step = resume_step
        );
    }

    // ---- The BSP loop.
    for step in resume_step..config.total_steps {
        let _step_span = SpanGuard::on(Arc::clone(&conn.metrics.step_seconds));
        let _scope =
            tracing.then(|| TraceScope::enter(&buffer, &node, trace_id, step, opts.worker as i64));

        match injector.before_push(step) {
            Some(FaultAction::Delay(d)) => {
                threelc_obs::event!(
                    Level::Warn,
                    "worker.fault_injected",
                    kind = "delay",
                    step = step,
                    ms = d.as_millis()
                );
                thread::sleep(d);
            }
            Some(FaultAction::Disconnect) => return Err(injected_disconnect("disconnect", step)),
            Some(FaultAction::Kill) | None => {}
        }

        // Step latency for the per-worker time series: compute through
        // the flushed push batch (straggle sleeps included — that is the
        // latency a live dashboard should surface).
        let step_t0 = Instant::now();
        let compute_span = TraceSpan::start("compute");
        if straggle > 0 {
            thread::sleep(Duration::from_millis(straggle));
        }
        let (loss, grads) = replica.compute(&problem.data, config.batch_per_worker);
        compute_span.finish();

        // encode_push emits the quantize/encode spans from inside the codec.
        let encoded = replica.encode_push(grads);
        let residual_l2 = replica.residual_l2();
        let mut codec_seconds = encoded.codec_seconds;
        let serialize_span = TraceSpan::start("serialize");
        for (i, payload) in encoded.payloads.iter().enumerate() {
            let (msg, bytes) = match payload {
                TensorPayload::Compressed(wire) => (MsgType::PushTensor, wire.clone()),
                TensorPayload::Raw(t) => {
                    let t1 = Instant::now();
                    let bytes = tensor_to_bytes(t);
                    codec_seconds += t1.elapsed().as_secs_f64();
                    (MsgType::PushRaw, bytes)
                }
            };
            if i == 0 && injector.crc_due(step) {
                // Injected corruption: encode the frame (a version-1
                // frame, so the byte layout is fixed), flip one
                // deterministically chosen payload byte, and send it raw.
                // The server's CRC check rejects it and drops us.
                let len = bytes.len();
                let mut raw = Frame::new(msg, 0, step, bytes).encode();
                injector.corrupt_push(step, &mut raw, HEADER_LEN);
                threelc_obs::event!(
                    Level::Warn,
                    "worker.fault_injected",
                    kind = "crc",
                    step = step
                );
                let t0 = Instant::now();
                writer.write_all(&raw)?;
                conn.note_write(len, t0.elapsed().as_secs_f64());
                continue;
            }
            let t0 = Instant::now();
            write_frame(&mut writer, msg, i as u16, step, &bytes)?;
            conn.note_write(bytes.len(), t0.elapsed().as_secs_f64());
        }
        conn.note_codec(codec_seconds);
        serialize_span.finish();

        // The network span runs from flushing the push batch until the
        // barrier releases us with a complete pull batch. Decoding is
        // deliberately excluded (it happens below, under "pull"): the
        // clock-offset estimator pairs this span's endpoints with the
        // server's recv_push/send_pull spans.
        let network_span = TraceSpan::start("network");
        let done = encode_push_done(
            loss,
            codec_seconds,
            residual_l2,
            step_t0.elapsed().as_secs_f64(),
        );
        let t0 = Instant::now();
        write_frame(&mut writer, MsgType::PushDone, 0, step, &done)?;
        writer.flush()?;
        conn.note_write(done.len(), t0.elapsed().as_secs_f64());

        match injector.after_push(step) {
            Some(FaultAction::Kill) => {
                threelc_obs::event!(
                    Level::Warn,
                    "worker.fault_injected",
                    kind = "kill",
                    step = step
                );
                // A real death, not an error path: the replacement process
                // rejoins via --rejoin (ci.sh's chaos stage does exactly
                // that, keying on this exit code).
                std::process::exit(KILL_EXIT_CODE);
            }
            Some(FaultAction::Disconnect) => {
                return Err(injected_disconnect("drop-after-push", step));
            }
            Some(FaultAction::Delay(_)) | None => {}
        }

        // Read the shared pull batch.
        let (pull_frames, policy) = read_pull_batch(&mut reader, conn, step, n_params)?;
        network_span.finish();

        // Decode the shared model delta and apply it.
        let pull_span = TraceSpan::start("pull");
        decode_and_apply(pull_frames, &pull_ctxs, &problem, &mut replica, conn)?;
        // Decisions broadcast with step N's pull govern step N+1's push
        // encode, so they take effect after the delta is applied.
        if let Some(decisions) = policy {
            replica.apply_policy(&decisions);
        }
        pull_span.finish();
    }

    // ---- Graceful shutdown handshake. The server may first ask for this
    // worker's span buffer (TraceDumpRequest); answer any number of those
    // — even with tracing off the reply is just an empty buffer — then
    // ack the Shutdown.
    loop {
        let t0 = Instant::now();
        let fin = read_frame(&mut reader)?;
        conn.note_read(fin.payload.len(), t0.elapsed().as_secs_f64());
        match fin.msg {
            MsgType::TraceDumpRequest => {
                let dump = encode_trace_dump(&buffer.drain(&node))?;
                let t0 = Instant::now();
                write_frame(
                    &mut writer,
                    MsgType::TraceDump,
                    0,
                    config.total_steps,
                    &dump,
                )?;
                writer.flush()?;
                conn.note_write(dump.len(), t0.elapsed().as_secs_f64());
            }
            MsgType::Shutdown => break,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Shutdown, got {other:?}"
                )));
            }
        }
    }
    let t0 = Instant::now();
    write_frame(
        &mut writer,
        MsgType::ShutdownAck,
        0,
        config.total_steps,
        &[],
    )?;
    writer.flush()?;
    conn.note_write(0, t0.elapsed().as_secs_f64());

    Ok((config, replica.into_model()))
}

/// The recoverable error an injected connection fault surfaces as — shaped
/// exactly like a real peer reset, so the rejoin path under test is the
/// production one.
fn injected_disconnect(kind: &str, step: u64) -> NetError {
    threelc_obs::event!(
        Level::Warn,
        "worker.fault_injected",
        kind = kind,
        step = step
    );
    NetError::Io(io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected {kind} fault at step {step}"),
    ))
}

/// Reads one step's complete pull batch (`PullTensor`/`PullRaw`* then
/// `PullDone`), validating step and tensor order. An adaptive server
/// appends at most one `PolicyUpdate` frame — the next step's decisions —
/// which is returned alongside the tensors (its tensor id falls outside
/// the pull sequence, so it is exempt from the in-order check). Shared by
/// the live BSP loop and the rejoin replay.
#[allow(clippy::type_complexity)]
fn read_pull_batch<R: io::Read>(
    reader: &mut R,
    conn: &mut Conn,
    step: u64,
    n_params: usize,
) -> Result<(Vec<(MsgType, Vec<u8>)>, Option<Vec<Decision>>), NetError> {
    let mut pull_frames = Vec::with_capacity(n_params);
    let mut policy: Option<Vec<Decision>> = None;
    loop {
        let t0 = Instant::now();
        let frame = read_frame(reader)?;
        conn.note_read(frame.payload.len(), t0.elapsed().as_secs_f64());
        if frame.step != step {
            return Err(NetError::Protocol(format!(
                "server sent step {} during step {step}",
                frame.step
            )));
        }
        match frame.msg {
            MsgType::PullTensor | MsgType::PullRaw => {
                let i = pull_frames.len();
                if i >= n_params || usize::from(frame.tensor) != i {
                    return Err(NetError::Protocol(format!(
                        "server pulled tensor {} out of order (expected {i})",
                        frame.tensor
                    )));
                }
                pull_frames.push((frame.msg, frame.payload));
            }
            MsgType::PolicyUpdate => {
                if policy.is_some() {
                    return Err(NetError::Protocol(
                        "server sent two PolicyUpdate frames in one pull batch".into(),
                    ));
                }
                policy = Some(decode_policy_update(&frame.payload)?);
            }
            MsgType::PullDone => {
                if pull_frames.len() != n_params {
                    return Err(NetError::Protocol(format!(
                        "server pulled {} of {n_params} tensors",
                        pull_frames.len()
                    )));
                }
                return Ok((pull_frames, policy));
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "server sent {other:?} during the pull phase"
                )));
            }
        }
    }
}

/// Decodes one step's pull batch and applies the shared delta to the
/// replica.
fn decode_and_apply(
    pull_frames: Vec<(MsgType, Vec<u8>)>,
    pull_ctxs: &[Option<Box<dyn threelc::Compressor>>],
    problem: &Problem,
    replica: &mut WorkerReplica,
    conn: &mut Conn,
) -> Result<(), NetError> {
    let mut deltas = Vec::with_capacity(pull_frames.len());
    for (i, (msg, payload)) in pull_frames.into_iter().enumerate() {
        let t1 = Instant::now();
        let delta = if msg == MsgType::PullTensor {
            pull_ctxs[i]
                .as_ref()
                .ok_or_else(|| {
                    NetError::Protocol(format!(
                        "server compressed tensor {i}, which is below the threshold"
                    ))
                })?
                .decompress(&payload)
                .map_err(|e| NetError::Protocol(format!("pull payload {i} does not decode: {e}")))?
        } else {
            bytes_to_tensor(&payload, &problem.shapes[i])?
        };
        conn.note_codec(t1.elapsed().as_secs_f64());
        deltas.push(delta);
    }
    replica.apply_deltas(&deltas);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connect_any_falls_through_dead_addresses() {
        let live = TcpListener::bind("127.0.0.1:0").expect("bind");
        let live_addr = live.local_addr().expect("addr");
        // A port that was bound and released: connecting to it is refused
        // immediately on loopback.
        let dead_addr = {
            let tmp = TcpListener::bind("127.0.0.1:0").expect("bind");
            tmp.local_addr().expect("addr")
        };
        // The regression: dialing only the first address fails here.
        let stream = connect_any(&[dead_addr, live_addr], Duration::from_secs(1))
            .expect("second address is live");
        assert_eq!(stream.peer_addr().expect("peer"), live_addr);
        // All-dead still errors, with the last failure.
        assert!(connect_any(&[dead_addr], Duration::from_secs(1)).is_err());
        assert!(connect_any(&[], Duration::from_secs(1)).is_err());
    }

    #[test]
    fn recoverable_errors_are_transport_level_only() {
        assert!(is_recoverable(&NetError::Io(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "reset"
        ))));
        assert!(is_recoverable(&NetError::Frame(FrameError::Io(
            io::Error::new(io::ErrorKind::UnexpectedEof, "eof")
        ))));
        assert!(!is_recoverable(&NetError::Protocol("bad".into())));
        assert!(!is_recoverable(&NetError::Config("bad".into())));
        assert!(!is_recoverable(&NetError::Frame(FrameError::CrcMismatch {
            expected: 1,
            actual: 2
        })));
    }
}
