//! Payload encodings shared by server and worker, and the runtime error
//! type.

use crate::frame::FrameError;
use std::io;
use threelc_tensor::{Shape, Tensor};

/// Failures of the networked runtime.
#[derive(Debug)]
pub enum NetError {
    /// Frame codec failure (corruption, truncation, bad header).
    Frame(FrameError),
    /// Socket-level failure outside frame parsing.
    Io(io::Error),
    /// The peer violated the protocol (wrong message, wrong step, bad
    /// payload contents).
    Protocol(String),
    /// The configuration cannot run on this runtime.
    Config(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Config(m) => write!(f, "unsupported configuration: {m}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Frame(e) => Some(e),
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Serializes a tensor as little-endian `f32`s (the raw-tensor payload).
pub fn tensor_to_bytes(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.len() * 4);
    for &x in t.iter() {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Rebuilds a tensor of a known shape from little-endian `f32` bytes.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] when the byte count does not match the
/// shape.
pub fn bytes_to_tensor(bytes: &[u8], shape: &Shape) -> Result<Tensor, NetError> {
    let n = shape.num_elements();
    if bytes.len() != n * 4 {
        return Err(NetError::Protocol(format!(
            "raw tensor payload is {} bytes, shape {shape} needs {}",
            bytes.len(),
            n * 4
        )));
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Ok(Tensor::from_vec(data, shape.clone()))
}

/// Encodes the `Hello` payload: the worker's id.
pub fn encode_hello(worker: u16) -> Vec<u8> {
    worker.to_le_bytes().to_vec()
}

/// Decodes the `Hello` payload.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_hello(payload: &[u8]) -> Result<u16, NetError> {
    let bytes: [u8; 2] = payload.try_into().map_err(|_| {
        NetError::Protocol(format!("hello payload is {} bytes, want 2", payload.len()))
    })?;
    Ok(u16::from_le_bytes(bytes))
}

/// Encodes the `RejoinAck` payload: the step the rejoining worker must
/// resume at (u64 LE), followed by the `ExperimentConfig` JSON — so a
/// freshly started replacement process needs nothing beyond the ack to
/// rebuild its replica.
pub fn encode_rejoin_ack(resume_step: u64, config_json: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config_json.len());
    out.extend_from_slice(&resume_step.to_le_bytes());
    out.extend_from_slice(config_json.as_bytes());
    out
}

/// Decodes the `RejoinAck` payload into the resume step and the config
/// JSON.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_rejoin_ack(payload: &[u8]) -> Result<(u64, &str), NetError> {
    if payload.len() < 8 {
        return Err(NetError::Protocol(format!(
            "rejoin-ack payload is {} bytes, want at least 8",
            payload.len()
        )));
    }
    let resume_step = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let json = std::str::from_utf8(&payload[8..])
        .map_err(|_| NetError::Protocol("rejoin-ack config is not UTF-8".into()))?;
    Ok((resume_step, json))
}

/// A stable fingerprint of a model: CRC-32 (IEEE) over every parameter
/// tensor's little-endian `f32` bytes, in parameter order. Bit-identical
/// models hash identically, so a networked run — even one that survived
/// worker faults — can be compared against the in-process simulator with
/// a single number (the chaos gate in `ci.sh` does exactly that).
pub fn model_crc32(model: &threelc_learning::Network) -> u32 {
    let mut crc = crate::crc32::Crc32::new();
    for param in model.params() {
        for &x in param.iter() {
            crc.update(&x.to_le_bytes());
        }
    }
    crc.finish()
}

/// Encodes the `PushDone` payload: local loss, worker codec seconds, the
/// L2 norm of the worker's accumulated quantization residual, and the
/// wall-clock seconds the worker spent computing + encoding the step
/// (the per-worker latency series the run recorder folds).
pub fn encode_push_done(
    loss: f32,
    codec_seconds: f64,
    residual_l2: f64,
    step_seconds: f64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    out.extend_from_slice(&loss.to_le_bytes());
    out.extend_from_slice(&codec_seconds.to_le_bytes());
    out.extend_from_slice(&residual_l2.to_le_bytes());
    out.extend_from_slice(&step_seconds.to_le_bytes());
    out
}

/// Encodes the `MetricsSnapshot` payload: the snapshot as JSON.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] if the snapshot does not serialize
/// (which would indicate a non-finite value slipped into a metric).
pub fn encode_metrics_snapshot(snapshot: &threelc_obs::Snapshot) -> Result<Vec<u8>, NetError> {
    serde_json::to_string(snapshot)
        .map(String::into_bytes)
        .map_err(|e| NetError::Protocol(format!("snapshot does not serialize: {e}")))
}

/// Decodes the `MetricsSnapshot` payload.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_metrics_snapshot(payload: &[u8]) -> Result<threelc_obs::Snapshot, NetError> {
    let json = std::str::from_utf8(payload)
        .map_err(|_| NetError::Protocol("metrics snapshot payload is not UTF-8".into()))?;
    serde_json::from_str(json)
        .map_err(|e| NetError::Protocol(format!("metrics snapshot does not parse: {e}")))
}

/// Decodes the `PushDone` payload.
///
/// Accepts the current 28-byte form, the pre-latency 20-byte form
/// (step seconds read as 0.0), and the pre-residual 12-byte form
/// (residual and step seconds read as 0.0), so a newer server keeps
/// working with older workers.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_push_done(payload: &[u8]) -> Result<(f32, f64, f64, f64), NetError> {
    if payload.len() != 12 && payload.len() != 20 && payload.len() != 28 {
        return Err(NetError::Protocol(format!(
            "push-done payload is {} bytes, want 12, 20, or 28",
            payload.len()
        )));
    }
    let loss = f32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let codec = f64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
    let residual = if payload.len() >= 20 {
        f64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"))
    } else {
        0.0
    };
    let step_seconds = if payload.len() >= 28 {
        f64::from_le_bytes(payload[20..28].try_into().expect("8 bytes"))
    } else {
        0.0
    };
    Ok((loss, codec, residual, step_seconds))
}

/// Encodes the `SeriesDump` payload: the run's time-series store as JSON.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] if the store does not serialize.
pub fn encode_series_dump(series: &threelc_obs::RunSeries) -> Result<Vec<u8>, NetError> {
    serde_json::to_string(series)
        .map(String::into_bytes)
        .map_err(|e| NetError::Protocol(format!("series store does not serialize: {e}")))
}

/// Decodes the `SeriesDump` payload.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_series_dump(payload: &[u8]) -> Result<threelc_obs::RunSeries, NetError> {
    let json = std::str::from_utf8(payload)
        .map_err(|_| NetError::Protocol("series dump payload is not UTF-8".into()))?;
    serde_json::from_str(json)
        .map_err(|e| NetError::Protocol(format!("series dump does not parse: {e}")))
}

/// Encodes the `PolicyUpdate` payload: the per-tensor decisions for the
/// next step as `count (u16 LE) + count × [s (f32 LE) + reason (u8)]`.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] when `decisions` exceeds the wire
/// format's `u16` count field. A plain `as u16` cast here would silently
/// truncate (65 536 decisions encode as 0) and every worker would then
/// reject the frame as a body-length mismatch — or worse, apply a prefix.
/// Models with that many tensors are beyond this format; failing at
/// encode time names the real limit.
pub fn encode_policy_update(decisions: &[threelc_policy::Decision]) -> Result<Vec<u8>, NetError> {
    let count = u16::try_from(decisions.len()).map_err(|_| {
        NetError::Protocol(format!(
            "policy update has {} decisions; the wire format caps at {}",
            decisions.len(),
            u16::MAX
        ))
    })?;
    let mut out = Vec::with_capacity(2 + decisions.len() * 5);
    out.extend_from_slice(&count.to_le_bytes());
    for d in decisions {
        out.extend_from_slice(&d.s.value().to_le_bytes());
        out.push(d.reason.code());
    }
    Ok(out)
}

/// Decodes the `PolicyUpdate` payload, validating every multiplier
/// through [`threelc::SparsityMultiplier::new`] and every reason code —
/// a worker never applies an out-of-range or NaN multiplier no matter
/// what arrives on the wire.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload, an invalid
/// multiplier, or an unknown reason code.
pub fn decode_policy_update(payload: &[u8]) -> Result<Vec<threelc_policy::Decision>, NetError> {
    if payload.len() < 2 {
        return Err(NetError::Protocol(format!(
            "policy update payload is {} bytes, want at least 2",
            payload.len()
        )));
    }
    let count = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes")) as usize;
    let body = &payload[2..];
    if body.len() != count * 5 {
        return Err(NetError::Protocol(format!(
            "policy update body is {} bytes, {count} decisions need {}",
            body.len(),
            count * 5
        )));
    }
    let mut decisions = Vec::with_capacity(count);
    for rec in body.chunks_exact(5) {
        let raw = f32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let s = threelc::SparsityMultiplier::new(raw)
            .map_err(|e| NetError::Protocol(format!("policy update: {e}")))?;
        let reason = threelc_policy::Reason::from_code(rec[4]).ok_or_else(|| {
            NetError::Protocol(format!("policy update: unknown reason code {}", rec[4]))
        })?;
        decisions.push(threelc_policy::Decision { s, reason });
    }
    Ok(decisions)
}

/// Encodes the `TraceDump` payload: one node's span buffer as JSON.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] if the trace does not serialize.
pub fn encode_trace_dump(trace: &threelc_obs::NodeTrace) -> Result<Vec<u8>, NetError> {
    serde_json::to_string(trace)
        .map(String::into_bytes)
        .map_err(|e| NetError::Protocol(format!("trace dump does not serialize: {e}")))
}

/// Decodes the `TraceDump` payload.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] on a malformed payload.
pub fn decode_trace_dump(payload: &[u8]) -> Result<threelc_obs::NodeTrace, NetError> {
    let json = std::str::from_utf8(payload)
        .map_err(|_| NetError::Protocol("trace dump payload is not UTF-8".into()))?;
    serde_json::from_str(json)
        .map_err(|e| NetError::Protocol(format!("trace dump does not parse: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_bytes_roundtrip_exactly() {
        let t = Tensor::from_vec(vec![0.1, -2.5, f32::MIN_POSITIVE, 0.0], [2, 2]);
        let bytes = tensor_to_bytes(&t);
        let back = bytes_to_tensor(&bytes, t.shape()).expect("roundtrip");
        assert_eq!(back, t);
    }

    #[test]
    fn tensor_bytes_length_checked() {
        let shape = Shape::new(&[3]);
        assert!(bytes_to_tensor(&[0u8; 11], &shape).is_err());
        assert!(bytes_to_tensor(&[0u8; 16], &shape).is_err());
    }

    #[test]
    fn metrics_snapshot_roundtrip() {
        let reg = threelc_obs::Registry::new();
        reg.counter("frames").add(4);
        reg.histogram("seconds").record(0.5);
        let snap = reg.snapshot();
        let bytes = encode_metrics_snapshot(&snap).unwrap();
        let back = decode_metrics_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
        assert!(decode_metrics_snapshot(b"not json").is_err());
        assert!(decode_metrics_snapshot(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn hello_and_push_done_roundtrip() {
        assert_eq!(decode_hello(&encode_hello(513)).unwrap(), 513);
        assert!(decode_hello(&[1, 2, 3]).is_err());
        let (loss, codec, residual, step_seconds) =
            decode_push_done(&encode_push_done(0.75, 1.5, 2.25, 0.125)).unwrap();
        assert_eq!(loss, 0.75);
        assert_eq!(codec, 1.5);
        assert_eq!(residual, 2.25);
        assert_eq!(step_seconds, 0.125);
        assert!(decode_push_done(&[0u8; 11]).is_err());
        assert!(decode_push_done(&[0u8; 16]).is_err());
        assert!(decode_push_done(&[0u8; 21]).is_err());
        assert!(decode_push_done(&[0u8; 29]).is_err());
    }

    #[test]
    fn rejoin_ack_roundtrip() {
        let payload = encode_rejoin_ack(17, "{\"workers\":2}");
        let (step, json) = decode_rejoin_ack(&payload).unwrap();
        assert_eq!(step, 17);
        assert_eq!(json, "{\"workers\":2}");
        // An empty config is structurally valid at this layer.
        let empty = encode_rejoin_ack(0, "");
        let (step, json) = decode_rejoin_ack(&empty).unwrap();
        assert_eq!(step, 0);
        assert_eq!(json, "");
        assert!(decode_rejoin_ack(&[0u8; 7]).is_err());
        let mut bad = encode_rejoin_ack(3, "");
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_rejoin_ack(&bad).is_err());
    }

    #[test]
    fn model_crc32_distinguishes_models() {
        use threelc_learning::{models, DataSpec};
        let spec = DataSpec {
            channels: 1,
            height: 4,
            width: 4,
            classes: 3,
        };
        let a = models::mlp(&spec, &[8], 11);
        let b = models::mlp(&spec, &[8], 11);
        let c = models::mlp(&spec, &[8], 12);
        // Same seed, same bits, same hash; a different seed changes it.
        assert_eq!(model_crc32(&a), model_crc32(&b));
        assert_ne!(model_crc32(&a), model_crc32(&c));
    }

    #[test]
    fn legacy_12_byte_push_done_still_decodes() {
        // A pre-residual worker sends loss + codec seconds only.
        let mut old = Vec::new();
        old.extend_from_slice(&0.5f32.to_le_bytes());
        old.extend_from_slice(&3.0f64.to_le_bytes());
        let (loss, codec, residual, step_seconds) = decode_push_done(&old).unwrap();
        assert_eq!(loss, 0.5);
        assert_eq!(codec, 3.0);
        assert_eq!(residual, 0.0);
        assert_eq!(step_seconds, 0.0);
        // A pre-latency worker adds the residual but not the step time.
        old.extend_from_slice(&2.0f64.to_le_bytes());
        let (_, _, residual, step_seconds) = decode_push_done(&old).unwrap();
        assert_eq!(residual, 2.0);
        assert_eq!(step_seconds, 0.0);
    }

    #[test]
    fn series_dump_roundtrip() {
        use threelc_obs::timeseries::{RunRecorder, WorkerDelta};
        let mut rec = RunRecorder::new(2);
        rec.record_step(
            0,
            &[WorkerDelta {
                worker: 0,
                wire_bytes: 512,
                ratio: 8.0,
                residual_l2: 0.25,
                loss: 1.5,
                multiplier: 1.0,
                rejoins: 0,
                step_seconds: 0.001,
                barrier_wait_seconds: 0.0,
            }],
        );
        let bytes = encode_series_dump(rec.store()).unwrap();
        let back = decode_series_dump(&bytes).unwrap();
        assert_eq!(&back, rec.store());
        assert!(decode_series_dump(b"not json").is_err());
        assert!(decode_series_dump(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn policy_update_roundtrip() {
        use threelc::SparsityMultiplier;
        use threelc_policy::{Decision, Reason};
        let decisions = vec![
            Decision {
                s: SparsityMultiplier::new(1.0).unwrap(),
                reason: Reason::Init,
            },
            Decision {
                s: SparsityMultiplier::new(1.75).unwrap(),
                reason: Reason::RatioLow,
            },
        ];
        let payload = encode_policy_update(&decisions).unwrap();
        assert_eq!(payload.len(), 2 + 2 * 5);
        let back = decode_policy_update(&payload).unwrap();
        assert_eq!(back, decisions);
        // Empty decision lists are valid (a model of zero tensors is not,
        // but the codec does not decide that).
        assert_eq!(
            decode_policy_update(&encode_policy_update(&[]).unwrap()).unwrap(),
            []
        );
    }

    #[test]
    fn policy_update_rejects_counts_beyond_the_u16_field() {
        use threelc::SparsityMultiplier;
        use threelc_policy::{Decision, Reason};
        let d = Decision {
            s: SparsityMultiplier::new(1.5).unwrap(),
            reason: Reason::Hold,
        };
        // Exactly at the field's capacity: encodes and roundtrips.
        let at_cap = vec![d; usize::from(u16::MAX)];
        let payload = encode_policy_update(&at_cap).unwrap();
        assert_eq!(payload.len(), 2 + at_cap.len() * 5);
        assert_eq!(decode_policy_update(&payload).unwrap().len(), at_cap.len());
        // One past it: a typed encode-time error, not a silent `as u16`
        // truncation (which would write count=0 over 65 536 records).
        let over = vec![d; usize::from(u16::MAX) + 1];
        let err = encode_policy_update(&over).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("65536"), "error should name the count: {msg}");
        assert!(msg.contains("65535"), "error should name the cap: {msg}");
    }

    #[test]
    fn policy_update_rejects_bad_wire_data() {
        use threelc::SparsityMultiplier;
        use threelc_policy::{Decision, Reason};
        let good = encode_policy_update(&[Decision {
            s: SparsityMultiplier::new(1.5).unwrap(),
            reason: Reason::Hold,
        }])
        .unwrap();
        // Truncated / length-mismatched payloads.
        assert!(decode_policy_update(&[]).is_err());
        assert!(decode_policy_update(&good[..good.len() - 1]).is_err());
        let mut extra = good.clone();
        extra.push(0);
        assert!(decode_policy_update(&extra).is_err());
        // An out-of-range multiplier is a typed rejection, not an apply.
        let mut bad_s = good.clone();
        bad_s[2..6].copy_from_slice(&2.5f32.to_le_bytes());
        let err = decode_policy_update(&bad_s).unwrap_err();
        assert!(err.to_string().contains("sparsity"), "got: {err}");
        // NaN likewise.
        let mut nan_s = good.clone();
        nan_s[2..6].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(decode_policy_update(&nan_s).is_err());
        // Unknown reason codes are rejected.
        let mut bad_reason = good.clone();
        bad_reason[6] = 99;
        assert!(decode_policy_update(&bad_reason).is_err());
    }

    #[test]
    fn trace_dump_roundtrip() {
        let node = threelc_obs::NodeTrace {
            clock: "worker3".into(),
            spans: vec![threelc_obs::SpanRecord {
                trace: 7,
                span: 1,
                parent: 0,
                name: "network".into(),
                node: "worker3".into(),
                step: 4,
                worker: 3,
                start_ns: 100,
                end_ns: 250,
            }],
            dropped: 2,
        };
        let bytes = encode_trace_dump(&node).unwrap();
        let back = decode_trace_dump(&bytes).unwrap();
        assert_eq!(back, node);
        assert!(decode_trace_dump(b"not json").is_err());
        assert!(decode_trace_dump(&[0xFF, 0xFE]).is_err());
    }
}
