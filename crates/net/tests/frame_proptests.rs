//! Property tests for the frame codec: roundtrips, and robustness against
//! truncation, corruption, and arbitrary garbage (never panic, never
//! over-read, never over-allocate).

use proptest::prelude::*;
use threelc_net::frame::{self, Frame, MsgType, TraceContext, HEADER_LEN};

fn arb_msg() -> impl Strategy<Value = MsgType> {
    (1u8..=14).prop_map(|b| MsgType::from_u8(b).expect("1..=14 are valid"))
}

/// Any trace context, including the absent one (which makes the frame a
/// version-1 frame on the wire).
fn arb_trace() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>()).prop_map(|(trace_id, span_id)| TraceContext { trace_id, span_id })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_msg(),
        any::<u16>(),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..600),
        arb_trace(),
    )
        .prop_map(|(msg, tensor, step, payload, trace)| {
            Frame::new(msg, tensor, step, payload).with_trace(trace)
        })
}

proptest! {
    #[test]
    fn roundtrip_arbitrary_frames(frame in arb_frame()) {
        let encoded = frame.encode();
        prop_assert_eq!(encoded.len(), frame.encoded_len());

        let (decoded, consumed) = Frame::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(consumed, encoded.len());
        prop_assert_eq!(&decoded, &frame);

        // The streaming reader agrees with the slice decoder.
        let streamed = frame::read_frame(&mut encoded.as_slice()).expect("stream decodes");
        prop_assert_eq!(&streamed, &frame);
    }

    #[test]
    fn trailing_bytes_are_not_consumed(frame in arb_frame(), extra in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut wire = frame.encode();
        let frame_len = wire.len();
        wire.extend_from_slice(&extra);
        let (decoded, consumed) = Frame::decode(&wire).expect("prefix decodes");
        prop_assert_eq!(consumed, frame_len);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn every_truncation_errors(frame in arb_frame(), cut in any::<u16>()) {
        let encoded = frame.encode();
        let cut = (cut as usize) % encoded.len(); // strictly shorter
        prop_assert!(Frame::decode(&encoded[..cut]).is_err());
        prop_assert!(frame::read_frame(&mut &encoded[..cut]).is_err());
    }

    #[test]
    fn every_single_byte_corruption_errors(frame in arb_frame(), pos in any::<u32>(), flip in 1u8..=255) {
        let mut wire = frame.encode();
        let pos = (pos as usize) % wire.len();
        wire[pos] ^= flip;
        // Any change — header or payload — must be rejected, not
        // reinterpreted: the CRC covers both.
        prop_assert!(Frame::decode(&wire).is_err());
    }

    #[test]
    fn garbage_never_panics_and_never_over_reads(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok((frame, consumed)) = Frame::decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
            prop_assert_eq!(consumed, frame.encoded_len());
            prop_assert!(consumed >= HEADER_LEN + frame.payload.len());
        }
        let _ = frame::read_frame(&mut bytes.as_slice());
    }

    #[test]
    fn trace_dump_payloads_roundtrip(
        clock_i in 0usize..4,
        dropped in any::<u64>(),
        spans in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), 0usize..8, any::<u64>(), -1i64..64, any::<u64>(), any::<u64>()),
            0..20,
        ),
    ) {
        let names = ["quantize", "encode", "serialize", "network", "pull", "recv_push", "send_pull", "barrier"];
        let clock: String = ["server", "worker0", "worker1", "sim"][clock_i].into();
        let node = threelc_obs::NodeTrace {
            clock: clock.clone(),
            spans: spans
                .into_iter()
                .map(|(trace, span, parent, name, step, worker, start, dur)| threelc_obs::SpanRecord {
                    trace,
                    span,
                    parent,
                    name: names[name].into(),
                    node: clock.clone(),
                    step,
                    worker,
                    start_ns: start,
                    end_ns: start.saturating_add(dur % 1_000_000),
                })
                .collect(),
            dropped,
        };
        let payload = threelc_net::protocol::encode_trace_dump(&node).expect("serializes");
        let back = threelc_net::protocol::decode_trace_dump(&payload).expect("parses");
        prop_assert_eq!(back, node);
    }

    #[test]
    fn hostile_length_fields_never_allocate(claimed_len in any::<u32>(), msg in arb_msg()) {
        // Forge a header claiming an arbitrary payload length with a valid
        // CRC but no payload bytes behind it. Decoding must error without
        // trying to allocate or read `claimed_len` bytes.
        let real = Frame::new(msg, 3, 9, vec![]);
        let mut wire = real.encode();
        wire[16..20].copy_from_slice(&claimed_len.to_le_bytes());
        if claimed_len != 0 {
            prop_assert!(Frame::decode(&wire).is_err());
            prop_assert!(frame::read_frame(&mut wire.as_slice()).is_err());
        }
    }
}
