//! Shutdown-handshake edge cases, driven by a hand-rolled server against
//! the real `run_worker`: the worker must answer any number of trace-dump
//! requests (with an empty buffer when tracing is off), and answer an
//! unexpected message with a protocol error — never a hang.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;
use threelc_baselines::SchemeKind;
use threelc_distsim::ExperimentConfig;
use threelc_net::frame::{read_frame, write_frame};
use threelc_net::protocol::decode_trace_dump;
use threelc_net::{run_worker, MsgType, NetError, WorkerOptions};

/// A zero-step run: the worker handshakes, skips the BSP loop entirely,
/// and goes straight to the shutdown phase — the phase under test.
fn shutdown_only_config() -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::Float32,
        workers: 1,
        batch_per_worker: 4,
        total_steps: 0,
        model_width: 8,
        model_blocks: 1,
        eval_every: 0,
        seed: 9,
        ..Default::default()
    }
}

/// Accepts one worker and completes the Hello/HelloAck handshake,
/// returning the connected stream.
fn accept_worker(listener: &TcpListener, config: &ExperimentConfig) -> TcpStream {
    let (stream, _) = listener.accept().expect("accept worker");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let hello = read_frame(&mut &stream).expect("hello frame");
    assert_eq!(hello.msg, MsgType::Hello);
    let json = serde_json::to_string(config).expect("config json");
    write_frame(&mut &stream, MsgType::HelloAck, 0, 0, json.as_bytes()).expect("hello ack");
    stream
}

/// Spawns the worker client against `addr` with no retry slack.
fn spawn_worker(addr: String) -> thread::JoinHandle<Result<threelc_net::WorkerOutcome, NetError>> {
    thread::spawn(move || {
        let mut opts = WorkerOptions::new(addr, 0);
        opts.io_timeout = Duration::from_secs(10);
        run_worker(&opts)
    })
}

#[test]
fn worker_answers_repeated_trace_dump_requests() {
    let config = shutdown_only_config();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let worker = spawn_worker(addr);
    let stream = accept_worker(&listener, &config);

    // The shutdown phase may legitimately ask for the span buffer more
    // than once (e.g. a retried collection). Every request gets a reply.
    for round in 0..2 {
        write_frame(&mut &stream, MsgType::TraceDumpRequest, 0, 0, &[]).expect("request");
        let dump = read_frame(&mut &stream).expect("dump frame");
        assert_eq!(dump.msg, MsgType::TraceDump, "round {round}");
        let node = decode_trace_dump(&dump.payload).expect("dump payload");
        // Tracing is off in this process: the reply is a well-formed,
        // empty buffer — not an error, not silence.
        assert_eq!(node.clock, "worker0", "round {round}");
        assert!(node.spans.is_empty(), "round {round}");
        assert_eq!(node.dropped, 0, "round {round}");
    }
    write_frame(&mut &stream, MsgType::Shutdown, 0, 0, &[]).expect("shutdown");
    let ack = read_frame(&mut &stream).expect("shutdown ack");
    assert_eq!(ack.msg, MsgType::ShutdownAck);
    let outcome = worker
        .join()
        .expect("worker thread")
        .expect("zero-step run completes");
    assert_eq!(outcome.steps, 0);
    assert_eq!(outcome.rejoins, 0);
}

#[test]
fn unexpected_message_during_shutdown_is_a_protocol_error() {
    let config = shutdown_only_config();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let worker = spawn_worker(addr);
    let stream = accept_worker(&listener, &config);

    // A push-phase message where Shutdown/TraceDumpRequest belongs: the
    // worker must reject it by name instead of hanging or acking.
    write_frame(&mut &stream, MsgType::PushTensor, 0, 0, &[1, 2, 3]).expect("bogus frame");
    let result = worker.join().expect("worker thread");
    match result {
        Err(NetError::Protocol(msg)) => {
            assert!(
                msg.contains("Shutdown"),
                "error should name the expected message: {msg}"
            );
        }
        Err(other) => panic!("expected a protocol error, got: {other}"),
        Ok(_) => panic!("worker accepted a push frame during shutdown"),
    }
}

#[test]
fn tracing_enabled_worker_drains_real_spans_once() {
    // With tracing on and a zero-step run the buffer is still empty of
    // step spans, but the exchange must carry the worker's clock label and
    // remain repeatable: a second request after the drain answers with an
    // empty buffer rather than failing.
    threelc_obs::set_trace_enabled(true);
    let config = shutdown_only_config();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let worker = spawn_worker(addr);
    let stream = accept_worker(&listener, &config);

    write_frame(&mut &stream, MsgType::TraceDumpRequest, 0, 0, &[]).expect("request");
    let first = read_frame(&mut &stream).expect("dump frame");
    assert_eq!(first.msg, MsgType::TraceDump);
    let node = decode_trace_dump(&first.payload).expect("dump payload");
    assert_eq!(node.clock, "worker0");

    // The drain emptied the buffer; a retry is still answered.
    write_frame(&mut &stream, MsgType::TraceDumpRequest, 0, 0, &[]).expect("request");
    let second = read_frame(&mut &stream).expect("dump frame");
    let node = decode_trace_dump(&second.payload).expect("dump payload");
    assert!(node.spans.is_empty());

    write_frame(&mut &stream, MsgType::Shutdown, 0, 0, &[]).expect("shutdown");
    let ack = read_frame(&mut &stream).expect("shutdown ack");
    assert_eq!(ack.msg, MsgType::ShutdownAck);
    worker
        .join()
        .expect("worker thread")
        .expect("zero-step run completes");
    threelc_obs::set_trace_enabled(false);
}
