//! Chaos integration tests: runs with deterministically injected
//! transport faults must converge to the *exact* final model of an
//! undisturbed in-process simulation — the whole point of the rejoin
//! protocol's replay-based resync.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;
use threelc_baselines::SchemeKind;
use threelc_distsim::{Cluster, ExperimentConfig};
use threelc_net::{
    model_crc32, run_worker, serve, FaultPlan, NetReport, ServeOptions, WorkerOptions,
    WorkerOutcome,
};

fn chaos_config(total_steps: u64) -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.0),
        workers: 2,
        batch_per_worker: 8,
        total_steps,
        model_width: 16,
        model_blocks: 1,
        eval_every: 0,
        seed: 5,
        ..Default::default()
    }
}

/// Serves `config` on an ephemeral loopback port and runs one client per
/// worker, arming worker `w` with `faults[w]`. Returns the report and the
/// outcomes in worker-id order.
fn run_faulted(
    config: ExperimentConfig,
    serve_opts: ServeOptions,
    faults: &[Option<FaultPlan>],
    threads: usize,
) -> (
    Result<NetReport, threelc_net::NetError>,
    Vec<Result<WorkerOutcome, threelc_net::NetError>>,
) {
    assert_eq!(faults.len(), config.workers);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let worker_max_rejoins = serve_opts.max_rejoins;
    let server = thread::spawn(move || serve(&listener, &config, &serve_opts));
    let clients: Vec<_> = (0..config.workers as u16)
        .map(|w| {
            let addr = addr.clone();
            let fault = faults[usize::from(w)];
            thread::spawn(move || {
                let mut opts = WorkerOptions::new(addr, w);
                opts.threads = threads;
                opts.fault = fault;
                opts.max_rejoins = worker_max_rejoins;
                run_worker(&opts)
            })
        })
        .collect();
    let outcomes = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    (server.join().expect("server thread"), outcomes)
}

/// The simulator's ground truth for `config`: the global model fingerprint
/// and each worker's replica snapshot.
fn simulate(config: &ExperimentConfig) -> (u32, Vec<Vec<threelc_tensor::Tensor>>) {
    let mut cluster = Cluster::new(*config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    let replicas = (0..config.workers)
        .map(|w| cluster.worker_model(w).snapshot())
        .collect();
    (model_crc32(cluster.global_model()), replicas)
}

/// Asserts the faulted run produced exactly the simulator's models and the
/// expected disconnect/rejoin accounting.
fn assert_bit_identical(
    config: &ExperimentConfig,
    report: &NetReport,
    outcomes: &[Result<WorkerOutcome, threelc_net::NetError>],
    faulted_worker: usize,
) {
    let (sim_crc, sim_replicas) = simulate(config);
    assert_eq!(
        report.final_model_crc32, sim_crc,
        "faulted run diverged from the simulator's global model"
    );
    assert_eq!(report.faults.disconnects, 1, "{:?}", report.faults.events);
    assert_eq!(report.faults.rejoins, 1, "{:?}", report.faults.events);
    for (w, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().expect("worker survived the fault");
        assert_eq!(outcome.steps, config.total_steps);
        assert_eq!(
            outcome.rejoins,
            u32::from(w == faulted_worker),
            "worker {w} rejoin count"
        );
        assert_eq!(
            outcome.model.snapshot(),
            sim_replicas[w],
            "worker {w} replica diverged after the fault"
        );
    }
    // The faulted worker's connection report folds every session together.
    assert_eq!(report.connections.len(), config.workers);
    assert!(report.connections[faulted_worker].counters.bytes_in > 0);
}

#[test]
fn disconnect_fault_rejoins_and_matches_simulator() {
    let config = chaos_config(8);
    let fault = FaultPlan::parse("disconnect@3").expect("spec");
    let (report, outcomes) = run_faulted(config, ServeOptions::default(), &[Some(fault), None], 1);
    let report = report.expect("server survived the fault");
    assert_bit_identical(&config, &report, &outcomes, 0);
}

#[test]
fn compressed_aggregation_survives_disconnect_and_matches_simulator() {
    // Rejoin replay must land on the same model under `--aggregate
    // compressed` too: scale-grouped integer-lane sums are a different
    // float reduction than the seed path, so this pins that the mode is
    // deterministic through a disconnect + replay, not just in a clean
    // run. (The kill@2 + --rejoin variant needs a real process exit and
    // lives in ci.sh's chaos smoke.)
    let config = ExperimentConfig {
        aggregate: threelc_distsim::AggregateMode::Compressed,
        ..chaos_config(8)
    };
    let fault = FaultPlan::parse("disconnect@3").expect("spec");
    let (report, outcomes) = run_faulted(config, ServeOptions::default(), &[Some(fault), None], 1);
    let report = report.expect("server survived the fault");
    assert_eq!(report.aggregate_mode, "compressed");
    assert_bit_identical(&config, &report, &outcomes, 0);
    // The disconnect and the rejoin both happened at the armed step: the
    // coordinator parked that barrier instead of aborting.
    for event in &report.faults.events {
        assert_eq!(event.step, 3, "{event:?}");
        assert_eq!(event.worker, 0, "{event:?}");
    }
}

#[test]
fn disconnect_fault_matches_simulator_with_four_codec_threads() {
    // Same fault, 4 codec threads on every node: replay and resync are
    // thread-count-invariant, like everything else in the stack.
    let config = chaos_config(8);
    let fault = FaultPlan::parse("disconnect@3").expect("spec");
    let serve_opts = ServeOptions {
        threads: 4,
        ..ServeOptions::default()
    };
    let (report, outcomes) = run_faulted(config, serve_opts, &[Some(fault), None], 4);
    let report = report.expect("server survived the fault");
    assert_bit_identical(&config, &report, &outcomes, 0);
}

#[test]
fn drop_after_push_fault_rejoins_and_matches_simulator() {
    // The nastier window: the fault fires after the push batch is flushed,
    // so the server may have already accepted the dying connection's push
    // for that step. The re-pushed batch must be byte-identical, and the
    // final model must still match the simulator.
    let config = chaos_config(8);
    let fault = FaultPlan::parse("drop-after-push@2").expect("spec");
    let (report, outcomes) = run_faulted(config, ServeOptions::default(), &[Some(fault), None], 1);
    let report = report.expect("server survived the fault");
    assert_bit_identical(&config, &report, &outcomes, 0);
}

#[test]
fn crc_corruption_fault_rejoins_and_matches_simulator() {
    // A corrupted push frame: the server's CRC check rejects the frame and
    // drops the connection; the worker rejoins and re-pushes clean bytes.
    let config = chaos_config(8);
    let fault = FaultPlan::parse("crc@2:7").expect("spec");
    let (report, outcomes) = run_faulted(config, ServeOptions::default(), &[None, Some(fault)], 1);
    let report = report.expect("server survived the fault");
    assert_bit_identical(&config, &report, &outcomes, 1);
}

#[test]
fn adaptive_policy_survives_disconnect_and_rejoin() {
    // The policy acceptance gate: a feedback run that loses a worker
    // mid-run must replay the exact decision sequence during resync (the
    // PolicyUpdate frames ride in the recorded pull batches) and converge
    // to the undisturbed simulator's models, decisions included.
    let mut config = chaos_config(8);
    config.policy =
        threelc_distsim::PolicySpec::parse("feedback:ratio=10000,start=1.2,gain=0.05,hold=1")
            .expect("spec");
    let fault = FaultPlan::parse("disconnect@3").expect("spec");
    let (report, outcomes) = run_faulted(config, ServeOptions::default(), &[Some(fault), None], 1);
    let report = report.expect("server survived the fault");
    assert_bit_identical(&config, &report, &outcomes, 0);

    // The decision sequence matches the undisturbed simulated run
    // bit for bit, and it is genuinely non-constant.
    let simulated = threelc_distsim::run_experiment(&config);
    assert!(!report.result.trace.policy.records.is_empty());
    assert!(!report.result.trace.policy.is_constant());
    assert_eq!(report.result.trace.policy, simulated.trace.policy);
}

#[test]
fn fail_stop_mode_aborts_on_the_same_fault() {
    // The inverted gate: with the rejoin budget at zero the very same
    // injected fault must abort the run — proving the chaos tests would
    // catch a silently non-tolerant server.
    let config = chaos_config(8);
    let fault = FaultPlan::parse("disconnect@3").expect("spec");
    let serve_opts = ServeOptions {
        max_rejoins: 0,
        step_timeout: Duration::from_secs(30),
        ..ServeOptions::default()
    };
    let (report, outcomes) = run_faulted(config, serve_opts, &[Some(fault), None], 1);
    assert!(report.is_err(), "fail-stop server must abort");
    assert!(
        outcomes[0].is_err(),
        "faulted worker has no rejoin budget and must fail"
    );
}

#[test]
fn fault_injection_is_fully_deterministic() {
    // Two identical faulted runs: same fault sequence (step, worker,
    // kind), same final model bits. Event detail strings are exempt —
    // which side detects a disconnect first is a scheduling race; what
    // happened and what it converged to are not.
    let config = chaos_config(6);
    let fault = FaultPlan::parse("crc@2:9").expect("spec");
    let run = || {
        let (report, outcomes) =
            run_faulted(config, ServeOptions::default(), &[Some(fault), None], 1);
        let report = report.expect("server survived the fault");
        let models: Vec<Vec<threelc_tensor::Tensor>> = outcomes
            .into_iter()
            .map(|o| o.expect("worker survived").model.snapshot())
            .collect();
        (report, models)
    };
    let (report_a, models_a) = run();
    let (report_b, models_b) = run();
    assert_eq!(report_a.final_model_crc32, report_b.final_model_crc32);
    assert_eq!(report_a.result.final_eval, report_b.result.final_eval);
    let key = |r: &NetReport| -> Vec<(u64, usize, String)> {
        r.faults
            .events
            .iter()
            .map(|e| (e.step, e.worker, e.kind.clone()))
            .collect()
    };
    assert_eq!(key(&report_a), key(&report_b));
    assert_eq!(models_a, models_b);
    // And the faulted run still equals the undisturbed simulation.
    let (sim_crc, _) = simulate(&config);
    assert_eq!(report_a.final_model_crc32, sim_crc);
}
