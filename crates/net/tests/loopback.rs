//! Loopback integration tests: a real server and real worker clients,
//! all in one process over 127.0.0.1, checked bit-for-bit against the
//! in-process simulator.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;
use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, Cluster, ExperimentConfig};
use threelc_net::frame::{read_frame, write_frame};
use threelc_net::protocol::encode_hello;
use threelc_net::{
    run_worker, scrape_metrics, scrape_series, serve, MsgType, ServeOptions, WorkerOptions,
};

fn loopback_config(scheme: SchemeKind) -> ExperimentConfig {
    ExperimentConfig {
        scheme,
        workers: 2,
        batch_per_worker: 8,
        total_steps: 20,
        model_width: 16,
        model_blocks: 1,
        eval_every: 7,
        seed: 5,
        ..Default::default()
    }
}

/// Binds an ephemeral port, serves `config` on it, and runs one client
/// thread per worker. Returns the server's report and the workers'
/// outcomes in worker-id order.
fn run_loopback(
    config: ExperimentConfig,
) -> (threelc_net::NetReport, Vec<threelc_net::WorkerOutcome>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || serve(&listener, &config, &ServeOptions::default()));
    let clients: Vec<_> = (0..config.workers as u16)
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&WorkerOptions::new(addr, w)))
        })
        .collect();
    let outcomes = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("worker run"))
        .collect();
    let report = server.join().expect("server thread").expect("serve run");
    (report, outcomes)
}

#[test]
fn loopback_run_matches_simulator_bit_for_bit() {
    let config = loopback_config(SchemeKind::three_lc(1.0));
    let (report, outcomes) = run_loopback(config);
    let simulated = run_experiment(&config);

    // The training outcome is bit-identical to the simulator's.
    assert_eq!(report.result.config, simulated.config);
    assert_eq!(report.result.scheme_label, simulated.scheme_label);
    assert_eq!(report.result.model_params, simulated.model_params);
    assert_eq!(report.result.final_eval, simulated.final_eval);
    assert_eq!(report.result.trace.evals, simulated.trace.evals);

    // Every deterministic per-step field matches; only measured codec
    // seconds may differ between a simulated and a networked run.
    assert_eq!(report.result.trace.steps.len(), simulated.trace.steps.len());
    for (net, sim) in report.result.trace.steps.iter().zip(&simulated.trace.steps) {
        assert_eq!(net.step, sim.step);
        assert_eq!(net.lr.to_bits(), sim.lr.to_bits(), "step {}", sim.step);
        assert_eq!(net.loss.to_bits(), sim.loss.to_bits(), "step {}", sim.step);
        assert_eq!(net.push_bytes, sim.push_bytes, "step {}", sim.step);
        assert_eq!(net.pull_bytes, sim.pull_bytes, "step {}", sim.step);
        assert_eq!(net.raw_bytes, sim.raw_bytes, "step {}", sim.step);
        assert_eq!(net.compressible_values, sim.compressible_values);
        assert_eq!(net.critical_bytes, sim.critical_bytes, "step {}", sim.step);
        assert_eq!(net.compute_multiplier, sim.compute_multiplier);
        assert_eq!(net.pull_overlapped, sim.pull_overlapped);
    }

    // An undisturbed run reports a clean fault section, and the model
    // fingerprint matches what `threelc simulate` would print.
    assert_eq!(report.faults, threelc_net::FaultsReport::default());

    // Worker replicas end up bit-identical to the simulator's replicas.
    let mut cluster = Cluster::new(config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    assert_eq!(
        report.final_model_crc32,
        threelc_net::model_crc32(cluster.global_model()),
        "final-model fingerprint diverged from the simulator"
    );
    for (w, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.steps, config.total_steps);
        assert_eq!(
            outcome.model.snapshot(),
            cluster.worker_model(w).snapshot(),
            "worker {w} replica diverged from the simulator"
        );
    }

    // Each side's transport counters mirror the other's.
    assert_eq!(report.connections.len(), config.workers);
    for (w, conn) in report.connections.iter().enumerate() {
        assert_eq!(conn.worker, w);
        let outcome = &outcomes[w];
        assert_eq!(conn.counters.bytes_in, outcome.counters.bytes_out);
        assert_eq!(conn.counters.bytes_out, outcome.counters.bytes_in);
        assert_eq!(conn.counters.frames_in, outcome.counters.frames_out);
        assert_eq!(conn.counters.frames_out, outcome.counters.frames_in);
        assert_eq!(outcome.counters.retries, 0);
        assert_eq!(outcome.counters.backoff_seconds, 0.0);
        assert!(conn.counters.bytes_in > 0);
    }

    // Conservation across the whole cluster: every byte the workers sent
    // arrived at the server, and vice versa.
    let server_in: u64 = report.connections.iter().map(|c| c.counters.bytes_in).sum();
    let workers_out: u64 = outcomes.iter().map(|o| o.counters.bytes_out).sum();
    assert_eq!(server_in, workers_out);
    let server_out: u64 = report
        .connections
        .iter()
        .map(|c| c.counters.bytes_out)
        .sum();
    let workers_in: u64 = outcomes.iter().map(|o| o.counters.bytes_in).sum();
    assert_eq!(server_out, workers_in);

    // The run also populated the global metrics registry with telemetry
    // from every layer: the compressor, both transport roles, and the
    // trace aggregation. (Presence checks only — the registry is shared
    // with other tests in this process.)
    let snap = threelc_obs::global().snapshot();
    for name in [
        "threelc.compress.ratio",
        "threelc.compress.quartic_seconds",
        "net.server.codec_seconds",
        "net.server.socket_seconds",
        "net.worker.codec_seconds",
        "net.worker.socket_seconds",
        "net.server.step_seconds",
        "net.worker.step_seconds",
        "net.server.frame_seconds",
        "trace.push_bytes",
    ] {
        let hist = snap.histogram(name).unwrap_or_else(|| {
            panic!("histogram {name:?} missing after a loopback run");
        });
        assert!(hist.count > 0, "histogram {name:?} recorded nothing");
    }
    assert!(snap.counter("net.server.bytes_in").expect("counter") > 0);
    assert!(snap.counter("net.worker.bytes_out").expect("counter") > 0);
}

#[test]
fn adaptive_policy_loopback_matches_simulator_bit_for_bit() {
    // A feedback policy chasing an unreachable ratio target: the
    // multiplier moves every step, the server broadcasts each decision
    // with the pull batch, and the networked run must still be
    // bit-identical to `threelc simulate` — decisions included.
    let mut config = ExperimentConfig {
        total_steps: 10,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    config.policy =
        threelc_distsim::PolicySpec::parse("feedback:ratio=10000,start=1.2,gain=0.05,hold=1")
            .expect("spec");
    let (report, outcomes) = run_loopback(config);
    let simulated = run_experiment(&config);

    // The decision sequence is non-constant (the policy actually adapted)
    // and the networked trace carries the identical records.
    assert!(!report.result.trace.policy.records.is_empty());
    assert!(!report.result.trace.policy.is_constant());
    assert_eq!(report.result.trace.policy, simulated.trace.policy);

    // Training outcome and per-step accounting match bit for bit; the
    // policy frames deliberately stay out of the step records.
    assert_eq!(report.result.final_eval, simulated.final_eval);
    for (net, sim) in report.result.trace.steps.iter().zip(&simulated.trace.steps) {
        assert_eq!(net.loss.to_bits(), sim.loss.to_bits(), "step {}", sim.step);
        assert_eq!(net.push_bytes, sim.push_bytes, "step {}", sim.step);
        assert_eq!(net.pull_bytes, sim.pull_bytes, "step {}", sim.step);
    }

    // Every worker replica ends bit-identical to the simulator's.
    let mut cluster = Cluster::new(config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    assert_eq!(
        report.final_model_crc32,
        threelc_net::model_crc32(cluster.global_model())
    );
    for (w, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.model.snapshot(),
            cluster.worker_model(w).snapshot(),
            "worker {w} replica diverged under the adaptive policy"
        );
    }
}

#[test]
fn sharded_loopback_matches_simulator_bit_for_bit() {
    // Server with sharded aggregation (2 shards) and chunk-parallel codec
    // workers on both roles: the trained model must still be bit-identical
    // to the (serial) in-process simulator.
    let config = ExperimentConfig {
        total_steps: 6,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let opts = ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    };
    let server = thread::spawn(move || serve(&listener, &config, &opts));
    let clients: Vec<_> = (0..config.workers as u16)
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut wopts = WorkerOptions::new(addr, w);
                wopts.threads = 2;
                run_worker(&wopts)
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("worker run"))
        .collect();
    let report = server.join().expect("server thread").expect("serve run");

    let simulated = run_experiment(&config);
    assert_eq!(report.result.final_eval, simulated.final_eval);
    for (net, sim) in report.result.trace.steps.iter().zip(&simulated.trace.steps) {
        assert_eq!(net.loss.to_bits(), sim.loss.to_bits(), "step {}", sim.step);
        assert_eq!(net.push_bytes, sim.push_bytes, "step {}", sim.step);
        assert_eq!(net.pull_bytes, sim.pull_bytes, "step {}", sim.step);
    }
    let mut cluster = Cluster::new(config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    for (w, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.model.snapshot(),
            cluster.worker_model(w).snapshot(),
            "worker {w} replica diverged from the serial simulator"
        );
    }
}

#[test]
fn compressed_aggregation_loopback_matches_simulator_bit_for_bit() {
    // `--aggregate compressed` changes the server's float math (scale
    // groups, integer symbol lanes), so its model differs from the f32
    // path — but serve and simulate must still agree bit for bit, serial
    // and sharded alike. The mode arrives via the ServeOptions override
    // here, proving the effective config (not the caller's) is what the
    // run trains, reports, and broadcasts.
    let base = ExperimentConfig {
        total_steps: 8,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    let effective = ExperimentConfig {
        aggregate: threelc_distsim::AggregateMode::Compressed,
        ..base
    };
    for threads in [1usize, 2] {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let opts = ServeOptions {
            threads,
            aggregate: Some(threelc_distsim::AggregateMode::Compressed),
            ..ServeOptions::default()
        };
        let server = thread::spawn(move || serve(&listener, &base, &opts));
        let clients: Vec<_> = (0..base.workers as u16)
            .map(|w| {
                let addr = addr.clone();
                thread::spawn(move || run_worker(&WorkerOptions::new(addr, w)))
            })
            .collect();
        let outcomes: Vec<_> = clients
            .into_iter()
            .map(|c| c.join().expect("client thread").expect("worker run"))
            .collect();
        let report = server.join().expect("server thread").expect("serve run");

        assert_eq!(report.aggregate_mode, "compressed", "threads={threads}");
        assert_eq!(report.result.config, effective, "threads={threads}");
        let mut cluster = Cluster::new(effective);
        for _ in 0..effective.total_steps {
            cluster.step();
        }
        assert_eq!(
            report.final_model_crc32,
            threelc_net::model_crc32(cluster.global_model()),
            "threads={threads}: compressed-mode serve diverged from simulate"
        );
        for (w, outcome) in outcomes.iter().enumerate() {
            assert_eq!(
                outcome.model.snapshot(),
                cluster.worker_model(w).snapshot(),
                "threads={threads}: worker {w} replica diverged"
            );
        }
        // Same traffic accounting as any mode: aggregation happens after
        // the bytes are counted.
        let simulated = run_experiment(&effective);
        assert_eq!(report.result.final_eval, simulated.final_eval);
        for (net, sim) in report.result.trace.steps.iter().zip(&simulated.trace.steps) {
            assert_eq!(net.loss.to_bits(), sim.loss.to_bits(), "step {}", sim.step);
            assert_eq!(net.push_bytes, sim.push_bytes, "step {}", sim.step);
            assert_eq!(net.pull_bytes, sim.pull_bytes, "step {}", sim.step);
        }
    }
}

#[test]
fn loopback_uncompressed_scheme_also_matches() {
    let config = ExperimentConfig {
        total_steps: 6,
        eval_every: 0,
        ..loopback_config(SchemeKind::Float32)
    };
    let (report, outcomes) = run_loopback(config);
    let simulated = run_experiment(&config);
    assert_eq!(report.result.final_eval, simulated.final_eval);
    let last = report.result.trace.steps.last().expect("steps recorded");
    let sim_last = simulated.trace.steps.last().expect("steps recorded");
    // Float32 is itself a (1:1) compression scheme: big tensors go through
    // its wire format, only below-threshold tensors travel raw.
    assert_eq!(last.push_bytes, sim_last.push_bytes);
    assert_eq!(last.raw_bytes, sim_last.raw_bytes);
    assert!(last.raw_bytes > 0);
    assert_eq!(outcomes.len(), config.workers);
}

#[test]
fn traced_loopback_produces_a_complete_cross_node_timeline() {
    // THREELC_TRACE=1 equivalent: enable span recording for this run.
    threelc_obs::set_trace_enabled(true);
    let config = ExperimentConfig {
        total_steps: 4,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    let (report, _outcomes) = run_loopback(config);
    threelc_obs::set_trace_enabled(false);

    // One span buffer per node: the server's, then each worker's
    // (collected over the wire via TraceDumpRequest at shutdown).
    assert_eq!(report.node_traces.len(), 1 + config.workers);
    assert_eq!(report.node_traces[0].clock, "server");
    assert_eq!(report.node_traces.iter().map(|n| n.dropped).sum::<u64>(), 0);

    // The merged timeline covers every step with all nine phases
    // (barrier-wait is synthesized by the merge from the server-side
    // barrier endpoints).
    let timeline = threelc_obs::MergedTimeline::build(&report.node_traces);
    let steps = timeline.steps();
    assert_eq!(steps.len(), config.total_steps as usize);
    for &step in &steps {
        for phase in threelc_obs::PHASES {
            assert!(
                timeline.phase_seconds(step, phase) > 0.0,
                "step {step} is missing phase {phase:?}"
            );
        }
    }

    // Worker-side phases appear in every worker's lane, server-side
    // phases in the server's, for every step.
    for &step in &steps {
        for w in 0..config.workers {
            let lane = format!("worker{w}");
            for phase in ["quantize", "encode", "serialize", "network", "pull"] {
                assert!(
                    timeline
                        .spans
                        .iter()
                        .any(|s| s.node == lane && s.name == phase && s.step == step),
                    "step {step}: lane {lane} is missing {phase:?}"
                );
            }
        }
        for phase in ["server-decode", "aggregate", "re-encode"] {
            assert!(
                timeline
                    .spans
                    .iter()
                    .any(|s| s.node == "server" && s.name == phase && s.step == step),
                "step {step}: server lane is missing {phase:?}"
            );
        }
    }

    // Cross-node parenting: the server's recv_push spans point at worker
    // spans carried by the wire's trace context.
    let worker_ids: std::collections::HashSet<u64> = timeline
        .spans
        .iter()
        .filter(|s| s.node.starts_with("worker"))
        .map(|s| s.span)
        .collect();
    let linked = timeline
        .spans
        .iter()
        .filter(|s| s.name == "recv_push")
        .filter(|s| worker_ids.contains(&s.parent))
        .count();
    assert!(
        linked > 0,
        "no recv_push span is parented onto a worker span"
    );

    // All nodes share one process here, so every estimated clock offset
    // must be tiny (well under one barrier round-trip of slack).
    assert_eq!(timeline.offsets.len(), config.workers);
    for off in &timeline.offsets {
        assert!(off.samples > 0, "{}: no barrier samples", off.clock);
    }

    // The residual norm crossed the wire into the step records.
    assert!(report
        .result
        .trace
        .steps
        .iter()
        .all(|s| s.residual_l2 > 0.0));

    // The Chrome export names every phase.
    let chrome = timeline.chrome_json();
    for phase in threelc_obs::PHASES {
        assert!(
            chrome.contains(&format!("\"name\":\"{phase}\"")),
            "chrome trace is missing {phase:?} events"
        );
    }

    // A healthy loopback run must not trip the watchdog on any wire
    // phase. The worker-local `compute` phase is exempt: debug-build
    // step-0 warm-up on a loaded host can genuinely exceed 4x the median
    // (a true straggler by the definition, just not a codec bug).
    let unexpected: Vec<_> = report
        .anomalies
        .iter()
        .filter(|a| a.phase != "compute")
        .collect();
    assert!(
        unexpected.is_empty(),
        "unexpected anomalies: {unexpected:?}"
    );
}

#[test]
fn worker_retry_budget_is_bounded() {
    // Grab an ephemeral port, then close it: connections get refused.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        listener.local_addr().expect("local addr").to_string()
    };
    let opts = WorkerOptions {
        max_retries: 2,
        initial_backoff: Duration::from_millis(1),
        connect_timeout: Duration::from_millis(200),
        ..WorkerOptions::new(dead_addr, 0)
    };
    assert!(run_worker(&opts).is_err());
}

#[test]
fn server_rejects_a_garbage_hello() {
    let config = ExperimentConfig {
        workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let opts = ServeOptions {
        io_timeout: Duration::from_secs(2),
        step_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    };
    let server = thread::spawn(move || serve(&listener, &config, &opts));
    let mut stream = TcpStream::connect(addr).expect("connect");
    use std::io::Write as _;
    stream.write_all(&[0xAB; 64]).expect("write garbage");
    let result = server.join().expect("server thread");
    assert!(result.is_err(), "garbage magic must abort the handshake");
}

#[test]
fn metrics_scrape_during_handshake_does_not_consume_a_worker_slot() {
    // Two worker slots: connect one worker, scrape while the server is
    // provably parked in the accept loop waiting for the second, then let
    // the second worker join. The run must still complete bit-for-bit.
    let config = ExperimentConfig {
        total_steps: 4,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || serve(&listener, &config, &ServeOptions::default()));

    let addr0 = addr.clone();
    let w0 = thread::spawn(move || run_worker(&WorkerOptions::new(addr0, 0)));
    let snap = scrape_metrics(&addr, Duration::from_secs(5)).expect("handshake-phase scrape");
    // The snapshot is a well-formed registry image (content depends on
    // what else has run in this process, so no exact-value assertions).
    assert!(!snap.render_text().is_empty());

    let addr1 = addr.clone();
    let w1 = thread::spawn(move || run_worker(&WorkerOptions::new(addr1, 1)));
    w0.join().expect("worker 0 thread").expect("worker 0 run");
    w1.join().expect("worker 1 thread").expect("worker 1 run");
    let report = server.join().expect("server thread").expect("serve run");
    assert_eq!(report.connections.len(), 2);
}

#[test]
fn metrics_scrape_works_mid_training() {
    // One worker slot, driven by hand: after the Hello/HelloAck handshake
    // the server enters the training phase and blocks at the push barrier,
    // so the background scraper thread is deterministically the only thing
    // answering new connections.
    let config = ExperimentConfig {
        workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let opts = ServeOptions {
        io_timeout: Duration::from_secs(5),
        step_timeout: Duration::from_secs(5),
        // Fail-stop mode: the abandoned run below must abort promptly
        // instead of parking the barrier for a rejoin.
        max_rejoins: 0,
        ..ServeOptions::default()
    };
    let server = thread::spawn(move || serve(&listener, &config, &opts));

    let stream = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut &stream, MsgType::Hello, 0, 0, &encode_hello(0)).expect("hello");
    let ack = read_frame(&mut &stream).expect("hello ack");
    assert_eq!(ack.msg, MsgType::HelloAck);

    // The server now waits for our push; scrape through the side door.
    // Plant a marker first: it is registered before the request is sent,
    // so the (global-registry) snapshot must contain it — a deterministic
    // proof the scrape returned live registry state.
    threelc_obs::global()
        .counter("test.mid_training_scrape_marker")
        .add(1);
    let snap = scrape_metrics(&addr, Duration::from_secs(5)).expect("mid-training scrape");
    assert!(snap.counter("test.mid_training_scrape_marker").unwrap_or(0) > 0);

    // Abandon the run; the server must fail stop rather than hang.
    drop(stream);
    assert!(server.join().expect("server thread").is_err());
}

#[test]
fn recorded_series_match_the_simulator_bit_for_bit() {
    // An adaptive policy so the multiplier series actually moves, plus
    // compressed and raw payloads so the wire-bytes/ratio series exercise
    // both classifications. The networked store's deterministic view (the
    // wall-clock step_seconds series stripped) must equal the simulator's
    // exactly — same integers, same float bits.
    let mut config = ExperimentConfig {
        total_steps: 12,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    config.policy =
        threelc_distsim::PolicySpec::parse("schedule:from=1.0,to=1.9,over=6").expect("spec");
    let (report, _outcomes) = run_loopback(config);

    let mut cluster = Cluster::new(config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    let sim = cluster.series();
    assert_eq!(report.series.steps_recorded, config.total_steps);
    assert_eq!(
        report.series.deterministic(),
        sim.deterministic(),
        "networked series store diverged from the simulator's"
    );
    // The non-deterministic series still recorded something per worker.
    for w in &report.series.workers {
        let latency = w.series("step_seconds").expect("step_seconds series");
        assert_eq!(latency.count(), config.total_steps);
        assert!(latency.min().expect("nonempty") >= 0.0);
    }
    // Spot-check the values are real: ratio > 5 under 3LC, bytes nonzero,
    // and the multiplier series reproduces the schedule's endpoints.
    let ratio = report.series.run_series("ratio").expect("run ratio");
    assert!(ratio.min().expect("nonempty") > 5.0);
    assert!(
        report
            .series
            .run_series("wire_bytes")
            .expect("run bytes")
            .min()
            .expect("nonempty")
            > 0.0
    );
    let mult = report.series.run_series("multiplier").expect("multiplier");
    assert_eq!(mult.raw.first().map(|p| p.value), Some(1.0));
    assert!((mult.last().expect("nonempty").value - 1.9).abs() < 1e-6);
}

#[test]
fn series_scrape_during_handshake_returns_an_empty_store() {
    // Like the metrics handshake-phase scrape: a SeriesRequest before the
    // run starts must answer (an empty, correctly-shaped store) without
    // consuming a worker slot.
    let config = ExperimentConfig {
        total_steps: 4,
        eval_every: 0,
        ..loopback_config(SchemeKind::three_lc(1.0))
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || serve(&listener, &config, &ServeOptions::default()));

    let addr0 = addr.clone();
    let w0 = thread::spawn(move || run_worker(&WorkerOptions::new(addr0, 0)));
    let store = scrape_series(&addr, Duration::from_secs(5)).expect("handshake-phase scrape");
    assert_eq!(store.steps_recorded, 0);
    assert_eq!(store.workers.len(), config.workers);

    let addr1 = addr.clone();
    let w1 = thread::spawn(move || run_worker(&WorkerOptions::new(addr1, 1)));
    w0.join().expect("worker 0 thread").expect("worker 0 run");
    w1.join().expect("worker 1 thread").expect("worker 1 run");
    let report = server.join().expect("server thread").expect("serve run");
    assert_eq!(report.series.steps_recorded, config.total_steps);
}

#[test]
fn series_scrape_works_mid_training() {
    // One worker slot, driven by hand (the metrics mid-training pattern):
    // after Hello/HelloAck the coordinator parks at the push barrier, so
    // the side-door thread answers the SeriesRequest.
    let config = ExperimentConfig {
        workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let opts = ServeOptions {
        io_timeout: Duration::from_secs(5),
        step_timeout: Duration::from_secs(5),
        max_rejoins: 0,
        ..ServeOptions::default()
    };
    let server = thread::spawn(move || serve(&listener, &config, &opts));

    let stream = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut &stream, MsgType::Hello, 0, 0, &encode_hello(0)).expect("hello");
    let ack = read_frame(&mut &stream).expect("hello ack");
    assert_eq!(ack.msg, MsgType::HelloAck);

    let store = scrape_series(&addr, Duration::from_secs(5)).expect("mid-training scrape");
    assert_eq!(store.workers.len(), 1);
    assert_eq!(store.steps_recorded, 0, "no push landed yet");

    drop(stream);
    assert!(server.join().expect("server thread").is_err());
}

#[test]
fn server_rejects_unsupported_configs_before_accepting() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let opts = ServeOptions::default();
    let stale = ExperimentConfig {
        staleness: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    assert!(serve(&listener, &stale, &opts).is_err());
    let backup = ExperimentConfig {
        backup_workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    assert!(serve(&listener, &backup, &opts).is_err());
}
