//! Loopback integration tests: a real server and real worker clients,
//! all in one process over 127.0.0.1, checked bit-for-bit against the
//! in-process simulator.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;
use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, Cluster, ExperimentConfig};
use threelc_net::{run_worker, serve, ServeOptions, WorkerOptions};

fn loopback_config(scheme: SchemeKind) -> ExperimentConfig {
    ExperimentConfig {
        scheme,
        workers: 2,
        batch_per_worker: 8,
        total_steps: 20,
        model_width: 16,
        model_blocks: 1,
        eval_every: 7,
        seed: 5,
        ..Default::default()
    }
}

/// Binds an ephemeral port, serves `config` on it, and runs one client
/// thread per worker. Returns the server's report and the workers'
/// outcomes in worker-id order.
fn run_loopback(
    config: ExperimentConfig,
) -> (threelc_net::NetReport, Vec<threelc_net::WorkerOutcome>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || serve(&listener, &config, &ServeOptions::default()));
    let clients: Vec<_> = (0..config.workers as u16)
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&WorkerOptions::new(addr, w)))
        })
        .collect();
    let outcomes = clients
        .into_iter()
        .map(|c| c.join().expect("client thread").expect("worker run"))
        .collect();
    let report = server.join().expect("server thread").expect("serve run");
    (report, outcomes)
}

#[test]
fn loopback_run_matches_simulator_bit_for_bit() {
    let config = loopback_config(SchemeKind::three_lc(1.0));
    let (report, outcomes) = run_loopback(config);
    let simulated = run_experiment(&config);

    // The training outcome is bit-identical to the simulator's.
    assert_eq!(report.result.config, simulated.config);
    assert_eq!(report.result.scheme_label, simulated.scheme_label);
    assert_eq!(report.result.model_params, simulated.model_params);
    assert_eq!(report.result.final_eval, simulated.final_eval);
    assert_eq!(report.result.trace.evals, simulated.trace.evals);

    // Every deterministic per-step field matches; only measured codec
    // seconds may differ between a simulated and a networked run.
    assert_eq!(report.result.trace.steps.len(), simulated.trace.steps.len());
    for (net, sim) in report.result.trace.steps.iter().zip(&simulated.trace.steps) {
        assert_eq!(net.step, sim.step);
        assert_eq!(net.lr.to_bits(), sim.lr.to_bits(), "step {}", sim.step);
        assert_eq!(net.loss.to_bits(), sim.loss.to_bits(), "step {}", sim.step);
        assert_eq!(net.push_bytes, sim.push_bytes, "step {}", sim.step);
        assert_eq!(net.pull_bytes, sim.pull_bytes, "step {}", sim.step);
        assert_eq!(net.raw_bytes, sim.raw_bytes, "step {}", sim.step);
        assert_eq!(net.compressible_values, sim.compressible_values);
        assert_eq!(net.critical_bytes, sim.critical_bytes, "step {}", sim.step);
        assert_eq!(net.compute_multiplier, sim.compute_multiplier);
        assert_eq!(net.pull_overlapped, sim.pull_overlapped);
    }

    // Worker replicas end up bit-identical to the simulator's replicas.
    let mut cluster = Cluster::new(config);
    for _ in 0..config.total_steps {
        cluster.step();
    }
    for (w, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.steps, config.total_steps);
        assert_eq!(
            outcome.model.snapshot(),
            cluster.worker_model(w).snapshot(),
            "worker {w} replica diverged from the simulator"
        );
    }

    // Each side's transport counters mirror the other's.
    assert_eq!(report.connections.len(), config.workers);
    for (w, conn) in report.connections.iter().enumerate() {
        assert_eq!(conn.worker, w);
        let outcome = &outcomes[w];
        assert_eq!(conn.counters.bytes_in, outcome.counters.bytes_out);
        assert_eq!(conn.counters.bytes_out, outcome.counters.bytes_in);
        assert_eq!(conn.counters.frames_in, outcome.counters.frames_out);
        assert_eq!(conn.counters.frames_out, outcome.counters.frames_in);
        assert_eq!(outcome.counters.retries, 0);
        assert!(conn.counters.bytes_in > 0);
    }
}

#[test]
fn loopback_uncompressed_scheme_also_matches() {
    let config = ExperimentConfig {
        total_steps: 6,
        eval_every: 0,
        ..loopback_config(SchemeKind::Float32)
    };
    let (report, outcomes) = run_loopback(config);
    let simulated = run_experiment(&config);
    assert_eq!(report.result.final_eval, simulated.final_eval);
    let last = report.result.trace.steps.last().expect("steps recorded");
    let sim_last = simulated.trace.steps.last().expect("steps recorded");
    // Float32 is itself a (1:1) compression scheme: big tensors go through
    // its wire format, only below-threshold tensors travel raw.
    assert_eq!(last.push_bytes, sim_last.push_bytes);
    assert_eq!(last.raw_bytes, sim_last.raw_bytes);
    assert!(last.raw_bytes > 0);
    assert_eq!(outcomes.len(), config.workers);
}

#[test]
fn worker_retry_budget_is_bounded() {
    // Grab an ephemeral port, then close it: connections get refused.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        listener.local_addr().expect("local addr").to_string()
    };
    let opts = WorkerOptions {
        max_retries: 2,
        initial_backoff: Duration::from_millis(1),
        connect_timeout: Duration::from_millis(200),
        ..WorkerOptions::new(dead_addr, 0)
    };
    assert!(run_worker(&opts).is_err());
}

#[test]
fn server_rejects_a_garbage_hello() {
    let config = ExperimentConfig {
        workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let opts = ServeOptions {
        io_timeout: Duration::from_secs(2),
        step_timeout: Duration::from_secs(2),
    };
    let server = thread::spawn(move || serve(&listener, &config, &opts));
    let mut stream = TcpStream::connect(addr).expect("connect");
    use std::io::Write as _;
    stream.write_all(&[0xAB; 64]).expect("write garbage");
    let result = server.join().expect("server thread");
    assert!(result.is_err(), "garbage magic must abort the handshake");
}

#[test]
fn server_rejects_unsupported_configs_before_accepting() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let opts = ServeOptions::default();
    let stale = ExperimentConfig {
        staleness: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    assert!(serve(&listener, &stale, &opts).is_err());
    let backup = ExperimentConfig {
        backup_workers: 1,
        ..loopback_config(SchemeKind::Float32)
    };
    assert!(serve(&listener, &backup, &opts).is_err());
}
