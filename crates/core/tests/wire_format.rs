//! Golden wire-format tests: the exact bytes of 3LC payloads.
//!
//! The wire format is a protocol: decoders on other nodes (or other
//! implementations) must agree on every byte. These tests pin the format
//! so accidental changes fail loudly rather than corrupting traffic.

use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::{Shape, Tensor};

fn ctx(n: usize, zre: bool) -> ThreeLcCompressor {
    ThreeLcCompressor::with_options(
        Shape::new(&[n]),
        ThreeLcOptions {
            sparsity: SparsityMultiplier::default(),
            zero_run_encoding: zre,
            error_accumulation: false,
        },
    )
}

#[test]
fn golden_header_layout() {
    // [0] flags, [1..5] f32 LE scale, [5..9] u32 LE count.
    let mut cx = ctx(5, true);
    let wire = cx
        .compress(&Tensor::from_slice(&[1.0, -1.0, 0.0, 0.0, 0.0]))
        .unwrap();
    assert_eq!(wire[0], 0b0000_0001, "ZRE flag set");
    assert_eq!(f32::from_le_bytes(wire[1..5].try_into().unwrap()), 1.0);
    assert_eq!(u32::from_le_bytes(wire[5..9].try_into().unwrap()), 5);
}

#[test]
fn golden_quartic_body_no_zre() {
    // Ternary [1, -1, 0, 0, 0] → digits (2,0,1,1,1) → 2·81+0+9+3+1 = 175.
    let mut cx = ctx(5, false);
    let wire = cx
        .compress(&Tensor::from_slice(&[1.0, -1.0, 0.0, 0.0, 0.0]))
        .unwrap();
    assert_eq!(wire[0], 0, "no flags");
    assert_eq!(&wire[9..], &[175]);
}

#[test]
fn golden_partitioned_layout() {
    // 10 values, partitions of length 2: byte 0 packs values 0,2,4,6,8 and
    // byte 1 packs values 1,3,5,7,9 (the paper's 5-partition scheme).
    let mut data = vec![0.0f32; 10];
    data[0] = 1.0; // partition p0, byte 0 → digit a=2
    data[1] = -1.0; // partition p0, byte 1 → digit a=0
    let mut cx = ctx(10, false);
    let wire = cx.compress(&Tensor::from_vec(data, [10])).unwrap();
    // byte0: (2,1,1,1,1) → 202; byte1: (0,1,1,1,1) → 40.
    assert_eq!(&wire[9..], &[202, 40]);
}

#[test]
fn golden_zre_run_codes() {
    // 100 zeros → 20 quartic bytes of 121 → runs of 14 and 6:
    // 255 (= 243 + 14 − 2) then 247 (= 243 + 6 − 2).
    let mut cx = ctx(100, true);
    let wire = cx.compress(&Tensor::zeros([100])).unwrap();
    assert_eq!(&wire[9..], &[255, 247]);
}

#[test]
fn golden_scale_is_max_abs_times_s() {
    let mut cx = ThreeLcCompressor::new(Shape::new(&[3]), SparsityMultiplier::new(1.5).unwrap());
    let wire = cx.compress(&Tensor::from_slice(&[0.2, -0.4, 0.1])).unwrap();
    let scale = f32::from_le_bytes(wire[1..5].try_into().unwrap());
    assert!((scale - 0.6).abs() < 1e-6, "M = max|T| · s = 0.4 · 1.5");
}

#[test]
fn golden_empty_runs_and_eof() {
    // A tensor shorter than one quartic group still produces one byte.
    let mut cx = ctx(2, false);
    let wire = cx.compress(&Tensor::from_slice(&[0.5, -0.5])).unwrap();
    // Ternary [1, -1] padded with zeros: partitions of length 1, bytes:
    // ceil(2/5) = 1 byte: digits (2, 0, 1, 1, 1) = 175.
    assert_eq!(wire.len(), 9 + 1);
    assert_eq!(wire[9], 175);
}

#[test]
fn cross_context_decode_agrees() {
    // Any context bound to the same shape decodes the payload identically
    // (the basis for shared pull compression).
    let t = Tensor::from_slice(&[0.3, 0.0, -0.1, 0.05, 0.0, 0.0, 0.2, 0.0]);
    let mut producer = ctx(8, true);
    let wire = producer.compress(&t).unwrap();
    let consumer_a = ctx(8, true);
    let consumer_b =
        ThreeLcCompressor::new(Shape::new(&[8]), SparsityMultiplier::new(1.9).unwrap());
    assert_eq!(
        consumer_a.decompress(&wire).unwrap(),
        consumer_b.decompress(&wire).unwrap(),
        "decoding is independent of the consumer's own options"
    );
}
