//! Property-based tests for the 3LC compression pipeline invariants.

use proptest::prelude::*;
use threelc::{
    quartic, zrle, Compressor, SparsityMultiplier, TernaryTensor, ThreeLcCompressor, ThreeLcOptions,
};
use threelc_tensor::{Shape, Tensor};

fn ternary_vec() -> impl Strategy<Value = Vec<i8>> {
    prop::collection::vec(-1i8..=1, 0..600)
}

fn float_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..400)
}

fn sparsity() -> impl Strategy<Value = SparsityMultiplier> {
    (1.0f32..1.999).prop_map(|s| SparsityMultiplier::new(s).expect("in range"))
}

proptest! {
    #[test]
    fn quartic_roundtrip(values in ternary_vec()) {
        let bytes = quartic::encode(&values);
        prop_assert_eq!(bytes.len(), values.len().div_ceil(5));
        let back = quartic::decode(&bytes, values.len()).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn quartic_output_in_range(values in ternary_vec()) {
        let bytes = quartic::encode(&values);
        prop_assert!(bytes.iter().all(|&b| b <= quartic::MAX_QUARTIC_BYTE));
    }

    #[test]
    fn zrle_roundtrip(bytes in prop::collection::vec(0u8..=242, 0..800)) {
        let enc = zrle::encode(&bytes).unwrap();
        prop_assert_eq!(zrle::decode(&enc), bytes.clone());
        // ZRE never expands a valid quartic stream.
        prop_assert!(enc.len() <= bytes.len().max(1));
    }

    #[test]
    fn zrle_decode_exact_catches_length_tampering(bytes in prop::collection::vec(0u8..=242, 1..200)) {
        let enc = zrle::encode(&bytes).unwrap();
        prop_assert!(zrle::decode_exact(&enc, bytes.len()).is_ok());
        prop_assert!(zrle::decode_exact(&enc, bytes.len() + 1).is_err());
    }

    #[test]
    fn quantization_error_bounded_by_half_m(v in float_vec(), s in sparsity()) {
        let input = Tensor::from_slice(&v);
        let q = TernaryTensor::quantize(&input, s).unwrap();
        let out = q.dequantize();
        let err = input.sub(&out).unwrap().max_abs();
        // Paper §3.1 convergence argument: max |T_in − T_out| ≤ M/2.
        prop_assert!(err <= q.scale() / 2.0 + q.scale() * 1e-6,
            "err {} > M/2 {}", err, q.scale() / 2.0);
    }

    #[test]
    fn quantized_values_are_ternary(v in float_vec(), s in sparsity()) {
        let input = Tensor::from_slice(&v);
        let q = TernaryTensor::quantize(&input, s).unwrap();
        prop_assert!(q.values().iter().all(|x| (-1..=1).contains(x)));
    }

    #[test]
    fn end_to_end_roundtrip_bound(v in float_vec(), s in sparsity(), zre in any::<bool>()) {
        let input = Tensor::from_slice(&v);
        let opts = ThreeLcOptions {
            sparsity: s,
            zero_run_encoding: zre,
            error_accumulation: false,
        };
        let mut cx = ThreeLcCompressor::with_options(input.shape().clone(), opts);
        let wire = cx.compress(&input).unwrap();
        let out = cx.decompress(&wire).unwrap();
        prop_assert_eq!(out.shape(), input.shape());
        let m = input.max_abs() * s.value();
        let err = input.sub(&out).unwrap().max_abs();
        prop_assert!(err <= m / 2.0 + m * 1e-6);
    }

    #[test]
    fn error_accumulation_conserves_mass(v in float_vec(), s in sparsity()) {
        // Invariant: after each compress, buffer + Σ(transmitted) = Σ(inputs).
        let input = Tensor::from_slice(&v);
        let mut cx = ThreeLcCompressor::with_options(
            input.shape().clone(),
            ThreeLcOptions { sparsity: s, ..Default::default() },
        );
        let mut transmitted = Tensor::zeros(input.shape().clone());
        for step in 1..=4u32 {
            let wire = cx.compress(&input).unwrap();
            transmitted.add_assign(&cx.decompress(&wire).unwrap()).unwrap();
            let total_in = input.scale(step as f32);
            let account = transmitted.add(cx.residual().unwrap()).unwrap();
            let tol = total_in.max_abs().max(1.0) * 1e-4;
            prop_assert!(account.approx_eq(&total_in, tol),
                "step {}: accounting mismatch", step);
        }
    }

    #[test]
    fn decompress_never_panics_on_arbitrary_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        n in 1usize..64,
    ) {
        let cx = ThreeLcCompressor::new(Shape::new(&[n]), SparsityMultiplier::default());
        // Must return Ok or Err, never panic.
        let _ = cx.decompress(&payload);
    }

    #[test]
    fn wire_size_monotone_in_sparsity(seed in any::<u64>()) {
        let mut r = threelc_tensor::rng(seed);
        let input = threelc_tensor::Initializer::Normal { mean: 0.0, std_dev: 1.0 }
            .init(&mut r, [2048]);
        let mut prev = usize::MAX;
        for s in [1.0f32, 1.3, 1.6, 1.9] {
            let mut cx = ThreeLcCompressor::new(
                input.shape().clone(),
                SparsityMultiplier::new(s).unwrap(),
            );
            let len = cx.compress(&input).unwrap().len();
            prop_assert!(len <= prev, "size must not grow with s");
            prev = len;
        }
    }
}
