//! Differential property tests pinning every codec implementation tier
//! (scalar / SWAR / SIMD) to bit-identical behavior.
//!
//! The contract (DESIGN.md §14): the tiers differ only in speed. On any
//! input — including adversarial floats (NaN, infinities, subnormals,
//! signed zeros), all-zero and no-zero tensors, and lengths straddling
//! the 5-symbol quartic boundary and the 8-byte word / 32-byte vector
//! chunk edges — every available tier must produce byte-identical wire
//! payloads, bit-identical error-accumulation buffers, identical ternary
//! values, and *identical errors at identical offsets* on corrupted
//! input. The scalar tier is the reference; SWAR and SIMD are checked
//! against it pairwise.

use proptest::prelude::*;
use threelc::{
    quartic, tlq::TernaryTensor, zrle, CodecImpl, Compressor, SparsityMultiplier,
    ThreeLcCompressor, ThreeLcOptions,
};
use threelc_tensor::Tensor;

fn available_tiers() -> Vec<CodecImpl> {
    CodecImpl::ALL
        .into_iter()
        .filter(|i| i.is_available())
        .collect()
}

/// Floats chosen to stress the quantization bit tricks: signed zeros,
/// subnormals, values hugging the 0.5·M rounding threshold, and ordinary
/// gradient-like magnitudes.
fn adversarial_floats(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0f32),
            Just(-0.0f32),
            Just(0.0f32), // extra zero weight → long zero runs
            (1u32..0x0080_0000).prop_map(f32::from_bits), // positive subnormals
            (1u32..0x0080_0000).prop_map(|b| -f32::from_bits(b)), // negative subnormals
            -1.0f32..1.0,
            -0.01f32..0.01,
            Just(0.5f32),
            Just(-0.5f32),
            Just(1.0f32),
            Just(f32::MIN_POSITIVE),
            Just(f32::MAX),
        ],
        1..max_len,
    )
}

/// Ternary value vectors with lengths that straddle the 5-symbol quartic
/// boundary and the kernels' 8-wide word blocks.
fn ternary_vec() -> impl Strategy<Value = Vec<i8>> {
    prop::collection::vec(-1i8..=1, 0..120)
}

/// Quartic-ish byte streams: mostly valid bytes with zero-run structure,
/// sometimes corrupted with out-of-range bytes (> 242).
fn quartic_stream(corrupt: bool) -> impl Strategy<Value = Vec<u8>> {
    let arm = if corrupt {
        prop_oneof![
            Just(quartic::ZERO_BYTE),
            Just(quartic::ZERO_BYTE),
            Just(quartic::ZERO_BYTE),
            0u8..=quartic::MAX_QUARTIC_BYTE,
            243u8..=255, // invalid
        ]
        .boxed()
    } else {
        prop_oneof![
            Just(quartic::ZERO_BYTE),
            Just(quartic::ZERO_BYTE),
            Just(quartic::ZERO_BYTE),
            0u8..=quartic::MAX_QUARTIC_BYTE,
        ]
        .boxed()
    };
    prop::collection::vec(arm, 0..200)
}

fn options() -> impl Strategy<Value = ThreeLcOptions> {
    ((1.0f32..1.999), any::<bool>(), any::<bool>()).prop_map(|(s, zre, ea)| ThreeLcOptions {
        sparsity: SparsityMultiplier::new(s).expect("in range"),
        zero_run_encoding: zre,
        error_accumulation: ea,
    })
}

proptest! {
    #[test]
    fn quantize_is_identical_on_every_tier(v in adversarial_floats(300), s in 1.0f32..1.999) {
        let input = Tensor::from_slice(&v);
        let s = SparsityMultiplier::new(s).expect("in range");
        let want = TernaryTensor::quantize_impl(CodecImpl::Scalar, &input, s);
        for imp in available_tiers() {
            let got = TernaryTensor::quantize_impl(imp, &input, s);
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(a.values() == b.values(), "values diverged on {}", imp);
                    prop_assert!(a.scale().to_bits() == b.scale().to_bits(), "scale diverged on {}", imp);
                }
                (Err(a), Err(b)) => prop_assert!(a == b, "errors diverged on {}", imp),
                _ => prop_assert!(false, "outcome diverged on {}: {:?} vs {:?}", imp, want, got),
            }
        }
    }

    #[test]
    fn quantize_rejects_non_finite_on_every_tier(
        v in adversarial_floats(60),
        poison_idx in 0usize..60,
        poison in prop_oneof![
            Just(f32::NAN), Just(-f32::NAN), Just(f32::INFINITY), Just(f32::NEG_INFINITY)
        ],
    ) {
        let mut v = v;
        let idx = poison_idx % v.len();
        v[idx] = poison;
        let input = Tensor::from_slice(&v);
        let s = SparsityMultiplier::default();
        for imp in available_tiers() {
            let got = TernaryTensor::quantize_impl(imp, &input, s);
            prop_assert!(got.is_err(), "{} accepted non-finite input", imp);
        }
    }

    #[test]
    fn quartic_encode_is_identical_on_every_tier(values in ternary_vec()) {
        let want = quartic::encode_impl(CodecImpl::Scalar, &values);
        for imp in available_tiers() {
            prop_assert!(
                quartic::encode_impl(imp, &values) == want,
                "quartic bytes diverged on {}", imp
            );
        }
    }

    #[test]
    fn zrle_is_identical_on_every_tier_including_error_offsets(
        stream in quartic_stream(true),
    ) {
        let mut want_runs = Vec::new();
        let want = zrle::encode_with_runs_impl(CodecImpl::Scalar, &stream, |r| want_runs.push(r));
        for imp in available_tiers() {
            let mut got_runs = Vec::new();
            let got = zrle::encode_with_runs_impl(imp, &stream, |r| got_runs.push(r));
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(a == b, "ZRE bytes diverged on {}", imp);
                    prop_assert!(got_runs == want_runs, "run reports diverged on {}", imp);
                }
                // Identical error *values*, which carry byte and offset.
                (Err(a), Err(b)) => prop_assert!(a == b, "ZRE errors diverged on {}", imp),
                _ => prop_assert!(false, "outcome diverged on {}: {:?} vs {:?}", imp, want, got),
            }
        }
    }

    #[test]
    fn compress_wire_and_residual_are_identical_on_every_tier(
        v in adversarial_floats(700),
        opts in options(),
    ) {
        let input = Tensor::from_slice(&v);
        // Three steps so error-accumulation divergence would compound; the
        // forced-parallel config (threshold 1, 4 threads) stresses chunk
        // edges in the same pass.
        for threads in [1usize, 4] {
            let mut tiers: Vec<(CodecImpl, ThreeLcCompressor)> = available_tiers()
                .into_iter()
                .map(|imp| {
                    let mut cx = ThreeLcCompressor::with_options(input.shape().clone(), opts)
                        .with_codec_impl(imp)
                        .with_threads(threads);
                    cx.set_parallel_min_values(1);
                    (imp, cx)
                })
                .collect();
            for step in 0..3 {
                // Compress can legitimately fail at step ≥ 1: an
                // inf-overflowed scale leaves NaN in the EA buffer, which
                // the next accumulate rejects as NonFiniteInput. Tiers
                // must agree on the full outcome, success or error.
                let mut want = None;
                for (imp, cx) in tiers.iter_mut() {
                    let wire = cx.compress(&input);
                    match &want {
                        None => want = Some(wire),
                        Some(w) => prop_assert!(w == &wire, "wire diverged on {} (threads={}, step={})", imp, threads, step),
                    }
                }
                // Compare residual *bit patterns*: f32 equality would
                // false-alarm on NaN residuals (scale can overflow to
                // +inf on f32::MAX inputs, making 0·scale = NaN), which
                // must still be bit-identical across tiers.
                let residuals: Vec<Option<Vec<u32>>> = tiers
                    .iter()
                    .map(|(_, cx)| {
                        cx.residual()
                            .map(|r| r.as_slice().iter().map(|f| f.to_bits()).collect())
                    })
                    .collect();
                for (i, r) in residuals.iter().enumerate().skip(1) {
                    prop_assert!(
                        r == &residuals[0],
                        "residual diverged on {} (threads={}, step={})",
                        tiers[i].0, threads, step
                    );
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn aggregate_kernels_are_identical_on_every_tier(
        workers in prop::collection::vec(ternary_vec(), 1..6),
        scale_bits in prop_oneof![
            Just(0.0f32), Just(-0.0f32), Just(1.0f32), Just(0.125f32),
            (1u32..0x0080_0000).prop_map(f32::from_bits), // subnormal scales
            -2.0f32..2.0,
        ],
    ) {
        // All workers share the shortest length so they aggregate the
        // same tensor.
        let n = workers.iter().map(Vec::len).min().unwrap_or(0);
        let workers: Vec<&[i8]> = workers.iter().map(|w| &w[..n]).collect();
        let scale = scale_bits;
        use threelc::kernels;

        // Reference: scalar dequant assign-then-add in worker order.
        let mut want = vec![0f32; n];
        for (w, syms) in workers.iter().enumerate() {
            if w == 0 {
                kernels::dequant_assign(CodecImpl::Scalar, syms, scale, &mut want);
            } else {
                kernels::dequant_add(CodecImpl::Scalar, syms, scale, &mut want);
            }
        }
        let want_bits: Vec<u32> = want.iter().map(|f| f.to_bits()).collect();
        for imp in available_tiers() {
            let mut got = vec![0f32; n];
            for (w, syms) in workers.iter().enumerate() {
                if w == 0 {
                    kernels::dequant_assign(imp, syms, scale, &mut got);
                } else {
                    kernels::dequant_add(imp, syms, scale, &mut got);
                }
            }
            let got_bits: Vec<u32> = got.iter().map(|f| f.to_bits()).collect();
            prop_assert!(got_bits == want_bits, "dequant diverged on {}", imp);
        }

        // Lane accumulate + drain: every tier must agree with the scalar
        // tier on the packed words AND the drained floats, and draining
        // must equal the integer symbol sum times the scale.
        let members = workers.len() as u32;
        let mut want_lanes = vec![0u64; n.div_ceil(4)];
        for syms in &workers {
            kernels::symbol_lanes_add(CodecImpl::Scalar, syms, &mut want_lanes);
        }
        let mut want_drained = vec![7.0f32; n];
        kernels::symbol_lanes_drain_assign(
            CodecImpl::Scalar, &want_lanes, members, scale, &mut want_drained,
        );
        for (e, &d) in want_drained.iter().enumerate() {
            let isum: i32 = workers.iter().map(|syms| syms[e] as i32).sum();
            prop_assert!(
                d.to_bits() == (isum as f32 * scale).to_bits(),
                "drain is not the integer sum times scale at {}", e
            );
        }
        for imp in available_tiers() {
            let mut lanes = vec![0u64; n.div_ceil(4)];
            for syms in &workers {
                kernels::symbol_lanes_add(imp, syms, &mut lanes);
            }
            prop_assert!(lanes == want_lanes, "lane words diverged on {}", imp);
            let mut drained = vec![7.0f32; n];
            kernels::symbol_lanes_drain_assign(imp, &lanes, members, scale, &mut drained);
            let a: Vec<u32> = drained.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u32> = want_drained.iter().map(|f| f.to_bits()).collect();
            prop_assert!(a == b, "drain-assign diverged on {}", imp);
            let mut added = want_drained.clone();
            let mut added_want = want_drained.clone();
            kernels::symbol_lanes_drain_add(imp, &lanes, members, scale, &mut added);
            kernels::symbol_lanes_drain_add(
                CodecImpl::Scalar, &want_lanes, members, scale, &mut added_want,
            );
            let a: Vec<u32> = added.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u32> = added_want.iter().map(|f| f.to_bits()).collect();
            prop_assert!(a == b, "drain-add diverged on {}", imp);
        }
    }

    #[test]
    fn symbol_decode_matches_decompress_bit_for_bit(
        v in adversarial_floats(400),
        opts in options(),
    ) {
        // decompress_symbols must expose exactly the (symbols, scale) pair
        // decompress dequantizes: syms[e] as f32 * scale == tensor[e],
        // bit for bit, on every tier.
        let input = Tensor::from_slice(&v);
        for imp in available_tiers() {
            let mut cx = ThreeLcCompressor::with_options(input.shape().clone(), opts)
                .with_codec_impl(imp);
            let wire = match cx.compress(&input) {
                Ok(w) => w,
                Err(_) => continue, // non-finite input rejected; nothing to decode
            };
            let mut syms = Vec::new();
            // A scale that overflowed to +inf at encode time makes *both*
            // entry points reject the payload with the identical error.
            match (cx.decompress(&wire), cx.decompress_symbols(&wire, &mut syms)) {
                (Ok(dense), Ok(Some(scale))) => {
                    prop_assert!(syms.len() == dense.len());
                    for (e, (&s, &x)) in syms.iter().zip(dense.as_slice()).enumerate() {
                        prop_assert!((-1..=1).contains(&s), "non-ternary symbol at {}", e);
                        prop_assert!(
                            (s as f32 * scale).to_bits() == x.to_bits(),
                            "symbol {} · scale diverged from dense decode at {} on {}", s, e, imp
                        );
                    }
                }
                (Err(a), Err(b)) => prop_assert!(a == b, "errors diverged on {}", imp),
                (d, s) => prop_assert!(false, "outcomes diverged on {}: {:?} vs {:?}", imp, d, s),
            }
        }
    }
}

#[test]
fn symbol_decode_errors_match_decompress_errors() {
    // Corrupt a real payload byte-by-byte: the symbol entry point must
    // report exactly the error decompress reports (same variant, same
    // offsets), or succeed with the matching symbols, on every tier.
    let n = 350usize;
    let mut r = threelc_tensor::rng(41);
    use rand::Rng as _;
    let v: Vec<f32> = (0..n)
        .map(|_| {
            if r.gen_bool(0.7) {
                0.0
            } else {
                r.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    let input = Tensor::from_slice(&v);
    let mut cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default());
    let wire = cx.compress(&input).unwrap();
    for pos in 0..wire.len() {
        let mut bad = wire.clone();
        bad[pos] ^= 0xa5;
        for imp in available_tiers() {
            let cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default())
                .with_codec_impl(imp);
            let dense = cx.decompress(&bad);
            let mut syms = Vec::new();
            let symbolic = cx.decompress_symbols(&bad, &mut syms);
            match (dense, symbolic) {
                (Ok(t), Ok(Some(scale))) => {
                    for (e, (&s, &x)) in syms.iter().zip(t.as_slice()).enumerate() {
                        assert_eq!(
                            (s as f32 * scale).to_bits(),
                            x.to_bits(),
                            "byte {pos} elem {e} on {imp}"
                        );
                    }
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "byte {pos} on {imp}"),
                (d, s) => panic!("byte {pos} on {imp}: outcomes diverged: {d:?} vs {s:?}"),
            }
        }
    }
}

#[test]
fn all_tiers_handle_boundary_straddling_lengths() {
    // Deterministic sweep over every length around the 5-symbol quartic
    // boundary, the kernels' 8-wide word blocks, and the 32-byte vector
    // blocks — with a forced chunk split to stress ragged partitions.
    let mut r = threelc_tensor::rng(29);
    use rand::Rng as _;
    let lens: Vec<usize> = (1..=48)
        .chain([
            63, 64, 65, 79, 80, 81, 127, 128, 129, 159, 160, 161, 255, 256, 257,
        ])
        .collect();
    for n in lens {
        let v: Vec<f32> = (0..n)
            .map(|_| {
                if r.gen_bool(0.5) {
                    0.0
                } else {
                    r.gen_range(-1.0f32..1.0)
                }
            })
            .collect();
        let input = Tensor::from_slice(&v);
        let mut want: Option<(Vec<u8>, Vec<u32>)> = None;
        for imp in available_tiers() {
            for threads in [1usize, 3] {
                let mut cx = ThreeLcCompressor::new(
                    input.shape().clone(),
                    SparsityMultiplier::new(1.5).unwrap(),
                )
                .with_codec_impl(imp)
                .with_threads(threads);
                cx.set_parallel_min_values(1);
                let wire = cx.compress(&input).unwrap();
                let residual: Vec<u32> = cx
                    .residual()
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|f| f.to_bits())
                    .collect();
                match &want {
                    None => want = Some((wire, residual)),
                    Some((w, res)) => {
                        assert_eq!(&wire, w, "n={n} {imp} threads={threads}");
                        assert_eq!(&residual, res, "n={n} {imp} threads={threads}");
                    }
                }
            }
        }
    }
}

#[test]
fn all_zero_and_no_zero_tensors_are_identical_on_every_tier() {
    for input in [
        Tensor::zeros([997]),
        Tensor::from_vec(vec![0.7f32; 997], [997]),
        Tensor::from_vec(
            (0..997)
                .map(|i| if i % 2 == 0 { 0.9 } else { -0.9 })
                .collect(),
            [997],
        ),
    ] {
        let mut want: Option<Vec<u8>> = None;
        for imp in available_tiers() {
            let mut cx =
                ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default())
                    .with_codec_impl(imp);
            let wire = cx.compress(&input).unwrap();
            match &want {
                None => want = Some(wire),
                Some(w) => assert_eq!(&wire, w, "{imp}"),
            }
        }
    }
}

#[test]
fn subnormal_scale_corner_is_identical_and_valid_on_every_tier() {
    // max|x|·s subnormal → 1/M overflows to +inf. The historical
    // `round() as i8` saturated to ±127 here (invalid ternary, debug
    // panic downstream); the comparison-form kernels clamp to ±1 on every
    // tier. Pin both the fix and cross-tier identity.
    let v = vec![
        f32::from_bits(1),
        -f32::from_bits(3),
        0.0,
        f32::from_bits(2),
    ];
    let input = Tensor::from_slice(&v);
    let s = SparsityMultiplier::default();
    let want = TernaryTensor::quantize_impl(CodecImpl::Scalar, &input, s).unwrap();
    assert!(want.values().iter().all(|q| (-1..=1).contains(q)));
    assert!(
        want.values().iter().any(|&q| q != 0),
        "nonzero inputs must survive"
    );
    for imp in available_tiers() {
        let got = TernaryTensor::quantize_impl(imp, &input, s).unwrap();
        assert_eq!(got.values(), want.values(), "{imp}");
        assert_eq!(got.scale().to_bits(), want.scale().to_bits(), "{imp}");
        // The full pipeline stays well-formed too.
        let mut cx = ThreeLcCompressor::new(input.shape().clone(), s).with_codec_impl(imp);
        let wire = cx.compress(&input).unwrap();
        cx.decompress(&wire).unwrap();
    }
}

#[test]
fn corrupted_wire_errors_identically_on_every_tier() {
    // Corrupt a real payload body byte-by-byte; decode must fail (or
    // succeed) identically under every tier-pinned compressor. Decode is
    // shared code, but this pins the end-to-end error surface the CI
    // matrix also checks via the CLI.
    let n = 350usize;
    let mut r = threelc_tensor::rng(31);
    use rand::Rng as _;
    let v: Vec<f32> = (0..n)
        .map(|_| {
            if r.gen_bool(0.7) {
                0.0
            } else {
                r.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    let input = Tensor::from_slice(&v);
    let mut cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default());
    let wire = cx.compress(&input).unwrap();
    for pos in 0..wire.len() {
        let mut bad = wire.clone();
        bad[pos] ^= 0xa5;
        let mut outcomes = Vec::new();
        for imp in available_tiers() {
            let cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default())
                .with_codec_impl(imp);
            outcomes.push((imp, cx.decompress(&bad).map(|t| t.as_slice().to_vec())));
        }
        for w in outcomes.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "byte {pos}: {} vs {} diverged",
                w[0].0, w[1].0
            );
        }
    }
}

#[test]
fn scan_kernels_agree_with_scalar_reference() {
    use threelc::kernels;
    let mut r = threelc_tensor::rng(37);
    use rand::Rng as _;
    for _ in 0..200 {
        let len = r.gen_range(0usize..130);
        let h: Vec<u8> = (0..len)
            .map(|_| {
                if r.gen_bool(0.6) {
                    quartic::ZERO_BYTE
                } else {
                    r.gen_range(0u8..=255)
                }
            })
            .collect();
        let want_invalid = h.iter().position(|&b| b > quartic::MAX_QUARTIC_BYTE);
        for imp in available_tiers() {
            assert_eq!(
                kernels::find_invalid_quartic(imp, &h),
                want_invalid,
                "{imp} {h:?}"
            );
            for from in 0..=h.len() {
                let wz = h[from..]
                    .iter()
                    .position(|&b| b == quartic::ZERO_BYTE)
                    .map_or(h.len(), |p| from + p);
                let wn = h[from..]
                    .iter()
                    .position(|&b| b != quartic::ZERO_BYTE)
                    .map_or(h.len(), |p| from + p);
                assert_eq!(
                    kernels::find_zero_byte(imp, &h, from),
                    wz,
                    "{imp} from={from}"
                );
                assert_eq!(
                    kernels::find_nonzero_byte(imp, &h, from),
                    wn,
                    "{imp} from={from}"
                );
            }
        }
    }
}

#[test]
fn simd_tier_is_available_on_avx2_hosts() {
    // The CI dispatch matrix relies on availability reporting being
    // truthful; on x86-64 with AVX2 the Simd tier must not hide.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert!(CodecImpl::Simd.is_available());
        assert_eq!(CodecImpl::best_available(), CodecImpl::Simd);
    }
    assert!(
        available_tiers().len() >= 2,
        "scalar and swar are always available"
    );
}
