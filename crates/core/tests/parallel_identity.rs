//! Property tests pinning the parallel codec paths to the serial ones.
//!
//! The contract (DESIGN.md §9): at every thread count, chunk-parallel
//! compress produces byte-identical wire payloads, leaves a bit-identical
//! error-accumulation buffer, and chunk-parallel decompress returns a
//! bit-identical tensor — for any input, any options, and any step count.
//! `set_parallel_min_values(1)` forces the parallel paths onto tiny
//! tensors, which also stresses the degenerate partitions (more threads
//! than bytes, empty chunks, runs crossing every boundary).

use proptest::prelude::*;
use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::Tensor;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Gradient-like values with enough zeros and near-zeros to produce long
/// zero runs (the interesting case for parallel ZRE boundaries).
fn sparse_float_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        // Unweighted arms: repeating the zero arm biases toward zeros.
        prop_oneof![
            Just(0.0f32),
            Just(0.0f32),
            Just(0.0f32),
            -1.0f32..1.0,
            -0.01f32..0.01,
        ],
        1..700,
    )
}

fn options() -> impl Strategy<Value = ThreeLcOptions> {
    ((1.0f32..1.999), any::<bool>(), any::<bool>()).prop_map(|(s, zre, ea)| ThreeLcOptions {
        sparsity: SparsityMultiplier::new(s).expect("in range"),
        zero_run_encoding: zre,
        error_accumulation: ea,
    })
}

fn forced_parallel(input: &Tensor, opts: ThreeLcOptions, threads: usize) -> ThreeLcCompressor {
    let mut cx = ThreeLcCompressor::with_options(input.shape().clone(), opts).with_threads(threads);
    cx.set_parallel_min_values(1);
    cx
}

proptest! {
    #[test]
    fn parallel_encode_is_byte_identical_to_serial(
        v in sparse_float_vec(),
        opts in options(),
    ) {
        let input = Tensor::from_slice(&v);
        // Three error-accumulation steps: boundary effects compound across
        // steps only if the buffers diverge, so this also pins the buffer.
        for threads in THREAD_COUNTS {
            let mut serial = ThreeLcCompressor::with_options(input.shape().clone(), opts);
            let mut par = forced_parallel(&input, opts, threads);
            for step in 0..3 {
                let a = serial.compress(&input).expect("finite input");
                let b = par.compress(&input).expect("finite input");
                prop_assert!(a == b, "wire diverged: threads={} step={}", threads, step);
                match (serial.residual(), par.residual()) {
                    (Some(ra), Some(rb)) => prop_assert!(
                        ra.as_slice() == rb.as_slice(),
                        "residual diverged: threads={} step={}", threads, step
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "residual presence diverged"),
                }
            }
        }
    }

    #[test]
    fn parallel_decode_is_bit_identical_to_serial(
        v in sparse_float_vec(),
        opts in options(),
        ti in 0usize..THREAD_COUNTS.len(),
    ) {
        let threads = THREAD_COUNTS[ti];
        let input = Tensor::from_slice(&v);
        let mut serial = ThreeLcCompressor::with_options(input.shape().clone(), opts);
        let wire = serial.compress(&input).expect("finite input");
        let want = serial.decompress(&wire).expect("valid payload");
        let par = forced_parallel(&input, opts, threads);
        let got = par.decompress(&wire).expect("valid payload");
        prop_assert_eq!(want.as_slice(), got.as_slice());
        prop_assert_eq!(want.shape(), got.shape());
    }

    #[test]
    fn parallel_decode_rejects_malformed_like_serial(
        payload in prop::collection::vec(any::<u8>(), 0..80),
        n in 1usize..64,
        ti in 0usize..THREAD_COUNTS.len(),
    ) {
        let threads = THREAD_COUNTS[ti];
        let serial = ThreeLcCompressor::new(
            threelc_tensor::Shape::new(&[n]),
            SparsityMultiplier::default(),
        );
        let mut par = ThreeLcCompressor::new(
            threelc_tensor::Shape::new(&[n]),
            SparsityMultiplier::default(),
        )
        .with_threads(threads);
        par.set_parallel_min_values(1);
        match (serial.decompress(&payload), par.decompress(&payload)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.as_slice(), b.as_slice()),
            (Err(a), Err(b)) => prop_assert!(a == b, "errors must match: {a:?} vs {b:?}"),
            (a, b) => prop_assert!(false, "divergent outcomes: serial={a:?} parallel={b:?}"),
        }
    }
}

#[test]
fn all_zero_megatensor_matches_serial_at_every_thread_count() {
    // The paper's 280× case: one escape byte per 70 values. Large enough
    // to clear DEFAULT_PARALLEL_MIN_VALUES without the test knob.
    let n = 70 * 1000;
    let input = Tensor::zeros([n]);
    let mut serial = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default());
    let want = serial.compress(&input).unwrap();
    for threads in THREAD_COUNTS {
        let mut par = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default())
            .with_threads(threads);
        assert_eq!(par.compress(&input).unwrap(), want, "threads={threads}");
    }
}

#[test]
fn large_gradient_tensor_roundtrips_identically() {
    // A realistic dense-ish gradient above the default parallel threshold,
    // exercised end to end without the test knob.
    let mut r = threelc_tensor::rng(17);
    let input = threelc_tensor::Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut r, [48 * 1024]);
    let mut serial = ThreeLcCompressor::new(
        input.shape().clone(),
        SparsityMultiplier::new(1.75).unwrap(),
    );
    let mut wires = Vec::new();
    for _ in 0..3 {
        wires.push(serial.compress(&input).unwrap());
    }
    for threads in THREAD_COUNTS {
        let mut par = ThreeLcCompressor::new(
            input.shape().clone(),
            SparsityMultiplier::new(1.75).unwrap(),
        )
        .with_threads(threads);
        for (step, want) in wires.iter().enumerate() {
            let got = par.compress(&input).unwrap();
            assert_eq!(&got, want, "threads={threads} step={step}");
            assert_eq!(
                par.decompress(&got).unwrap().as_slice(),
                serial.decompress(want).unwrap().as_slice(),
            );
        }
    }
}

#[test]
fn set_threads_zero_means_auto_and_stays_positive() {
    let mut cx = ThreeLcCompressor::new(
        threelc_tensor::Shape::new(&[8]),
        SparsityMultiplier::default(),
    );
    Compressor::set_threads(&mut cx, 0);
    assert!(cx.threads() >= 1);
    Compressor::set_threads(&mut cx, 3);
    assert_eq!(cx.threads(), 3);
}
