//! Zero-run encoding of quartic byte streams (paper §3.3).
//!
//! Quartic encoding is fixed-length, so it cannot exploit the sparseness of
//! the ternary input. Zero-run encoding is a run-length code specialized to
//! quartic output: the input alphabet is 0–242, leaving byte values 243–255
//! free. A run of `k` consecutive [`ZERO_BYTE`]s (`2 ≤ k ≤ 14`) is replaced
//! by the single byte `243 + (k − 2)`; longer runs are split into maximal
//! chunks of 14. A lone zero byte is emitted unchanged.
//!
//! The code is byte-aligned — no bit-level operations and no lookup tables —
//! which is what keeps 3LC's computation overhead low compared to entropy
//! coders (§3.3, §6).

use crate::quartic::ZERO_BYTE;
use crate::DecodeError;

/// Shortest zero-byte run that gets replaced by an escape code.
pub const MIN_RUN: usize = 2;

/// Longest zero-byte run a single escape code can represent.
pub const MAX_RUN: usize = 14;

/// First escape code: `ESCAPE_BASE + (k - MIN_RUN)` encodes a run of `k`.
pub const ESCAPE_BASE: u8 = 243;

/// Encodes a quartic byte stream with zero-run encoding.
///
/// # Errors
///
/// Returns [`DecodeError::InvalidQuarticByte`] if the input contains a byte
/// above 242 (not a valid quartic stream).
///
/// ```
/// use threelc::zrle;
/// // Three zero bytes collapse into one escape byte 243 + (3-2) = 244.
/// assert_eq!(zrle::encode(&[121, 121, 121])?, vec![244]);
/// // A lone zero byte stays as-is.
/// assert_eq!(zrle::encode(&[7, 121, 9])?, vec![7, 121, 9]);
/// # Ok::<(), threelc::DecodeError>(())
/// ```
pub fn encode(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    encode_with_runs(input, |_| {})
}

/// [`encode`], reporting each zero-byte run it consumes to `on_run`.
///
/// The callback receives run lengths exactly as the encoder emits them —
/// runs longer than [`MAX_RUN`] appear as multiple chunks of at most
/// [`MAX_RUN`], and lone zero bytes are reported as runs of 1. This lets
/// telemetry observe the run-length distribution from the encoding pass
/// itself, with no second scan over the data.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encode_with_runs(input: &[u8], on_run: impl FnMut(usize)) -> Result<Vec<u8>, DecodeError> {
    encode_with_runs_impl(crate::kernels::active(), input, on_run)
}

/// [`encode_with_runs`] on an explicit codec tier.
///
/// The scan-structured rewrite of the original byte-at-a-time loop:
/// validate the whole stream, then alternate between bulk-copying the
/// literal span up to the next zero byte and chunking the zero run up to
/// the next non-zero byte into escapes of at most [`MAX_RUN`]. Emission
/// order, run chunking, `on_run` reports, and error offsets are identical
/// to the original loop on every tier (see [`crate::kernels`]).
pub fn encode_with_runs_impl(
    imp: crate::kernels::CodecImpl,
    input: &[u8],
    mut on_run: impl FnMut(usize),
) -> Result<Vec<u8>, DecodeError> {
    if let Some(offset) = crate::kernels::find_invalid_quartic(imp, input) {
        return Err(DecodeError::InvalidQuarticByte {
            byte: input[offset],
            offset,
        });
    }
    let mut out = Vec::with_capacity(input.len());
    let mut i = 0;
    while i < input.len() {
        // Literal span: everything up to the next zero byte passes
        // through unchanged, as one bulk copy.
        let z = crate::kernels::find_zero_byte(imp, input, i);
        out.extend_from_slice(&input[i..z]);
        if z == input.len() {
            break;
        }
        // Zero run: measure it whole, then emit MAX_RUN-sized chunks
        // exactly as the byte-at-a-time encoder did.
        let end = crate::kernels::find_nonzero_byte(imp, input, z);
        let mut remaining = end - z;
        while remaining > 0 {
            let run = remaining.min(MAX_RUN);
            on_run(run);
            if run >= MIN_RUN {
                out.push(ESCAPE_BASE + (run - MIN_RUN) as u8);
            } else {
                out.push(ZERO_BYTE);
            }
            remaining -= run;
        }
        i = end;
    }
    Ok(out)
}

/// Decodes a zero-run-encoded stream back into quartic bytes.
///
/// # Errors
///
/// This function cannot fail structurally (every byte 0–255 is meaningful),
/// but callers should verify the decoded length against the expected
/// quartic length; [`decode_exact`] does that check.
pub fn decode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 2);
    for &b in input {
        if b >= ESCAPE_BASE {
            let run = (b - ESCAPE_BASE) as usize + MIN_RUN;
            out.resize(out.len() + run, ZERO_BYTE);
        } else {
            out.push(b);
        }
    }
    out
}

/// Returns the serial-encoder token boundary at or after position `p`.
///
/// The serial encoder is memoryless at token boundaries: its only state is
/// the input cursor, literals are single-byte tokens, and zero runs are
/// consumed in chunks of at most [`MAX_RUN`] starting from the first zero
/// after a non-zero byte (or the stream start). Encoding the segments
/// between any set of token boundaries independently and concatenating the
/// results therefore reproduces the serial output byte for byte — this is
/// what makes chunk-parallel ZRE bit-identical.
///
/// `last_nonzero_before` is the index of the last non-zero byte strictly
/// before `p`, or `None` if `input[..p]` is all zeros. (Callers track this
/// during the quartic pass so no backward scan is needed here; the forward
/// scan below is bounded by [`MAX_RUN`] bytes.)
pub fn align_token_boundary(input: &[u8], p: usize, last_nonzero_before: Option<usize>) -> usize {
    debug_assert!(p <= input.len());
    debug_assert!(last_nonzero_before.is_none_or(|i| i < p && input[i] != ZERO_BYTE));
    if p == input.len() {
        return p;
    }
    // The zero run containing position p (if any) starts right after the
    // last non-zero byte.
    let run_start = last_nonzero_before.map_or(0, |i| i + 1);
    let off = (p - run_start) % MAX_RUN;
    if off == 0 {
        // Either input[p - 1] is non-zero (p starts a fresh token) or the
        // run has consumed whole MAX_RUN chunks up to p.
        return p;
    }
    // The token covering p ends at run end or after MAX_RUN zeros,
    // whichever comes first. Only a bounded forward peek is needed.
    let window = (MAX_RUN - off).min(input.len() - p);
    let to_run_end = input[p..p + window]
        .iter()
        .position(|&b| b != ZERO_BYTE)
        .unwrap_or(window);
    p + to_run_end
}

/// Number of quartic bytes a ZRE stream (or any slice of one) decodes to.
///
/// Escape bytes expand to their run length; everything else is one byte.
/// Used by the parallel decoder's sizing pass.
pub fn decoded_len(input: &[u8]) -> usize {
    input
        .iter()
        .map(|&b| {
            if b >= ESCAPE_BASE {
                (b - ESCAPE_BASE) as usize + MIN_RUN
            } else {
                1
            }
        })
        .sum()
}

/// Decodes a ZRE stream into an exactly-sized output slice.
///
/// # Panics
///
/// Panics if `out.len() != decoded_len(input)`; callers size the output
/// with [`decoded_len`] first.
pub fn decode_into(input: &[u8], out: &mut [u8]) {
    let mut pos = 0;
    for &b in input {
        if b >= ESCAPE_BASE {
            let run = (b - ESCAPE_BASE) as usize + MIN_RUN;
            out[pos..pos + run].fill(ZERO_BYTE);
            pos += run;
        } else {
            out[pos] = b;
            pos += 1;
        }
    }
    assert_eq!(pos, out.len(), "output slice must match decoded length");
}

/// Decodes and verifies that exactly `expected_len` quartic bytes result.
///
/// # Errors
///
/// Returns [`DecodeError::BodyLengthMismatch`] if the decoded length
/// differs from `expected_len`.
pub fn decode_exact(input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecodeError> {
    let out = decode(input);
    if out.len() != expected_len {
        return Err(DecodeError::BodyLengthMismatch {
            decoded: out.len(),
            expected: expected_len,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_zero_byte_unchanged() {
        assert_eq!(encode(&[121]).unwrap(), vec![121]);
        assert_eq!(encode(&[5, 121, 6]).unwrap(), vec![5, 121, 6]);
    }

    #[test]
    fn short_runs_escape() {
        assert_eq!(encode(&[121, 121]).unwrap(), vec![243]);
        assert_eq!(encode(&[121; 14]).unwrap(), vec![255]);
    }

    #[test]
    fn long_runs_split_into_max_chunks() {
        // 15 zeros → one max-run (14) + one lone zero byte.
        assert_eq!(encode(&[121; 15]).unwrap(), vec![255, 121]);
        // 16 zeros → 14 + 2.
        assert_eq!(encode(&[121; 16]).unwrap(), vec![255, 243]);
        // 28 zeros → 14 + 14.
        assert_eq!(encode(&[121; 28]).unwrap(), vec![255, 255]);
    }

    #[test]
    fn non_zero_bytes_pass_through() {
        let data = [0u8, 1, 100, 242, 120, 122];
        assert_eq!(encode(&data).unwrap(), data.to_vec());
    }

    #[test]
    fn encode_rejects_invalid_quartic() {
        assert!(matches!(
            encode(&[243]),
            Err(DecodeError::InvalidQuarticByte {
                byte: 243,
                offset: 0
            })
        ));
        assert!(matches!(
            encode(&[121, 255]),
            Err(DecodeError::InvalidQuarticByte { offset: 1, .. })
        ));
    }

    #[test]
    fn decode_inverts_encode() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![121],
            vec![121; 2],
            vec![121; 14],
            vec![121; 15],
            vec![121; 29],
            vec![1, 121, 121, 2, 121, 121, 121, 3],
            vec![242, 0, 121],
        ];
        for case in cases {
            let enc = encode(&case).unwrap();
            assert_eq!(decode(&enc), case, "case {case:?}");
        }
    }

    #[test]
    fn decode_exact_length_check() {
        let enc = encode(&[121; 10]).unwrap();
        assert!(decode_exact(&enc, 10).is_ok());
        assert!(matches!(
            decode_exact(&enc, 11),
            Err(DecodeError::BodyLengthMismatch {
                decoded: 10,
                expected: 11
            })
        ));
    }

    #[test]
    fn compression_ratio_on_all_zero_stream() {
        // An all-zero quartic stream compresses ~14×: each escape byte
        // covers 14 zero bytes (70 ternary values).
        let input = vec![121u8; 14 * 100];
        let enc = encode(&input).unwrap();
        assert_eq!(enc.len(), 100);
    }

    #[test]
    fn mixed_stream_roundtrip_matches_paper_figure3() {
        // Figure 3 step (4): quartic bytes [113, 121, 121, 121] encode to
        // [113, 244] (run of 3 → 243 + 1).
        let quartic = [113u8, 121, 121, 121];
        assert_eq!(encode(&quartic).unwrap(), vec![113, 244]);
    }

    #[test]
    fn empty_stream() {
        assert!(encode(&[]).unwrap().is_empty());
        assert!(decode(&[]).is_empty());
    }

    /// Token boundaries the serial encoder actually visits (its cursor
    /// positions), for brute-force comparison with `align_token_boundary`.
    fn serial_token_starts(input: &[u8]) -> Vec<usize> {
        let mut starts = vec![];
        let mut i = 0;
        while i < input.len() {
            starts.push(i);
            if input[i] != ZERO_BYTE {
                i += 1;
            } else {
                let mut run = 1;
                while run < MAX_RUN && i + run < input.len() && input[i + run] == ZERO_BYTE {
                    run += 1;
                }
                i += run;
            }
        }
        starts.push(input.len());
        starts
    }

    #[test]
    fn align_token_boundary_matches_serial_cursor() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![121; 40],
            vec![7; 10],
            vec![1, 121, 121, 121, 2, 121, 121, 121, 121, 121, 3],
            {
                // 30 zeros, a literal, 20 zeros.
                let mut v = vec![121u8; 30];
                v.push(9);
                v.extend(vec![121u8; 20]);
                v
            },
        ];
        for input in cases {
            let starts = serial_token_starts(&input);
            for p in 0..=input.len() {
                let last_nz = input[..p].iter().rposition(|&b| b != ZERO_BYTE);
                let b = align_token_boundary(&input, p, last_nz);
                assert!(b >= p && b <= input.len());
                assert!(
                    starts.contains(&b),
                    "aligned {b} from p={p} is not a serial token start in {input:?}"
                );
                // The boundary must also be the *nearest* one at or after p.
                let nearest = *starts.iter().find(|&&s| s >= p).unwrap();
                assert_eq!(b, nearest, "p={p} in {input:?}");
            }
        }
    }

    #[test]
    fn segmented_encode_at_aligned_boundaries_matches_serial() {
        let mut input = vec![121u8; 37];
        input.push(5);
        input.extend(vec![121u8; 29]);
        input.push(6);
        let serial = encode(&input).unwrap();
        for split in 0..=input.len() {
            let last_nz = input[..split].iter().rposition(|&b| b != ZERO_BYTE);
            let b = align_token_boundary(&input, split, last_nz);
            let mut joined = encode(&input[..b]).unwrap();
            joined.extend(encode(&input[b..]).unwrap());
            assert_eq!(joined, serial, "split at {split} (aligned {b})");
        }
    }

    #[test]
    fn decoded_len_and_decode_into_roundtrip() {
        let mut input = vec![121u8; 17];
        input.push(7);
        input.push(121);
        let enc = encode(&input).unwrap();
        assert_eq!(decoded_len(&enc), input.len());
        let mut out = vec![0u8; input.len()];
        decode_into(&enc, &mut out);
        assert_eq!(out, input);
        // Segments of the encoded stream decode independently.
        let mid = enc.len() / 2;
        let (a, b) = enc.split_at(mid);
        let mut out2 = vec![0u8; input.len()];
        let (oa, ob) = out2.split_at_mut(decoded_len(a));
        decode_into(a, oa);
        decode_into(b, ob);
        assert_eq!(out2, input);
    }

    #[test]
    fn encode_with_runs_reports_the_emitted_chunks() {
        // 17 zeros split at MAX_RUN: chunks of 14 and 3; the lone trailing
        // zero after a non-zero byte is a run of 1.
        let mut input = vec![121u8; 17];
        input.push(7);
        input.push(121);
        let mut runs = Vec::new();
        let enc = encode_with_runs(&input, |r| runs.push(r)).unwrap();
        assert_eq!(runs, vec![14, 3, 1]);
        assert_eq!(
            enc,
            encode(&input).unwrap(),
            "callback must not change output"
        );
    }
}
