//! Error types shared by the compression schemes.

use std::error::Error;
use std::fmt;
use threelc_tensor::TensorError;

/// Error produced while compressing a tensor.
///
/// (`Eq` cannot be derived: [`CompressError::InvalidSparsity`] carries
/// the offending `f32`, which may be NaN.)
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The input tensor's shape does not match the shape this compressor
    /// was constructed for (the error-accumulation buffer is per-tensor).
    ShapeMismatch {
        /// Shape the compressor was bound to.
        expected: Vec<usize>,
        /// Shape of the offending input.
        actual: Vec<usize>,
    },
    /// The input contained a non-finite value (NaN or ±inf); quantization
    /// scales would be meaningless.
    NonFiniteInput,
    /// A sparsity multiplier outside `[1, 2)` (or NaN/±inf) reached a
    /// validation point: a CLI flag, `ThreeLcOptions`, or a policy
    /// decision. Values outside the range would silently mis-encode
    /// (s < 1 re-quantizes the maximum, s ≥ 2 zeroes everything).
    InvalidSparsity {
        /// The rejected value.
        value: f32,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::ShapeMismatch { expected, actual } => write!(
                f,
                "input shape {actual:?} does not match compressor shape {expected:?}"
            ),
            CompressError::NonFiniteInput => {
                write!(f, "input tensor contains a non-finite value")
            }
            CompressError::InvalidSparsity { value } => {
                write!(f, "sparsity multiplier {value} is outside [1.0, 2.0)")
            }
        }
    }
}

impl Error for CompressError {}

/// Error produced while decoding a compressed payload.
///
/// Decoders must never panic on malformed input; every structural problem
/// maps to a variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload is shorter than its fixed header.
    TruncatedHeader {
        /// Bytes actually present.
        have: usize,
        /// Bytes the header requires.
        need: usize,
    },
    /// The payload's version/flags byte is not recognized.
    UnknownFormat {
        /// The offending flags byte.
        flags: u8,
    },
    /// The element count recorded in the payload does not match the tensor
    /// shape the decoder was constructed for.
    ElementCountMismatch {
        /// Count in the payload.
        payload: usize,
        /// Count implied by the bound shape.
        expected: usize,
    },
    /// The encoded body decodes to the wrong number of values.
    BodyLengthMismatch {
        /// Values produced by decoding.
        decoded: usize,
        /// Values expected.
        expected: usize,
    },
    /// A quartic byte exceeded the valid range 0–242.
    InvalidQuarticByte {
        /// The offending byte value.
        byte: u8,
        /// Offset within the quartic stream.
        offset: usize,
    },
    /// A scale or other scalar field is non-finite.
    NonFiniteScale,
    /// Scheme-specific structural error.
    Malformed {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedHeader { have, need } => {
                write!(f, "payload truncated: {have} bytes, header needs {need}")
            }
            DecodeError::UnknownFormat { flags } => {
                write!(f, "unknown payload format flags {flags:#04x}")
            }
            DecodeError::ElementCountMismatch { payload, expected } => write!(
                f,
                "payload element count {payload} does not match bound shape ({expected})"
            ),
            DecodeError::BodyLengthMismatch { decoded, expected } => {
                write!(f, "decoded {decoded} values, expected {expected}")
            }
            DecodeError::InvalidQuarticByte { byte, offset } => {
                write!(f, "invalid quartic byte {byte} at offset {offset}")
            }
            DecodeError::NonFiniteScale => write!(f, "payload scale is non-finite"),
            DecodeError::Malformed { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl Error for DecodeError {}

impl From<TensorError> for DecodeError {
    fn from(err: TensorError) -> Self {
        DecodeError::Malformed {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompressError>();
        assert_send_sync::<DecodeError>();
    }

    #[test]
    fn display_messages_nonempty() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(CompressError::NonFiniteInput),
            Box::new(CompressError::InvalidSparsity { value: f32::NAN }),
            Box::new(DecodeError::NonFiniteScale),
            Box::new(DecodeError::UnknownFormat { flags: 0xff }),
            Box::new(DecodeError::Malformed {
                reason: "bad".into(),
            }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::RankMismatch {
            expected: 2,
            actual: 3,
        };
        let de: DecodeError = te.into();
        assert!(matches!(de, DecodeError::Malformed { .. }));
    }
}
