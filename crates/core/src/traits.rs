//! The [`Compressor`] trait shared by 3LC and the baseline schemes.

use crate::{CompressError, DecodeError};
use serde::{Deserialize, Serialize};
use threelc_tensor::Tensor;

/// A point-to-point, per-tensor state-change compressor.
///
/// One `Compressor` instance owns the compression state (such as 3LC's
/// error-accumulation buffer) for **one** tensor — exactly the paper's
/// "compression context" (§3, Figure 2). Gradients pushed from a worker and
/// model deltas pulled from a server each get their own context.
///
/// Compression is stateful (`&mut self`); decompression is stateless
/// (`&self`), which is what allows the paper's *shared* pull compression —
/// a server compresses model deltas once and every worker decompresses the
/// same payload.
///
/// # Contract
///
/// - `decompress(compress(t))` yields a tensor of the same shape as `t`.
/// - Decoding never panics on malformed payloads; it returns a
///   [`DecodeError`].
/// - Lossy schemes may return a different tensor; schemes with error
///   accumulation must fold `t − decompress(compress(t))` into later calls.
pub trait Compressor: Send {
    /// Human-readable scheme name as used in the paper's tables, e.g.
    /// `"3LC (s=1.00)"` or `"32-bit float"`.
    fn name(&self) -> String;

    /// Compresses one state-change tensor into a wire payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CompressError`] if the tensor does not match the shape
    /// this context was created for, or contains non-finite values.
    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError>;

    /// Decompresses a wire payload produced by this context.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for any structurally malformed payload.
    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError>;

    /// Decodes a wire payload to its raw quantization symbols, without
    /// materializing a `Tensor`.
    ///
    /// Schemes whose payloads are `symbols × scale` (3LC's ternary
    /// `{-1, 0, 1}`) write the symbols into `out` (resized to the tensor's
    /// element count) and return `Ok(Some(scale))`, such that
    /// `decompress(payload)[e] == out[e] as f32 * scale` bit for bit.
    /// Servers use this to aggregate in the symbol domain — summing
    /// `scale · sym` per worker, or integer symbol lanes per scale group —
    /// without a per-worker tensor allocation and dequantize pass.
    ///
    /// The default returns `Ok(None)`: the scheme has no symbol form and
    /// callers must fall back to [`decompress`](Self::decompress). `out`
    /// is unspecified after a `None` or error return.
    ///
    /// # Errors
    ///
    /// Exactly the [`DecodeError`]s `decompress` reports for the same
    /// payload, so callers can treat either entry point as the validator.
    fn decompress_symbols(
        &self,
        _payload: &[u8],
        _out: &mut Vec<i8>,
    ) -> Result<Option<f32>, DecodeError> {
        Ok(None)
    }

    /// The error-accumulation (residual) buffer, if this scheme keeps one.
    ///
    /// Exposed for tests and instrumentation; `None` for stateless schemes.
    fn residual(&self) -> Option<&Tensor> {
        None
    }

    /// The squared L2 norm of the residual buffer (0.0 for stateless
    /// schemes). A cheap O(n) read the telemetry watchdog sums across a
    /// replica's contexts each step to track residual blowups; kept
    /// separate from [`residual`](Self::residual) so implementations can
    /// answer without materializing a tensor view.
    fn residual_sq(&self) -> f64 {
        self.residual().map_or(0.0, |r| {
            r.as_slice().iter().map(|&x| x as f64 * x as f64).sum()
        })
    }

    /// Requests that this context use up to `threads` worker threads for
    /// large tensors (`0` means one thread per hardware core).
    ///
    /// A performance hint only: implementations **must** produce bit-for-bit
    /// identical payloads and decoded tensors at every thread count —
    /// changing it mid-stream is always safe. The default ignores the hint
    /// (serial schemes simply stay serial).
    fn set_threads(&mut self, _threads: usize) {}

    /// Changes the sparsity multiplier for **subsequent** `compress` calls
    /// without rebuilding the context (the error-accumulation buffer and
    /// every other piece of stream state survive).
    ///
    /// This is the mechanism behind adaptive compression policies: the
    /// multiplier can change per tensor per step. Decoding needs no
    /// matching call — the scale travels inside every payload, so
    /// `decompress` is unaffected by the encoder's current setting. The
    /// default is a no-op for schemes without a sparsity knob.
    fn set_sparsity(&mut self, _s: crate::SparsityMultiplier) {}
}

/// Running traffic statistics for a stream of compressed tensors.
///
/// Tracks exactly the quantities the paper's Table 2 and Figure 9 report:
/// the end-to-end compression ratio relative to 32-bit floats and the
/// average compressed bits per state-change value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Total state-change values compressed.
    pub values: u64,
    /// Total wire bytes produced.
    pub wire_bytes: u64,
    /// Number of tensors (payloads) compressed.
    pub payloads: u64,
}

impl CompressionStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one payload of `wire_bytes` bytes covering `values` values.
    pub fn record(&mut self, values: usize, wire_bytes: usize) {
        self.values += values as u64;
        self.wire_bytes += wire_bytes as u64;
        self.payloads += 1;
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.values += other.values;
        self.wire_bytes += other.wire_bytes;
        self.payloads += other.payloads;
    }

    /// Average compressed bits per state-change value.
    pub fn bits_per_value(&self) -> f64 {
        if self.values == 0 {
            0.0
        } else {
            self.wire_bytes as f64 * 8.0 / self.values as f64
        }
    }

    /// End-to-end compression ratio versus 32-bit floats (higher is better).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            0.0
        } else {
            self.values as f64 * 4.0 / self.wire_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CompressionStats::new();
        s.record(100, 10);
        s.record(100, 10);
        assert_eq!(s.values, 200);
        assert_eq!(s.wire_bytes, 20);
        assert_eq!(s.payloads, 2);
        assert!((s.bits_per_value() - 0.8).abs() < 1e-12);
        assert!((s.compression_ratio() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zero() {
        let s = CompressionStats::new();
        assert_eq!(s.bits_per_value(), 0.0);
        assert_eq!(s.compression_ratio(), 0.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = CompressionStats::new();
        a.record(10, 4);
        let mut b = CompressionStats::new();
        b.record(30, 4);
        a.merge(&b);
        assert_eq!(a.values, 40);
        assert_eq!(a.wire_bytes, 8);
        assert_eq!(a.payloads, 2);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &mut dyn Compressor) {}
    }
}
