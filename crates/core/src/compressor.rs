//! The stateful 3LC compression context and its wire format.

use crate::telemetry::{l2_norm, CompressTelemetry};
use crate::tlq::{SparsityMultiplier, TernaryTensor};
use crate::{quartic, zrle, CompressError, Compressor, DecodeError};
use std::time::Instant;
use threelc_obs::{log_enabled, Level};
use threelc_tensor::{Shape, Tensor};

/// Wire-format header: 1 flags byte + 4-byte `f32` scale + 4-byte `u32`
/// element count.
const HEADER_LEN: usize = 9;

/// Flags bit: the body is zero-run encoded.
const FLAG_ZRE: u8 = crate::sizing::WIRE_FLAG_ZRE;

/// Configuration for a [`ThreeLcCompressor`].
///
/// The defaults reproduce the paper's full design: error accumulation on,
/// zero-run encoding on, `s = 1.0`. The switches exist for the ablations the
/// evaluation reports (Table 2's "No ZRE" row; the stochastic-quantization
/// comparison uses a separate scheme in `threelc-baselines`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeLcOptions {
    /// The sparsity multiplier `s` (compression-level knob).
    pub sparsity: SparsityMultiplier,
    /// Apply zero-run encoding after quartic encoding.
    pub zero_run_encoding: bool,
    /// Correct quantization errors with a per-tensor accumulation buffer.
    pub error_accumulation: bool,
}

impl ThreeLcOptions {
    /// Options with a given sparsity multiplier and everything else default.
    pub fn with_sparsity(sparsity: SparsityMultiplier) -> Self {
        ThreeLcOptions {
            sparsity,
            ..Default::default()
        }
    }
}

impl Default for ThreeLcOptions {
    fn default() -> Self {
        ThreeLcOptions {
            sparsity: SparsityMultiplier::default(),
            zero_run_encoding: true,
            error_accumulation: true,
        }
    }
}

/// A 3LC compression context for one tensor (paper §3, Figure 3).
///
/// Owns the error-accumulation buffer. Each [`compress`](Compressor::compress)
/// call performs, in order:
///
/// 1. accumulate the input into the local buffer,
/// 2. 3-value quantization with sparsity multiplication of the buffer,
/// 3. local dequantization and storing the remaining error back into the
///    buffer,
/// 4. quartic encoding,
/// 5. zero-run encoding (if enabled).
///
/// ```
/// use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor};
/// use threelc_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cx = ThreeLcCompressor::new((&[512usize]).into(), SparsityMultiplier::new(1.75)?);
/// let zeros = Tensor::zeros(&[512]);
/// let wire = cx.compress(&zeros)?;
/// // An all-zero tensor compresses to the 9-byte header plus a handful of
/// // run bytes — the paper's hypothetical 280× case.
/// assert!(wire.len() < 512 * 4 / 100);
/// assert_eq!(cx.decompress(&wire)?, zeros);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThreeLcCompressor {
    shape: Shape,
    options: ThreeLcOptions,
    /// Error accumulation buffer (zeros when `error_accumulation` is off).
    buffer: Tensor,
    /// Cached handles to the global `threelc.*` metrics.
    telemetry: CompressTelemetry,
}

impl ThreeLcCompressor {
    /// Creates a context for tensors of `shape` with default options and
    /// the given sparsity multiplier.
    pub fn new(shape: Shape, sparsity: SparsityMultiplier) -> Self {
        Self::with_options(shape, ThreeLcOptions::with_sparsity(sparsity))
    }

    /// Creates a context with explicit options.
    pub fn with_options(shape: Shape, options: ThreeLcOptions) -> Self {
        let buffer = Tensor::zeros(shape.clone());
        ThreeLcCompressor {
            shape,
            options,
            buffer,
            telemetry: CompressTelemetry::from_global(),
        }
    }

    /// The options this context was created with.
    pub fn options(&self) -> &ThreeLcOptions {
        &self.options
    }

    /// The tensor shape this context is bound to.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    fn check_shape(&self, input: &Tensor) -> Result<(), CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Compressor for ThreeLcCompressor {
    fn name(&self) -> String {
        let mut name = format!("3LC (s={:.2})", self.options.sparsity.value());
        if !self.options.zero_run_encoding {
            name.push_str(" no-ZRE");
        }
        if !self.options.error_accumulation {
            name.push_str(" no-EA");
        }
        name
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        self.check_shape(input)?;

        // Step (1): accumulate the input into the local buffer.
        let quantized = if self.options.error_accumulation {
            self.buffer
                .add_assign(input)
                .expect("buffer shape is validated");
            // Step (2): quantize the accumulated sum.
            let q = TernaryTensor::quantize(&self.buffer, self.options.sparsity)?;
            // Steps (a)+(b): local dequantization; remaining error stays in
            // the buffer.
            let dequantized = q.dequantize();
            self.buffer
                .sub_assign(&dequantized)
                .expect("dequantized shape matches buffer");
            q
        } else {
            TernaryTensor::quantize(input, self.options.sparsity)?
        };

        // The expensive probes (an O(n) residual pass and a per-run
        // closure) only run when debug logging is enabled; the always-on
        // telemetry below is a few relaxed atomic adds per call.
        let debug_probes = log_enabled(Level::Debug);
        if debug_probes && self.options.error_accumulation {
            self.telemetry
                .residual_l2
                .record(l2_norm(self.buffer.as_slice()));
        }

        // Step (3): quartic encoding.
        let quartic_start = Instant::now();
        let quartic_bytes = quartic::encode(quantized.values());
        self.telemetry
            .quartic_seconds
            .record(quartic_start.elapsed().as_secs_f64());

        // Step (4): zero-run encoding.
        let (body, flags) = if self.options.zero_run_encoding {
            let zre_start = Instant::now();
            let zre = if debug_probes {
                let run_hist = &self.telemetry.zero_run_length;
                zrle::encode_with_runs(&quartic_bytes, |run| run_hist.record(run as f64))
            } else {
                zrle::encode(&quartic_bytes)
            }
            .expect("quartic output is always in range 0..=242");
            self.telemetry
                .zre_seconds
                .record(zre_start.elapsed().as_secs_f64());
            (zre, FLAG_ZRE)
        } else {
            (quartic_bytes, 0)
        };

        let mut wire = Vec::with_capacity(HEADER_LEN + body.len());
        wire.push(flags);
        wire.extend_from_slice(&quantized.scale().to_le_bytes());
        wire.extend_from_slice(&(quantized.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        let raw_bytes = quantized.len() * std::mem::size_of::<f32>();
        self.telemetry
            .ratio
            .record(raw_bytes as f64 / wire.len() as f64);
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let start = Instant::now();
        let out = self.decompress_inner(payload);
        self.telemetry
            .decompress_seconds
            .record(start.elapsed().as_secs_f64());
        out
    }

    fn residual(&self) -> Option<&Tensor> {
        if self.options.error_accumulation {
            Some(&self.buffer)
        } else {
            None
        }
    }
}

impl ThreeLcCompressor {
    fn decompress_inner(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        if payload.len() < HEADER_LEN {
            return Err(DecodeError::TruncatedHeader {
                have: payload.len(),
                need: HEADER_LEN,
            });
        }
        let flags = payload[0];
        if flags & !FLAG_ZRE != 0 {
            return Err(DecodeError::UnknownFormat { flags });
        }
        let scale = f32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
        if !scale.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
        if count != self.shape.num_elements() {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: self.shape.num_elements(),
            });
        }
        let body = &payload[HEADER_LEN..];
        let quartic_len = count.div_ceil(quartic::VALUES_PER_BYTE);
        let quartic_bytes = if flags & FLAG_ZRE != 0 {
            zrle::decode_exact(body, quartic_len)?
        } else {
            if body.len() != quartic_len {
                return Err(DecodeError::BodyLengthMismatch {
                    decoded: body.len() * quartic::VALUES_PER_BYTE,
                    expected: count,
                });
            }
            body.to_vec()
        };
        let ternary = quartic::decode(&quartic_bytes, count)?;
        Ok(TernaryTensor::from_parts(self.shape.clone(), ternary, scale).dequantize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize, s: f32) -> ThreeLcCompressor {
        ThreeLcCompressor::new(Shape::new(&[n]), SparsityMultiplier::new(s).unwrap())
    }

    #[test]
    fn roundtrip_shape_and_error_bound() {
        let input = Tensor::from_vec(vec![0.31, -0.17, 0.05, 0.44, -0.29, 0.0], [2, 3]);
        let mut cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default());
        let wire = cx.compress(&input).unwrap();
        let out = cx.decompress(&wire).unwrap();
        assert_eq!(out.shape(), input.shape());
        let m = input.max_abs();
        assert!(input.sub(&out).unwrap().max_abs() <= m / 2.0 + 1e-6);
    }

    #[test]
    fn zero_tensor_280x_compression() {
        // §3.3: "In a hypothetical case of compressing a zero 32-bit
        // floating-point tensor, the combination of all techniques in 3LC
        // reaches a compression ratio of 280×." One escape byte covers 14
        // quartic bytes = 70 values = 280 input bytes.
        let n = 70 * 1000;
        let mut cx = ctx(n, 1.0);
        let wire = cx.compress(&Tensor::zeros([n])).unwrap();
        let body = wire.len() - HEADER_LEN;
        assert_eq!(body, 1000, "all-zero body should be exactly n/70 bytes");
        let ratio = (n * 4) as f64 / body as f64;
        assert!((ratio - 280.0).abs() < 1e-9);
    }

    #[test]
    fn error_accumulation_recovers_dropped_updates() {
        // A persistent small signal below the quantization threshold must
        // eventually be transmitted thanks to the accumulation buffer.
        let n = 8;
        let mut cx = ctx(n, 1.0);
        // One big value sets M; the small values individually quantize to 0.
        let mut input = vec![0.04f32; n];
        input[0] = 1.0;
        let input = Tensor::from_vec(input, [n]);
        let mut recovered = Tensor::zeros([n]);
        for _ in 0..30 {
            let wire = cx.compress(&input).unwrap();
            recovered
                .add_assign(&cx.decompress(&wire).unwrap())
                .unwrap();
        }
        // After 30 steps the cumulative transmitted sum approximates the
        // cumulative input sum (30 × 0.04 = 1.2 at index 1..n).
        let total_in = input.scale(30.0);
        let err = total_in.sub(&recovered).unwrap().max_abs();
        assert!(err <= 1.0, "cumulative error {err} should stay bounded");
        assert!(
            recovered.as_slice()[1] > 0.0,
            "small values must eventually transmit"
        );
    }

    #[test]
    fn no_error_accumulation_never_sends_small_values() {
        let n = 8;
        let opts = ThreeLcOptions {
            error_accumulation: false,
            ..Default::default()
        };
        let mut cx = ThreeLcCompressor::with_options(Shape::new(&[n]), opts);
        let mut input = vec![0.04f32; n];
        input[0] = 1.0;
        let input = Tensor::from_vec(input, [n]);
        for _ in 0..5 {
            let wire = cx.compress(&input).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.as_slice()[1], 0.0);
        }
        assert!(cx.residual().is_none());
    }

    #[test]
    fn residual_tracks_quantization_error() {
        let input = Tensor::from_slice(&[0.3, 0.1, -0.06, 0.0]);
        let mut cx = ctx(4, 1.0);
        let wire = cx.compress(&input).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let expected_residual = input.sub(&out).unwrap();
        assert!(cx.residual().unwrap().approx_eq(&expected_residual, 1e-7));
    }

    #[test]
    fn zre_flag_roundtrip_both_ways() {
        let input = Tensor::from_vec(
            (0..100)
                .map(|i| if i % 10 == 0 { 0.5 } else { 0.0 })
                .collect(),
            [100],
        );
        for zre in [true, false] {
            let opts = ThreeLcOptions {
                zero_run_encoding: zre,
                ..Default::default()
            };
            let mut cx = ThreeLcCompressor::with_options(Shape::new(&[100]), opts);
            let wire = cx.compress(&input).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.shape().dims(), &[100]);
            if !zre {
                assert_eq!(wire.len(), HEADER_LEN + 20);
            }
        }
    }

    #[test]
    fn zre_shrinks_sparse_payloads() {
        let n = 1000;
        let mut sparse = vec![0.0f32; n];
        sparse[500] = 1.0;
        let sparse = Tensor::from_vec(sparse, [n]);
        let mut with = ctx(n, 1.0);
        let mut without = ThreeLcCompressor::with_options(
            Shape::new(&[n]),
            ThreeLcOptions {
                zero_run_encoding: false,
                ..Default::default()
            },
        );
        let w = with.compress(&sparse).unwrap();
        let wo = without.compress(&sparse).unwrap();
        assert!(
            w.len() * 2 < wo.len(),
            "ZRE ({}) should at least halve no-ZRE ({})",
            w.len(),
            wo.len()
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut cx = ctx(4, 1.0);
        let err = cx.compress(&Tensor::zeros([5])).unwrap_err();
        assert!(matches!(err, CompressError::ShapeMismatch { .. }));
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        let cx = ctx(10, 1.0);
        // Truncated header.
        assert!(matches!(
            cx.decompress(&[1, 2, 3]),
            Err(DecodeError::TruncatedHeader { .. })
        ));
        // Unknown flags.
        let mut bad = vec![0x80u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::UnknownFormat { .. })
        ));
        // Wrong element count.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&11u32.to_le_bytes());
        bad.extend(vec![121u8; 3]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::ElementCountMismatch { .. })
        ));
        // Non-finite scale.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&f32::NAN.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.extend(vec![121u8; 2]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::NonFiniteScale)
        ));
        // Body too short (no ZRE flag set).
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.push(121);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
        // Invalid quartic byte inside a non-ZRE body.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.extend([250u8, 121]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::InvalidQuarticByte { .. })
        ));
    }

    #[test]
    fn name_reflects_options() {
        assert_eq!(ctx(1, 1.0).name(), "3LC (s=1.00)");
        let cx = ThreeLcCompressor::with_options(
            Shape::new(&[1]),
            ThreeLcOptions {
                sparsity: SparsityMultiplier::new(1.75).unwrap(),
                zero_run_encoding: false,
                error_accumulation: false,
            },
        );
        assert_eq!(cx.name(), "3LC (s=1.75) no-ZRE no-EA");
    }

    #[test]
    fn compress_records_global_telemetry() {
        // The registry is process-global and shared with concurrently
        // running tests, so assert deltas and presence, not exact totals.
        let reg = threelc_obs::global();
        let ratio_before = reg.histogram("threelc.compress.ratio").count();
        let decomp_before = reg.histogram("threelc.decompress.seconds").count();
        let n = 70 * 100;
        let mut cx = ctx(n, 1.0);
        let wire = cx.compress(&Tensor::zeros([n])).unwrap();
        cx.decompress(&wire).unwrap();
        let snap = reg.snapshot();
        let ratio = snap.histogram("threelc.compress.ratio").unwrap();
        assert!(ratio.count > ratio_before);
        // The all-zero tensor compressed ~280× on the body (~257× with
        // the 9-byte header); the histogram's max must have seen it.
        assert!(ratio.max >= 250.0, "max ratio {}", ratio.max);
        assert!(
            snap.histogram("threelc.compress.quartic_seconds")
                .unwrap()
                .count
                > 0
        );
        assert!(
            snap.histogram("threelc.compress.zre_seconds")
                .unwrap()
                .count
                > 0
        );
        assert!(snap.histogram("threelc.decompress.seconds").unwrap().count > decomp_before);
    }

    #[test]
    fn sparsity_multiplier_reduces_wire_size_on_gaussian_input() {
        let mut r = threelc_tensor::rng(42);
        let input = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.05,
        }
        .init(&mut r, [10000]);
        let mut sizes = Vec::new();
        for s in [1.0, 1.5, 1.75, 1.9] {
            let mut cx =
                ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::new(s).unwrap());
            sizes.push(cx.compress(&input).unwrap().len());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "sizes should be non-increasing in s: {sizes:?}"
        );
    }
}
