//! The stateful 3LC compression context and its wire format.

use crate::kernels::{self, CodecImpl};
use crate::parallel::{self, split_off_ranges, split_ranges};
use crate::telemetry::{l2_norm, CompressTelemetry};
use crate::tlq::{SparsityMultiplier, TernaryTensor};
use crate::{quartic, zrle, CompressError, Compressor, DecodeError};
use std::ops::Range;
use std::time::Instant;
use threelc_obs::{log_enabled, Level, TraceSpan};
use threelc_tensor::{Shape, Tensor};

/// Wire-format header: 1 flags byte + 4-byte `f32` scale + 4-byte `u32`
/// element count.
const HEADER_LEN: usize = 9;

/// Flags bit: the body is zero-run encoded.
const FLAG_ZRE: u8 = crate::sizing::WIRE_FLAG_ZRE;

/// Default minimum element count before encode/decode go chunk-parallel.
///
/// Below this, thread-spawn overhead beats the win on every machine we
/// care about; above it, the quantize+quartic pass dominates. The SWAR
/// and SIMD kernels moved this break-even point up by several times —
/// BENCH_pr3 recorded *negative* thread scaling at 256 Ki elements, so
/// tensors up to that size now stay serial (the bench gate's small-tensor
/// check enforces that the floor keeps multi-thread configs from losing
/// to one thread). Tests and benchmarks can lower it with
/// [`ThreeLcCompressor::set_parallel_min_values`].
pub const DEFAULT_PARALLEL_MIN_VALUES: usize = 256 * 1024;

/// Configuration for a [`ThreeLcCompressor`].
///
/// The defaults reproduce the paper's full design: error accumulation on,
/// zero-run encoding on, `s = 1.0`. The switches exist for the ablations the
/// evaluation reports (Table 2's "No ZRE" row; the stochastic-quantization
/// comparison uses a separate scheme in `threelc-baselines`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeLcOptions {
    /// The sparsity multiplier `s` (compression-level knob).
    pub sparsity: SparsityMultiplier,
    /// Apply zero-run encoding after quartic encoding.
    pub zero_run_encoding: bool,
    /// Correct quantization errors with a per-tensor accumulation buffer.
    pub error_accumulation: bool,
}

impl ThreeLcOptions {
    /// Options with a given sparsity multiplier and everything else default.
    pub fn with_sparsity(sparsity: SparsityMultiplier) -> Self {
        ThreeLcOptions {
            sparsity,
            ..Default::default()
        }
    }
}

impl Default for ThreeLcOptions {
    fn default() -> Self {
        ThreeLcOptions {
            sparsity: SparsityMultiplier::default(),
            zero_run_encoding: true,
            error_accumulation: true,
        }
    }
}

/// A 3LC compression context for one tensor (paper §3, Figure 3).
///
/// Owns the error-accumulation buffer. Each [`compress`](Compressor::compress)
/// call performs, in order:
///
/// 1. accumulate the input into the local buffer,
/// 2. 3-value quantization with sparsity multiplication of the buffer,
/// 3. local dequantization and storing the remaining error back into the
///    buffer,
/// 4. quartic encoding,
/// 5. zero-run encoding (if enabled).
///
/// ```
/// use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor};
/// use threelc_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cx = ThreeLcCompressor::new((&[512usize]).into(), SparsityMultiplier::new(1.75)?);
/// let zeros = Tensor::zeros(&[512]);
/// let wire = cx.compress(&zeros)?;
/// // An all-zero tensor compresses to the 9-byte header plus a handful of
/// // run bytes — the paper's hypothetical 280× case.
/// assert!(wire.len() < 512 * 4 / 100);
/// assert_eq!(cx.decompress(&wire)?, zeros);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThreeLcCompressor {
    shape: Shape,
    options: ThreeLcOptions,
    /// Error accumulation buffer (zeros when `error_accumulation` is off).
    buffer: Tensor,
    /// Cached handles to the global `threelc.*` metrics.
    telemetry: CompressTelemetry,
    /// Worker-thread budget for the chunk-parallel codec paths (1 = serial).
    threads: usize,
    /// Minimum element count before the codec paths go parallel.
    parallel_min_values: usize,
    /// Codec implementation tier the encode kernels run on. Every tier is
    /// bit-identical (see [`crate::kernels`]); this is purely a speed knob.
    codec: CodecImpl,
}

impl ThreeLcCompressor {
    /// Creates a context for tensors of `shape` with default options and
    /// the given sparsity multiplier.
    pub fn new(shape: Shape, sparsity: SparsityMultiplier) -> Self {
        Self::with_options(shape, ThreeLcOptions::with_sparsity(sparsity))
    }

    /// Creates a context with explicit options.
    pub fn with_options(shape: Shape, options: ThreeLcOptions) -> Self {
        let buffer = Tensor::zeros(shape.clone());
        ThreeLcCompressor {
            shape,
            options,
            buffer,
            telemetry: CompressTelemetry::from_global(),
            threads: 1,
            parallel_min_values: DEFAULT_PARALLEL_MIN_VALUES,
            codec: kernels::active(),
        }
    }

    /// Returns the context pinned to an explicit codec implementation
    /// tier instead of the process-wide selection. A testing and
    /// benchmarking hook — every tier produces bit-identical output, so
    /// production code should let [`crate::kernels::active`] pick.
    ///
    /// # Panics
    ///
    /// Panics if this host cannot run `imp` (see
    /// [`CodecImpl::is_available`]).
    pub fn with_codec_impl(mut self, imp: CodecImpl) -> Self {
        assert!(
            imp.is_available(),
            "codec tier {imp} is not available on this host"
        );
        self.codec = imp;
        self
    }

    /// The codec implementation tier this context encodes with.
    pub fn codec_impl(&self) -> CodecImpl {
        self.codec
    }

    /// Returns the context configured to use up to `threads` codec worker
    /// threads (`0` = one per hardware core).
    ///
    /// Purely a performance knob: the parallel paths produce bit-for-bit
    /// the same wire payloads and decoded tensors as the serial ones (the
    /// property tests in `tests/parallel_identity.rs` enforce this), so the
    /// setting never affects results and can change at any time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        Compressor::set_threads(&mut self, threads);
        self
    }

    /// The resolved codec worker-thread budget (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the element-count threshold below which the codec stays
    /// serial. Meant for tests and benchmarks that need to force the
    /// parallel paths onto small tensors; production code should keep
    /// the built-in default (`DEFAULT_PARALLEL_MIN_VALUES`).
    pub fn set_parallel_min_values(&mut self, min_values: usize) {
        self.parallel_min_values = min_values.max(1);
    }

    /// How many chunks an `n`-element tensor is split into under the
    /// current thread budget (1 = the serial path).
    fn plan_parts(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.parallel_min_values {
            return 1;
        }
        // Keep every chunk above a quarter of the threshold so a barely
        // eligible tensor is not shredded into spawn-overhead confetti.
        let min_per_chunk = (self.parallel_min_values / 4).max(1);
        (n / min_per_chunk).clamp(1, self.threads)
    }

    /// The options this context was created with.
    pub fn options(&self) -> &ThreeLcOptions {
        &self.options
    }

    /// The tensor shape this context is bound to.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    fn check_shape(&self, input: &Tensor) -> Result<(), CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Compressor for ThreeLcCompressor {
    fn name(&self) -> String {
        let mut name = format!("3LC (s={:.2})", self.options.sparsity.value());
        if !self.options.zero_run_encoding {
            name.push_str(" no-ZRE");
        }
        if !self.options.error_accumulation {
            name.push_str(" no-EA");
        }
        name
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        self.check_shape(input)?;
        let n = input.len();
        let parts = self.plan_parts(n);
        let (body, flags, scale) = self.encode(input, parts)?;
        self.telemetry.record_encode(self.codec);

        let mut wire = Vec::with_capacity(HEADER_LEN + body.len());
        wire.push(flags);
        wire.extend_from_slice(&scale.to_le_bytes());
        wire.extend_from_slice(&(n as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        let raw_bytes = n * std::mem::size_of::<f32>();
        self.telemetry
            .ratio
            .record(raw_bytes as f64 / wire.len() as f64);
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let start = Instant::now();
        let out = self.decompress_inner(payload);
        self.telemetry
            .decompress_seconds
            .record(start.elapsed().as_secs_f64());
        out
    }

    fn decompress_symbols(
        &self,
        payload: &[u8],
        out: &mut Vec<i8>,
    ) -> Result<Option<f32>, DecodeError> {
        let start = Instant::now();
        let res = self.decode_symbols_inner(payload, out);
        self.telemetry
            .decompress_seconds
            .record(start.elapsed().as_secs_f64());
        res.map(Some)
    }

    fn residual(&self) -> Option<&Tensor> {
        if self.options.error_accumulation {
            Some(&self.buffer)
        } else {
            None
        }
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            parallel::available_threads()
        } else {
            threads
        };
    }

    fn set_sparsity(&mut self, s: SparsityMultiplier) {
        self.options.sparsity = s;
    }
}

impl ThreeLcCompressor {
    /// The encode pipeline: accumulate + max-reduce, fused quantize +
    /// error write-back + quartic pack, then zero-run encoding — the
    /// paper's steps, running on this context's codec tier
    /// ([`Self::codec_impl`]) over `parts` chunks (`parts = 1` is the
    /// serial path on the calling thread; `run_tasks` runs the first
    /// chunk inline either way).
    ///
    /// Output is bit-for-bit independent of both `parts` and the codec
    /// tier, by construction:
    ///
    /// - the max-magnitude reduction splits into per-chunk folds combined
    ///   in chunk order (`f32::max` is exactly associative, so the scale
    ///   comes out identical);
    /// - quantization, error write-back, and quartic packing are fused and
    ///   partitioned by *output byte* ranges — each worker owns quartic
    ///   bytes `[lo, hi)` and therefore the five strided element ranges
    ///   `[j·L + lo, j·L + hi) ∩ [0, n)`, which are pairwise disjoint
    ///   across workers; every element sees the same arithmetic in every
    ///   chunking and every tier (the tier argument is
    ///   [`crate::kernels`]' bit-identity contract);
    /// - zero-run encoding splits at *serial token boundaries* (see
    ///   [`zrle::align_token_boundary`]): the serial encoder is memoryless
    ///   at those positions, so encoding the segments independently and
    ///   concatenating in order reproduces the serial stream.
    fn encode(
        &mut self,
        input: &Tensor,
        parts: usize,
    ) -> Result<(Vec<u8>, u8, f32), CompressError> {
        let imp = self.codec;
        let n = input.len();
        let ea = self.options.error_accumulation;
        let in_slice = input.as_slice();

        // Distributed-tracing phase spans: inert unless the caller
        // installed a `TraceScope` (see `threelc_obs::trace`). The
        // per-element quantization is fused into the quartic pack, so the
        // "quantize" span covers only the accumulate + scale reduction
        // (phase 1) and "encode" covers the fused pack + ZRE (phases 2-3).
        let quantize_span = TraceSpan::start("quantize");

        // Phase 1: accumulate (error accumulation only) and reduce
        // max |x| + finiteness per chunk.
        let elem_ranges = split_ranges(n, parts);
        let partials: Vec<(f32, bool)> = if ea {
            let chunks = split_off_ranges(self.buffer.as_mut_slice(), &elem_ranges);
            let tasks: Vec<_> = chunks
                .into_iter()
                .zip(elem_ranges.iter().cloned())
                .collect();
            parallel::run_tasks(tasks, |_, (chunk, range)| {
                kernels::accumulate_max_abs_finite(imp, chunk, &in_slice[range])
            })
        } else {
            parallel::run_ranges(&elem_ranges, |_, r| {
                kernels::max_abs_finite(imp, &in_slice[r])
            })
        };
        let (max_abs, finite) = partials
            .into_iter()
            .fold((0.0f32, true), |(m, ok), (cm, cok)| (m.max(cm), ok && cok));
        if !finite {
            return Err(CompressError::NonFiniteInput);
        }
        let scale = max_abs * self.options.sparsity.value();
        quantize_span.finish();

        let encode_span = TraceSpan::start("encode");
        // Phase 2: fused quantize + error write-back + quartic pack, one
        // worker per quartic byte range. A zero scale makes `inv = 0`:
        // every finite `x · 0 = ±0` quantizes to digit 1 (byte 121) and
        // the write-back `x − 0·scale` returns `x` bit-exactly, so no
        // special casing is needed — including the subnormal-scale corner
        // where `inv` overflows to infinity (the kernels clamp to valid
        // ternary digits there; see `crate::kernels`).
        let quartic_start = Instant::now();
        let bl = n.div_ceil(quartic::VALUES_PER_BYTE); // partition length L
        let byte_ranges = split_ranges(bl, parts);
        let mut quartic_bytes = vec![0u8; bl];
        let out_chunks = split_off_ranges(&mut quartic_bytes, &byte_ranges);
        let inv = if scale != 0.0 { 1.0 / scale } else { 0.0 };

        // chunk_info[k] = (last non-zero byte index in chunk k, busy secs).
        let chunk_info: Vec<(Option<usize>, f64)> = if ea {
            // The 5 · parts strided element ranges, ascending in (j, chunk)
            // order, so the buffer splits into disjoint mutable views.
            let pw = byte_ranges.len();
            let mut strided: Vec<Range<usize>> = Vec::with_capacity(5 * pw);
            for j in 0..quartic::VALUES_PER_BYTE {
                for r in &byte_ranges {
                    strided.push((j * bl + r.start).min(n)..(j * bl + r.end).min(n));
                }
            }
            let srcs = split_off_ranges(self.buffer.as_mut_slice(), &strided);
            let mut groups: Vec<Vec<&mut [f32]>> = (0..pw).map(|_| Vec::with_capacity(5)).collect();
            for (idx, s) in srcs.into_iter().enumerate() {
                groups[idx % pw].push(s); // idx = j · pw + chunk
            }
            let tasks: Vec<_> = groups
                .into_iter()
                .zip(byte_ranges.iter().cloned())
                .zip(out_chunks)
                .collect();
            parallel::run_tasks(tasks, |_, ((srcs, range), out)| {
                let t0 = Instant::now();
                let mut five: [&mut [f32]; 5] = srcs.try_into().expect("five partitions per chunk");
                let last = kernels::pack_chunk_ea(imp, &mut five, inv, scale, out, range.start);
                (last, t0.elapsed().as_secs_f64())
            })
        } else {
            let tasks: Vec<_> = byte_ranges.iter().cloned().zip(out_chunks).collect();
            parallel::run_tasks(tasks, |_, (range, out)| {
                let t0 = Instant::now();
                let five: [&[f32]; 5] = std::array::from_fn(|j| {
                    &in_slice[(j * bl + range.start).min(n)..(j * bl + range.end).min(n)]
                });
                let last = kernels::pack_chunk(imp, &five, inv, out, range.start);
                (last, t0.elapsed().as_secs_f64())
            })
        };
        let wall = quartic_start.elapsed().as_secs_f64();
        self.telemetry.quartic_seconds.record(wall);
        if parts > 1 {
            let mut busy_total = 0.0;
            for &(_, busy) in &chunk_info {
                self.telemetry.chunk_seconds.record(busy);
                busy_total += busy;
            }
            if wall > 0.0 {
                self.telemetry.parallel_speedup.record(busy_total / wall);
            }
        }

        let debug_probes = log_enabled(Level::Debug);
        if debug_probes && ea {
            self.telemetry
                .residual_l2
                .record(l2_norm(self.buffer.as_slice()));
        }

        // Phase 3: zero-run encoding of token-aligned segments.
        let (body, flags) = if self.options.zero_run_encoding {
            let zre_start = Instant::now();
            let mut bounds = Vec::with_capacity(byte_ranges.len() + 1);
            bounds.push(0usize);
            let mut last_nz: Option<usize> = None;
            for k in 1..byte_ranges.len() {
                if let Some(i) = chunk_info[k - 1].0 {
                    last_nz = Some(i);
                }
                let b = zrle::align_token_boundary(&quartic_bytes, byte_ranges[k].start, last_nz);
                // Tiny chunks can align past a later chunk's start; clamping
                // to the previous boundary keeps segments well-formed (the
                // clamped value is itself a token boundary).
                bounds.push(b.max(*bounds.last().expect("non-empty")));
            }
            bounds.push(bl);
            let segments: Vec<&[u8]> = bounds
                .windows(2)
                .map(|w| &quartic_bytes[w[0]..w[1]])
                .collect();
            let run_hist = &self.telemetry.zero_run_length;
            let encoded: Vec<Vec<u8>> = parallel::run_tasks(segments, |_, seg| {
                if debug_probes {
                    zrle::encode_with_runs_impl(imp, seg, |run| run_hist.record(run as f64))
                } else {
                    zrle::encode_with_runs_impl(imp, seg, |_| {})
                }
                .expect("quartic output is always in range 0..=242")
            });
            let total: usize = encoded.iter().map(Vec::len).sum();
            let mut body = Vec::with_capacity(total);
            for seg in &encoded {
                body.extend_from_slice(seg);
            }
            self.telemetry
                .zre_seconds
                .record(zre_start.elapsed().as_secs_f64());
            (body, FLAG_ZRE)
        } else {
            (quartic_bytes, 0)
        };
        encode_span.finish();
        Ok((body, flags, scale))
    }

    /// The symbol half of [`Self::decompress_inner`]: identical header and
    /// body validation (same errors at the same offsets), stopping after
    /// the ternary decode instead of dequantizing into a `Tensor`. Always
    /// serial — symbol decoding is the cheap half of a decode, and its
    /// callers (server aggregation) already parallelize across tensors.
    fn decode_symbols_inner(&self, payload: &[u8], out: &mut Vec<i8>) -> Result<f32, DecodeError> {
        if payload.len() < HEADER_LEN {
            return Err(DecodeError::TruncatedHeader {
                have: payload.len(),
                need: HEADER_LEN,
            });
        }
        let flags = payload[0];
        if flags & !FLAG_ZRE != 0 {
            return Err(DecodeError::UnknownFormat { flags });
        }
        let scale = f32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
        if !scale.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
        if count != self.shape.num_elements() {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: self.shape.num_elements(),
            });
        }
        let body = &payload[HEADER_LEN..];
        let quartic_len = count.div_ceil(quartic::VALUES_PER_BYTE);
        let quartic_owned: Vec<u8>;
        let quartic_bytes: &[u8] = if flags & FLAG_ZRE != 0 {
            quartic_owned = zrle::decode_exact(body, quartic_len)?;
            &quartic_owned
        } else {
            if body.len() != quartic_len {
                return Err(DecodeError::BodyLengthMismatch {
                    decoded: body.len() * quartic::VALUES_PER_BYTE,
                    expected: count,
                });
            }
            body
        };
        quartic::decode_into_impl(self.codec, quartic_bytes, count, out)?;
        Ok(scale)
    }

    fn decompress_inner(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        if payload.len() < HEADER_LEN {
            return Err(DecodeError::TruncatedHeader {
                have: payload.len(),
                need: HEADER_LEN,
            });
        }
        let flags = payload[0];
        if flags & !FLAG_ZRE != 0 {
            return Err(DecodeError::UnknownFormat { flags });
        }
        let scale = f32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
        if !scale.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
        if count != self.shape.num_elements() {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: self.shape.num_elements(),
            });
        }
        let body = &payload[HEADER_LEN..];
        let quartic_len = count.div_ceil(quartic::VALUES_PER_BYTE);
        let parts = self.plan_parts(count);
        if parts > 1 {
            return self.decode_parallel(body, flags, scale, count, quartic_len, parts);
        }
        let quartic_bytes = if flags & FLAG_ZRE != 0 {
            zrle::decode_exact(body, quartic_len)?
        } else {
            if body.len() != quartic_len {
                return Err(DecodeError::BodyLengthMismatch {
                    decoded: body.len() * quartic::VALUES_PER_BYTE,
                    expected: count,
                });
            }
            body.to_vec()
        };
        let ternary = quartic::decode(&quartic_bytes, count)?;
        Ok(TernaryTensor::from_parts(self.shape.clone(), ternary, scale).dequantize())
    }

    /// Chunk-parallel body decode: ZRE expansion in a sizing pass plus a
    /// scatter pass, then a fused quartic-decode + dequantize over disjoint
    /// output ranges. Returns exactly what the serial path returns —
    /// including identical error values at identical offsets for malformed
    /// bodies (length mismatches and the *first* invalid quartic byte).
    fn decode_parallel(
        &self,
        body: &[u8],
        flags: u8,
        scale: f32,
        count: usize,
        quartic_len: usize,
        parts: usize,
    ) -> Result<Tensor, DecodeError> {
        let quartic_owned: Vec<u8>;
        let quartic_bytes: &[u8] = if flags & FLAG_ZRE != 0 {
            // Pass 1: per-segment decoded lengths; a serial prefix sum
            // fixes each segment's output offset.
            let body_ranges = split_ranges(body.len(), parts);
            let lens = parallel::run_ranges(&body_ranges, |_, r| zrle::decoded_len(&body[r]));
            let total: usize = lens.iter().sum();
            if total != quartic_len {
                return Err(DecodeError::BodyLengthMismatch {
                    decoded: total,
                    expected: quartic_len,
                });
            }
            // Pass 2: decode every segment into its disjoint output slice.
            let mut out = vec![0u8; total];
            let mut out_ranges = Vec::with_capacity(lens.len());
            let mut offset = 0;
            for &len in &lens {
                out_ranges.push(offset..offset + len);
                offset += len;
            }
            let chunks = split_off_ranges(&mut out, &out_ranges);
            let tasks: Vec<_> = body_ranges.into_iter().zip(chunks).collect();
            parallel::run_tasks(tasks, |_, (r, chunk)| zrle::decode_into(&body[r], chunk));
            quartic_owned = out;
            &quartic_owned
        } else {
            if body.len() != quartic_len {
                return Err(DecodeError::BodyLengthMismatch {
                    decoded: body.len() * quartic::VALUES_PER_BYTE,
                    expected: count,
                });
            }
            body
        };

        // Validate in parallel, reporting the first bad offset (chunks are
        // ascending, so the first hit is the global first) like the serial
        // decoder does.
        let bl = quartic_bytes.len();
        let byte_ranges = split_ranges(bl, parts);
        let bad = parallel::run_ranges(&byte_ranges, |_, r| {
            let start = r.start;
            quartic_bytes[r]
                .iter()
                .position(|&b| b > quartic::MAX_QUARTIC_BYTE)
                .map(|d| start + d)
        });
        if let Some(offset) = bad.into_iter().flatten().next() {
            return Err(DecodeError::InvalidQuarticByte {
                byte: quartic_bytes[offset],
                offset,
            });
        }

        // Fused quartic decode + dequantize over disjoint element ranges.
        // Element idx decodes from byte idx % bl at stride-partition digit
        // j = idx / bl; iterating j-outer keeps the divisor a constant per
        // inner loop (strength-reduced by the compiler, like the serial
        // `quartic::decode`) instead of a per-element division by `bl`.
        let mut values = vec![0f32; count];
        let elem_ranges = split_ranges(count, parts);
        let chunks = split_off_ranges(&mut values, &elem_ranges);
        let tasks: Vec<_> = elem_ranges.iter().cloned().zip(chunks).collect();
        parallel::run_tasks(tasks, |_, (r, chunk)| {
            for (j, weight) in [81u16, 27, 9, 3, 1].into_iter().enumerate() {
                let lo = r.start.max(j * bl);
                let hi = r.end.min((j + 1) * bl);
                if lo >= hi {
                    continue; // partition j does not intersect this range
                }
                let out = &mut chunk[lo - r.start..hi - r.start];
                for (&b, o) in quartic_bytes[lo - j * bl..hi - j * bl].iter().zip(out) {
                    let digit = (b as u16 / weight) % 3;
                    *o = (digit as i8 - 1) as f32 * scale;
                }
            }
        });
        Ok(Tensor::from_vec(values, self.shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize, s: f32) -> ThreeLcCompressor {
        ThreeLcCompressor::new(Shape::new(&[n]), SparsityMultiplier::new(s).unwrap())
    }

    #[test]
    fn roundtrip_shape_and_error_bound() {
        let input = Tensor::from_vec(vec![0.31, -0.17, 0.05, 0.44, -0.29, 0.0], [2, 3]);
        let mut cx = ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::default());
        let wire = cx.compress(&input).unwrap();
        let out = cx.decompress(&wire).unwrap();
        assert_eq!(out.shape(), input.shape());
        let m = input.max_abs();
        assert!(input.sub(&out).unwrap().max_abs() <= m / 2.0 + 1e-6);
    }

    #[test]
    fn zero_tensor_280x_compression() {
        // §3.3: "In a hypothetical case of compressing a zero 32-bit
        // floating-point tensor, the combination of all techniques in 3LC
        // reaches a compression ratio of 280×." One escape byte covers 14
        // quartic bytes = 70 values = 280 input bytes.
        let n = 70 * 1000;
        let mut cx = ctx(n, 1.0);
        let wire = cx.compress(&Tensor::zeros([n])).unwrap();
        let body = wire.len() - HEADER_LEN;
        assert_eq!(body, 1000, "all-zero body should be exactly n/70 bytes");
        let ratio = (n * 4) as f64 / body as f64;
        assert!((ratio - 280.0).abs() < 1e-9);
    }

    #[test]
    fn set_sparsity_changes_later_payloads_without_rebuilding() {
        // The adaptive-policy hook: raising s mid-stream must change the
        // next payload (more zeros, fewer bytes), keep the accumulation
        // buffer, and match a compressor built at the new setting from
        // the same buffer state. Decode stays oblivious — the scale
        // travels in the payload.
        let n = 4096;
        let mut r = threelc_tensor::rng(7);
        let input = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut r, [n]);
        let mut adaptive = ctx(n, 1.0);
        let mut fixed_hi = ctx(n, 1.9);
        let w1 = adaptive.compress(&input).unwrap();
        let w1_hi = fixed_hi.compress(&input).unwrap();
        assert_ne!(w1, w1_hi, "s=1.0 and s=1.9 should differ");
        adaptive.set_sparsity(SparsityMultiplier::new(1.9).unwrap());
        let w2 = adaptive.compress(&input).unwrap();
        let w2_hi = fixed_hi.compress(&input).unwrap();
        // Same options, same accumulated residual history? No — the first
        // step ran at different settings, so buffers differ. What must
        // hold: the boundary values (s=1.0 floor, largest-below-2.0
        // ceiling) are accepted, the switched context now reports the new
        // setting, and decode still roundtrips every payload.
        assert_eq!(adaptive.options().sparsity.value(), 1.9);
        for wire in [&w1, &w2, &w1_hi, &w2_hi] {
            assert_eq!(adaptive.decompress(wire).unwrap().len(), n);
        }
        adaptive.set_sparsity(SparsityMultiplier::new(1.0).unwrap());
        adaptive
            .set_sparsity(SparsityMultiplier::new(f32::from_bits(2.0f32.to_bits() - 1)).unwrap());
        let w3 = adaptive.compress(&input).unwrap();
        assert_eq!(adaptive.decompress(&w3).unwrap().len(), n);
        // A fresh pair driven identically after the switch IS bit-equal:
        // switching is equivalent to having been built at the setting.
        let mut a = ctx(n, 1.0);
        a.set_sparsity(SparsityMultiplier::new(1.9).unwrap());
        let mut b = ctx(n, 1.9);
        assert_eq!(a.compress(&input).unwrap(), b.compress(&input).unwrap());
    }

    #[test]
    fn error_accumulation_recovers_dropped_updates() {
        // A persistent small signal below the quantization threshold must
        // eventually be transmitted thanks to the accumulation buffer.
        let n = 8;
        let mut cx = ctx(n, 1.0);
        // One big value sets M; the small values individually quantize to 0.
        let mut input = vec![0.04f32; n];
        input[0] = 1.0;
        let input = Tensor::from_vec(input, [n]);
        let mut recovered = Tensor::zeros([n]);
        for _ in 0..30 {
            let wire = cx.compress(&input).unwrap();
            recovered
                .add_assign(&cx.decompress(&wire).unwrap())
                .unwrap();
        }
        // After 30 steps the cumulative transmitted sum approximates the
        // cumulative input sum (30 × 0.04 = 1.2 at index 1..n).
        let total_in = input.scale(30.0);
        let err = total_in.sub(&recovered).unwrap().max_abs();
        assert!(err <= 1.0, "cumulative error {err} should stay bounded");
        assert!(
            recovered.as_slice()[1] > 0.0,
            "small values must eventually transmit"
        );
    }

    #[test]
    fn no_error_accumulation_never_sends_small_values() {
        let n = 8;
        let opts = ThreeLcOptions {
            error_accumulation: false,
            ..Default::default()
        };
        let mut cx = ThreeLcCompressor::with_options(Shape::new(&[n]), opts);
        let mut input = vec![0.04f32; n];
        input[0] = 1.0;
        let input = Tensor::from_vec(input, [n]);
        for _ in 0..5 {
            let wire = cx.compress(&input).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.as_slice()[1], 0.0);
        }
        assert!(cx.residual().is_none());
    }

    #[test]
    fn residual_tracks_quantization_error() {
        let input = Tensor::from_slice(&[0.3, 0.1, -0.06, 0.0]);
        let mut cx = ctx(4, 1.0);
        let wire = cx.compress(&input).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let expected_residual = input.sub(&out).unwrap();
        assert!(cx.residual().unwrap().approx_eq(&expected_residual, 1e-7));
    }

    #[test]
    fn zre_flag_roundtrip_both_ways() {
        let input = Tensor::from_vec(
            (0..100)
                .map(|i| if i % 10 == 0 { 0.5 } else { 0.0 })
                .collect(),
            [100],
        );
        for zre in [true, false] {
            let opts = ThreeLcOptions {
                zero_run_encoding: zre,
                ..Default::default()
            };
            let mut cx = ThreeLcCompressor::with_options(Shape::new(&[100]), opts);
            let wire = cx.compress(&input).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.shape().dims(), &[100]);
            if !zre {
                assert_eq!(wire.len(), HEADER_LEN + 20);
            }
        }
    }

    #[test]
    fn zre_shrinks_sparse_payloads() {
        let n = 1000;
        let mut sparse = vec![0.0f32; n];
        sparse[500] = 1.0;
        let sparse = Tensor::from_vec(sparse, [n]);
        let mut with = ctx(n, 1.0);
        let mut without = ThreeLcCompressor::with_options(
            Shape::new(&[n]),
            ThreeLcOptions {
                zero_run_encoding: false,
                ..Default::default()
            },
        );
        let w = with.compress(&sparse).unwrap();
        let wo = without.compress(&sparse).unwrap();
        assert!(
            w.len() * 2 < wo.len(),
            "ZRE ({}) should at least halve no-ZRE ({})",
            w.len(),
            wo.len()
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut cx = ctx(4, 1.0);
        let err = cx.compress(&Tensor::zeros([5])).unwrap_err();
        assert!(matches!(err, CompressError::ShapeMismatch { .. }));
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        let cx = ctx(10, 1.0);
        // Truncated header.
        assert!(matches!(
            cx.decompress(&[1, 2, 3]),
            Err(DecodeError::TruncatedHeader { .. })
        ));
        // Unknown flags.
        let mut bad = vec![0x80u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::UnknownFormat { .. })
        ));
        // Wrong element count.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&11u32.to_le_bytes());
        bad.extend(vec![121u8; 3]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::ElementCountMismatch { .. })
        ));
        // Non-finite scale.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&f32::NAN.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.extend(vec![121u8; 2]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::NonFiniteScale)
        ));
        // Body too short (no ZRE flag set).
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.push(121);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
        // Invalid quartic byte inside a non-ZRE body.
        let mut bad = vec![0u8];
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.extend([250u8, 121]);
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::InvalidQuarticByte { .. })
        ));
    }

    #[test]
    fn name_reflects_options() {
        assert_eq!(ctx(1, 1.0).name(), "3LC (s=1.00)");
        let cx = ThreeLcCompressor::with_options(
            Shape::new(&[1]),
            ThreeLcOptions {
                sparsity: SparsityMultiplier::new(1.75).unwrap(),
                zero_run_encoding: false,
                error_accumulation: false,
            },
        );
        assert_eq!(cx.name(), "3LC (s=1.75) no-ZRE no-EA");
    }

    #[test]
    fn compress_records_global_telemetry() {
        // The registry is process-global and shared with concurrently
        // running tests, so assert deltas and presence, not exact totals.
        let reg = threelc_obs::global();
        let ratio_before = reg.histogram("threelc.compress.ratio").count();
        let decomp_before = reg.histogram("threelc.decompress.seconds").count();
        let n = 70 * 100;
        let mut cx = ctx(n, 1.0);
        let wire = cx.compress(&Tensor::zeros([n])).unwrap();
        cx.decompress(&wire).unwrap();
        let snap = reg.snapshot();
        let ratio = snap.histogram("threelc.compress.ratio").unwrap();
        assert!(ratio.count > ratio_before);
        // The all-zero tensor compressed ~280× on the body (~257× with
        // the 9-byte header); the histogram's max must have seen it.
        assert!(ratio.max >= 250.0, "max ratio {}", ratio.max);
        assert!(
            snap.histogram("threelc.compress.quartic_seconds")
                .unwrap()
                .count
                > 0
        );
        assert!(
            snap.histogram("threelc.compress.zre_seconds")
                .unwrap()
                .count
                > 0
        );
        assert!(snap.histogram("threelc.decompress.seconds").unwrap().count > decomp_before);
    }

    #[test]
    fn sparsity_multiplier_reduces_wire_size_on_gaussian_input() {
        let mut r = threelc_tensor::rng(42);
        let input = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.05,
        }
        .init(&mut r, [10000]);
        let mut sizes = Vec::new();
        for s in [1.0, 1.5, 1.75, 1.9] {
            let mut cx =
                ThreeLcCompressor::new(input.shape().clone(), SparsityMultiplier::new(s).unwrap());
            sizes.push(cx.compress(&input).unwrap().len());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "sizes should be non-increasing in s: {sizes:?}"
        );
    }
}
