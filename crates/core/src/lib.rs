//! # 3LC: 3-value lossy compression for distributed machine learning
//!
//! A from-scratch implementation of the traffic compression scheme from
//! *3LC: Lightweight and Effective Traffic Compression for Distributed
//! Machine Learning* (Lim, Andersen, Kaminsky — MLSys 2019).
//!
//! 3LC compresses the state-change tensors (gradients pushed from workers to
//! parameter servers, and model deltas pulled back) with three composed
//! transformations:
//!
//! 1. **3-value quantization with sparsity multiplication** ([`tlq`]) — a
//!    lossy map of each `f32` onto `{-1, 0, 1}` scaled by a single
//!    full-precision scalar `M = max(|T|) · s`, where the sparsity
//!    multiplier `s ∈ [1, 2)` trades resolution for more zeros. Quantization
//!    errors are remembered in a per-tensor error-accumulation buffer and
//!    corrected at later steps.
//! 2. **Quartic encoding** ([`quartic`]) — a lossless pack of five ternary
//!    values into one byte (1.6 bits/value, 0.95% above the ternary entropy
//!    bound of log₂3 ≈ 1.585 bits).
//! 3. **Zero-run encoding** ([`zrle`]) — a lossless run-length code
//!    specialized to quartic output: runs of the all-zero byte 121 are
//!    replaced by single bytes 243–255.
//!
//! The stateful entry point is [`ThreeLcCompressor`], which owns the error
//! accumulation buffer for one tensor and implements the [`Compressor`]
//! trait shared with the baseline schemes in `threelc-baselines`.
//!
//! ```
//! use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor};
//! use threelc_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grad = Tensor::from_vec(vec![0.02, -0.3, 0.0, 0.11, -0.07, 0.0], &[2, 3]);
//! let mut cx = ThreeLcCompressor::new(grad.shape().clone(), SparsityMultiplier::default());
//! let wire = cx.compress(&grad)?;
//! let restored = cx.decompress(&wire)?;
//! // The per-element error is bounded by M/2 (see `tlq`).
//! let m = grad.max_abs();
//! assert!(grad.sub(&restored)?.max_abs() <= m / 2.0 + 1e-6);
//! # Ok(())
//! # }
//! ```

mod compressor;
pub mod elias;
mod error;
pub mod huffman;
pub mod kernels;
pub mod parallel;
pub mod quartic;
pub mod sizing;
pub mod telemetry;
pub mod tlq;
mod traits;
pub mod zrle;

pub use compressor::{ThreeLcCompressor, ThreeLcOptions, DEFAULT_PARALLEL_MIN_VALUES};
pub use error::{CompressError, DecodeError};
pub use kernels::{CodecImpl, CodecSelection, SelectionSource, CODEC_IMPL_ENV};
pub use telemetry::CompressTelemetry;
pub use tlq::{SparsityMultiplier, TernaryTensor};
pub use traits::{CompressionStats, Compressor};
