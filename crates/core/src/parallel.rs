//! A minimal scoped-thread fork-join pool for chunk-parallel codecs.
//!
//! 3LC's pitch depends on compression being cheap enough to overlap with
//! training (§3.4), so the encode/decode hot paths parallelize across
//! tensor chunks. This module is deliberately small and `std`-only: no
//! work stealing, no persistent threads, no channels — just
//! [`std::thread::scope`] fork-join over a precomputed, deterministic
//! partition. Results always come back in partition order, which is what
//! lets the parallel codec paths promise bit-for-bit identical output to
//! the serial ones (the partition, not the scheduling, decides who
//! computes what).
//!
//! The helpers here are shared by `ThreeLcCompressor`'s parallel
//! encode/decode and by `threelc-distsim`'s sharded server aggregation.

use std::ops::Range;

/// Number of hardware threads, with a fallback of 1 when the platform
/// cannot say (the query itself never panics).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `parts` contiguous ascending ranges whose
/// sizes differ by at most one (the first `len % parts` ranges get the
/// extra element). Always returns at least one range; never returns more
/// ranges than `len` (except `len == 0`, which yields a single empty
/// range).
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits a mutable slice into disjoint sub-slices described by `ranges`,
/// which must be ascending and non-overlapping (gaps are allowed and
/// skipped). Empty ranges yield empty sub-slices.
///
/// # Panics
///
/// Panics if the ranges are not ascending or exceed the slice length.
pub fn split_off_ranges<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut pos = 0;
    for r in ranges {
        assert!(
            r.start >= pos && r.end >= r.start,
            "ranges must be ascending and non-overlapping"
        );
        let (_gap, rest) = slice.split_at_mut(r.start - pos);
        let (take, rest) = rest.split_at_mut(r.end - r.start);
        out.push(take);
        slice = rest;
        pos = r.end;
    }
    out
}

/// Runs `f(index, task)` for every task, each on its own scoped thread
/// (the first task runs on the calling thread), and returns the results
/// in task order. With zero or one task no thread is spawned.
///
/// Panics in a worker propagate to the caller.
pub fn run_tasks<I, T, F>(tasks: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(k, t)| f(k, t))
            .collect();
    }
    std::thread::scope(|scope| {
        let mut iter = tasks.into_iter();
        let first = iter.next().expect("len > 1");
        let handles: Vec<_> = iter
            .enumerate()
            .map(|(k, task)| {
                let f = &f;
                scope.spawn(move || f(k + 1, task))
            })
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(0, first));
        for h in handles {
            out.push(h.join().expect("codec worker panicked"));
        }
        out
    })
}

/// [`run_tasks`] over index ranges: runs `f(index, range)` for each range
/// and returns results in range order.
pub fn run_ranges<T, F>(ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_tasks(ranges.to_vec(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_is_balanced_and_exhaustive() {
        for len in 0..40usize {
            for parts in 1..9usize {
                let ranges = split_ranges(len, parts);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= parts);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len={len} parts={parts}: {sizes:?}");
            }
        }
    }

    #[test]
    fn split_off_ranges_gives_disjoint_views() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = vec![0..3, 3..3, 5..10];
        let chunks = split_off_ranges(&mut data, &ranges);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert!(chunks[1].is_empty());
        assert_eq!(chunks[2], &[5, 6, 7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn split_off_ranges_rejects_overlap() {
        let mut data = [0u8; 4];
        split_off_ranges(&mut data, &[0..2, 1..3]);
    }

    #[test]
    fn run_tasks_preserves_order() {
        let tasks: Vec<usize> = (0..8).collect();
        let out = run_tasks(tasks, |k, t| {
            assert_eq!(k, t);
            t * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_ranges_sums_match_serial() {
        let data: Vec<u64> = (0..1000).collect();
        let ranges = split_ranges(data.len(), 7);
        let partials = run_ranges(&ranges, |_, r| data[r].iter().sum::<u64>());
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn run_tasks_mutates_disjoint_chunks() {
        let mut data = vec![0u8; 100];
        let ranges = split_ranges(data.len(), 4);
        let chunks = split_off_ranges(&mut data, &ranges);
        run_tasks(chunks, |k, chunk| {
            for b in chunk {
                *b = k as u8 + 1;
            }
        });
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 4);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        run_tasks(vec![0usize, 1], |_, t| {
            if t == 1 {
                panic!("boom");
            }
        });
    }
}
