//! 3-value quantization with sparsity multiplication (paper §3.1).
//!
//! The lossy transformation at the heart of 3LC. An input tensor `T_in` is
//! mapped to a ternary tensor and one full-precision scalar:
//!
//! ```text
//! M           = max(|T_in|) · s          (Equation 1)
//! T_quantized = round(T_in / M)          (Equation 2)
//! T_out       = M · T_quantized          (Equation 3, dequantization)
//! ```
//!
//! The sparsity multiplier `s ∈ [1, 2)` is 3LC's compression-level knob:
//! with `s > 1` more values fall below `M/2` in magnitude and quantize to
//! zero, making the downstream zero-run encoding more effective, while
//! dequantization *enlarges* the surviving values — preserving the average
//! magnitude of the input better than thresholding sparsifiers do.
//!
//! `round()` introduces at most `1/2` of absolute error in the scaled
//! domain, so `max(|T_in − T_out|) ≤ M/2 < max(|T_in|)` — the bound the
//! paper's convergence argument rests on (it is verified by property tests
//! in this module).

use crate::CompressError;
use serde::{Deserialize, Serialize};
use std::fmt;
use threelc_tensor::{Shape, Tensor};

/// The sparsity multiplier `s`, restricted to `1.0 ≤ s < 2.0`.
///
/// `s = 1` (the default) preserves the maximum magnitude of the input
/// exactly across a quantize/dequantize roundtrip. Larger values produce
/// sparser ternary output at the cost of larger per-step quantization error
/// (corrected over time by the error-accumulation buffer).
///
/// ```
/// use threelc::SparsityMultiplier;
/// let s = SparsityMultiplier::new(1.75)?;
/// assert_eq!(s.value(), 1.75);
/// assert!(SparsityMultiplier::new(2.0).is_err());
/// # Ok::<(), threelc::CompressError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityMultiplier(f32);

impl SparsityMultiplier {
    /// Creates a sparsity multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidSparsity`] if `s` is outside
    /// `[1.0, 2.0)` or non-finite. (The range restriction is what makes the
    /// quantization output ternary: `|T_in / M| ≤ 1/s ≤ 1`.) Every entry
    /// point for a multiplier — CLI flags, `ThreeLcOptions`, policy
    /// decisions arriving over the wire — funnels through here.
    pub fn new(s: f32) -> Result<Self, CompressError> {
        if !s.is_finite() || !(1.0..2.0).contains(&s) {
            return Err(CompressError::InvalidSparsity { value: s });
        }
        Ok(SparsityMultiplier(s))
    }

    /// The underlying multiplier value.
    pub fn value(&self) -> f32 {
        self.0
    }
}

impl Default for SparsityMultiplier {
    /// The paper's default, `s = 1.0`.
    fn default() -> Self {
        SparsityMultiplier(1.0)
    }
}

impl fmt::Display for SparsityMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s={:.2}", self.0)
    }
}

/// A 3-value quantized tensor: ternary values plus the scale `M`.
///
/// The ternary data is kept dense (one `i8 ∈ {-1, 0, 1}` per element) —
/// the paper deliberately avoids sparse representations because dense
/// operations vectorize (§3.1 "Alternative sparsification techniques").
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryTensor {
    shape: Shape,
    values: Vec<i8>,
    scale: f32,
}

impl TernaryTensor {
    /// Quantizes `input` with sparsity multiplier `s` (Equations 1–2).
    ///
    /// An all-zero input produces `M = 0` and an all-zero ternary tensor.
    /// Runs on the process-wide codec tier (see [`crate::kernels`]); every
    /// tier produces identical output.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::NonFiniteInput`] if any element is NaN or
    /// infinite.
    pub fn quantize(input: &Tensor, s: SparsityMultiplier) -> Result<Self, CompressError> {
        Self::quantize_impl(crate::kernels::active(), input, s)
    }

    /// [`Self::quantize`] on an explicit codec tier. The differential
    /// tests drive every tier through this; production code should use
    /// [`Self::quantize`].
    ///
    /// The mapping is `round(x / M)` evaluated in comparison form (sign
    /// and the single threshold `|x / M| ≥ 1/2` on the IEEE bit pattern),
    /// which is exact wherever `round` stays ternary — see the
    /// bit-identity argument in [`crate::kernels`]. In the degenerate
    /// corner where `M` is subnormal and `1/M` overflows to infinity, the
    /// historical `round() as i8` saturated to ±127 (invalid ternary
    /// output); the comparison form clamps to ±1 instead.
    ///
    /// # Errors
    ///
    /// Same as [`Self::quantize`].
    pub fn quantize_impl(
        imp: crate::kernels::CodecImpl,
        input: &Tensor,
        s: SparsityMultiplier,
    ) -> Result<Self, CompressError> {
        // One fused kernel pass computes the max magnitude and detects
        // NaN/inf (`f32::max` silently ignores NaN, so finiteness is
        // tracked separately).
        let (max_abs, finite) = crate::kernels::max_abs_finite(imp, input.as_slice());
        if !finite {
            return Err(CompressError::NonFiniteInput);
        }
        let scale = max_abs * s.value();
        let values = if scale == 0.0 {
            vec![0i8; input.len()]
        } else {
            let inv = 1.0 / scale;
            let mut v = vec![0i8; input.len()];
            crate::kernels::quantize_ternary(imp, input.as_slice(), inv, &mut v);
            v
        };
        Ok(TernaryTensor {
            shape: input.shape().clone(),
            values,
            scale,
        })
    }

    /// Builds a ternary tensor from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the shape's element count or
    /// any value is outside `{-1, 0, 1}`.
    pub fn from_parts(shape: Shape, values: Vec<i8>, scale: f32) -> Self {
        assert_eq!(values.len(), shape.num_elements(), "value count mismatch");
        assert!(
            values.iter().all(|v| (-1..=1).contains(v)),
            "values must be ternary"
        );
        TernaryTensor {
            shape,
            values,
            scale,
        }
    }

    /// Dequantizes back to floats: `T_out = M · T_quantized` (Equation 3).
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.values.iter().map(|&v| v as f32 * self.scale).collect(),
            self.shape.clone(),
        )
    }

    /// The ternary values (each in `{-1, 0, 1}`), row-major.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// The scale `M = max(|T_in|) · s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The original tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of zero ternary values (what the sparsity multiplier
    /// increases and zero-run encoding exploits).
    pub fn zero_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v == 0).count() as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f32) -> SparsityMultiplier {
        SparsityMultiplier::new(v).unwrap()
    }

    #[test]
    fn multiplier_validation() {
        // The exact boundaries: 1.0 is the smallest legal value and the
        // largest f32 strictly below 2.0 is the biggest.
        assert!(SparsityMultiplier::new(1.0).is_ok());
        assert!(SparsityMultiplier::new(1.99).is_ok());
        let below_two = f32::from_bits(2.0f32.to_bits() - 1);
        assert!(below_two < 2.0);
        assert!(SparsityMultiplier::new(below_two).is_ok());
        assert!(SparsityMultiplier::new(2.0).is_err());
        assert!(SparsityMultiplier::new(0.99).is_err());
        assert!(SparsityMultiplier::new(f32::NAN).is_err());
        assert_eq!(SparsityMultiplier::default().value(), 1.0);
    }

    #[test]
    fn multiplier_rejection_is_typed_and_names_the_value() {
        for bad in [0.0, 0.99, 2.0, 2.5, -1.0, f32::INFINITY, f32::NEG_INFINITY] {
            match SparsityMultiplier::new(bad) {
                Err(CompressError::InvalidSparsity { value }) => assert_eq!(value, bad),
                other => panic!("s={bad} gave {other:?}, want InvalidSparsity"),
            }
        }
        match SparsityMultiplier::new(f32::NAN) {
            Err(CompressError::InvalidSparsity { value }) => assert!(value.is_nan()),
            other => panic!("NaN gave {other:?}, want InvalidSparsity"),
        }
    }

    #[test]
    fn quantize_paper_figure3_example() {
        // Figure 3 of the paper: accumulated tensor with max |x| = 0.3,
        // s = 1 → M = 0.3. Values round to {-1, 0, 1}.
        let input = Tensor::from_vec(
            vec![
                -0.3, 0.1, -0.4, 0.0, //
                -0.2, 0.0, -0.2, -0.1, //
                0.1, -0.4, 0.1, 0.3, //
                0.0, 0.3, -0.2, 0.0,
            ],
            [4, 4],
        );
        // NB: the figure's accumulation buffer has max 0.4; after scaling by
        // M = 0.4, round(x/0.4): -0.3/0.4=-0.75→-1, 0.1/0.4=0.25→0, …
        let q = TernaryTensor::quantize(&input, s(1.0)).unwrap();
        assert_eq!(q.scale(), 0.4);
        assert_eq!(
            q.values(),
            &[
                -1, 0, -1, 0, //
                -1, 0, -1, 0, //
                0, -1, 0, 1, //
                0, 1, -1, 0
            ]
        );
    }

    #[test]
    fn quantize_all_zero_tensor() {
        let input = Tensor::zeros([10]);
        let q = TernaryTensor::quantize(&input, s(1.0)).unwrap();
        assert_eq!(q.scale(), 0.0);
        assert!(q.values().iter().all(|&v| v == 0));
        assert_eq!(q.dequantize(), input);
    }

    #[test]
    fn max_magnitude_preserved_with_s1() {
        // With s = 1, an element at ±max(|T|) maps to ±1 and dequantizes to
        // exactly ±max(|T|).
        let input = Tensor::from_slice(&[0.5, -0.1, 0.02]);
        let q = TernaryTensor::quantize(&input, s(1.0)).unwrap();
        let out = q.dequantize();
        assert_eq!(out.as_slice()[0], 0.5);
    }

    #[test]
    fn error_bounded_by_half_m() {
        let input = Tensor::from_slice(&[0.31, -0.17, 0.05, 0.44, -0.29, 0.0]);
        for mult in [1.0, 1.5, 1.75, 1.9] {
            let q = TernaryTensor::quantize(&input, s(mult)).unwrap();
            let out = q.dequantize();
            let err = input.sub(&out).unwrap().max_abs();
            assert!(
                err <= q.scale() / 2.0 + 1e-7,
                "s={mult}: err {err} > M/2 {}",
                q.scale() / 2.0
            );
        }
    }

    #[test]
    fn larger_s_gives_more_zeros() {
        let mut r = threelc_tensor::rng(11);
        let input = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut r, [4096]);
        let z1 = TernaryTensor::quantize(&input, s(1.0))
            .unwrap()
            .zero_fraction();
        let z19 = TernaryTensor::quantize(&input, s(1.9))
            .unwrap()
            .zero_fraction();
        assert!(z19 > z1, "z(1.9)={z19} should exceed z(1.0)={z1}");
    }

    #[test]
    fn non_finite_input_rejected() {
        let input = Tensor::from_slice(&[1.0, f32::NAN]);
        assert_eq!(
            TernaryTensor::quantize(&input, s(1.0)).unwrap_err(),
            CompressError::NonFiniteInput
        );
        let input = Tensor::from_slice(&[f32::INFINITY]);
        assert!(TernaryTensor::quantize(&input, s(1.0)).is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let t = TernaryTensor::from_parts(Shape::new(&[3]), vec![-1, 0, 1], 0.25);
        assert_eq!(t.dequantize().as_slice(), &[-0.25, 0.0, 0.25]);
    }

    #[test]
    #[should_panic(expected = "ternary")]
    fn from_parts_rejects_out_of_range() {
        TernaryTensor::from_parts(Shape::new(&[1]), vec![2], 1.0);
    }

    #[test]
    fn display_of_multiplier() {
        assert_eq!(s(1.75).to_string(), "s=1.75");
    }
}
