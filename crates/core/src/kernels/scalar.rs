//! Scalar reference kernels: the straightforward per-element loops the
//! SWAR and SIMD tiers must match bit for bit.

use super::{digit_of, WEIGHTS};
use crate::quartic::ZERO_BYTE;

pub(super) fn max_abs_finite(xs: &[f32]) -> (f32, bool) {
    xs.iter().fold((0.0f32, true), |(m, ok), &x| {
        (m.max(x.abs()), ok && x.is_finite())
    })
}

pub(super) fn accumulate_max_abs_finite(buf: &mut [f32], xs: &[f32]) -> (f32, bool) {
    let mut m = 0.0f32;
    let mut ok = true;
    for (b, &x) in buf.iter_mut().zip(xs) {
        *b += x;
        m = m.max(b.abs());
        ok = ok && b.is_finite();
    }
    (m, ok)
}

pub(super) fn quantize_ternary(xs: &[f32], inv: f32, out: &mut [i8]) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = digit_of(x, inv) as i8 - 1;
    }
}

pub(super) fn pack_chunk(
    srcs: &[&[f32]; 5],
    inv: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    let mut last_nonzero = None;
    for (i, o) in out.iter_mut().enumerate() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = srcs[j];
            let digit = if i < s.len() { digit_of(s[i], inv) } else { 1 };
            byte += digit * w;
        }
        *o = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

pub(super) fn pack_chunk_ea(
    srcs: &mut [&mut [f32]; 5],
    inv: f32,
    scale: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    let mut last_nonzero = None;
    for (i, o) in out.iter_mut().enumerate() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = &mut *srcs[j];
            let digit = if i < s.len() {
                let x = s[i];
                let d = digit_of(x, inv);
                s[i] = x - (d as i8 - 1) as f32 * scale;
                d
            } else {
                1
            };
            byte += digit * w;
        }
        *o = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

pub(super) fn dequant_assign(syms: &[i8], scale: f32, out: &mut [f32]) {
    for (o, &s) in out.iter_mut().zip(syms) {
        *o = s as f32 * scale;
    }
}

pub(super) fn dequant_add(syms: &[i8], scale: f32, out: &mut [f32]) {
    for (o, &s) in out.iter_mut().zip(syms) {
        *o += s as f32 * scale;
    }
}

pub(super) fn symbol_lanes_add(syms: &[i8], acc: &mut [u64]) {
    for (e, &s) in syms.iter().enumerate() {
        acc[e / 4] += ((s + 1) as u64) << (16 * (e % 4));
    }
}

pub(super) fn symbol_lanes_drain_assign(acc: &[u64], members: u32, scale: f32, out: &mut [f32]) {
    for (e, o) in out.iter_mut().enumerate() {
        let lane = ((acc[e / 4] >> (16 * (e % 4))) & 0xffff) as i32;
        *o = (lane - members as i32) as f32 * scale;
    }
}

pub(super) fn symbol_lanes_drain_add(acc: &[u64], members: u32, scale: f32, out: &mut [f32]) {
    for (e, o) in out.iter_mut().enumerate() {
        let lane = ((acc[e / 4] >> (16 * (e % 4))) & 0xffff) as i32;
        *o += (lane - members as i32) as f32 * scale;
    }
}

pub(super) fn pack_ternary(srcs: &[&[i8]; 5], out: &mut [u8]) {
    for (i, o) in out.iter_mut().enumerate() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = srcs[j];
            let digit = if i < s.len() { (s[i] + 1) as u8 } else { 1 };
            byte += digit * w;
        }
        *o = byte;
    }
}
