//! AVX2 intrinsics tier (`core::arch::x86_64`).
//!
//! Every function here carries `#[target_feature(enable = "avx2")]` and
//! is only reachable through the dispatcher after
//! `is_x86_feature_detected!("avx2")` succeeded, so the vector
//! instructions can never execute on a CPU that lacks them. All memory
//! access uses unaligned loads/stores (`loadu`/`storeu`) on pointers
//! derived from the argument slices, with the loop bounds keeping every
//! access inside the slice; the scalar tails reuse safe indexing.
//!
//! Bit-identity with the scalar tier holds because the vector arithmetic
//! is the same arithmetic:
//!
//! - `x · inv` is one IEEE multiply per lane (`vmulps`); no FMA
//!   contraction is emitted (the `fma` feature is not enabled and Rust
//!   never contracts float expressions).
//! - The digit decision compares the product's bit pattern exactly like
//!   [`super::digit_of`]: magnitude bits are `< 2³¹`, so *signed* 32-bit
//!   compares implement the unsigned threshold tests exactly.
//! - The error write-back computes `x − q·scale` as a multiply followed
//!   by a subtract — the same two roundings as the scalar code.
//! - Digit weighting uses exact integer multiplies (`vpmulld`) and the
//!   byte scans report the first flagged lane via `movemask` +
//!   `trailing_zeros`, so error offsets are exact, not rounded to a
//!   vector boundary.

use super::swar::{last_nonzero_in_word, ZERO_WORD};
use super::{HALF_BITS, INF_BITS, WEIGHTS};
use crate::quartic::{MAX_QUARTIC_BYTE, ZERO_BYTE};
use core::arch::x86_64::*;

/// IEEE abs mask for f32 bit patterns.
const ABS: u32 = 0x7fff_ffff;

/// Horizontal max of eight unsigned 32-bit lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hmax_epu32(v: __m256i) -> u32 {
    let m = _mm_max_epu32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    let m = _mm_max_epu32(m, _mm_shuffle_epi32::<0b0100_1110>(m));
    let m = _mm_max_epu32(m, _mm_shuffle_epi32::<0b1011_0001>(m));
    _mm_cvtsi128_si32(m) as u32
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn max_abs_finite(xs: &[f32]) -> (f32, bool) {
    let absmask = _mm256_set1_epi32(ABS as i32);
    let mut acc = _mm256_setzero_si256();
    let n = xs.len();
    let p = xs.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        acc = _mm256_max_epu32(acc, _mm256_and_si256(v, absmask));
        i += 8;
    }
    let mut mb = hmax_epu32(acc);
    while i < n {
        mb = mb.max(xs[i].to_bits() & ABS);
        i += 1;
    }
    (f32::from_bits(mb), mb < INF_BITS)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn accumulate_max_abs_finite(buf: &mut [f32], xs: &[f32]) -> (f32, bool) {
    let n = buf.len().min(xs.len());
    let absmask = _mm256_set1_epi32(ABS as i32);
    let mut acc = _mm256_setzero_si256();
    let bp = buf.as_mut_ptr();
    let xp = xs.as_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let s = _mm256_add_ps(_mm256_loadu_ps(bp.add(i)), _mm256_loadu_ps(xp.add(i)));
        _mm256_storeu_ps(bp.add(i), s);
        acc = _mm256_max_epu32(acc, _mm256_and_si256(_mm256_castps_si256(s), absmask));
        i += 8;
    }
    let mut mb = hmax_epu32(acc);
    while i < n {
        let s = buf[i] + xs[i];
        buf[i] = s;
        mb = mb.max(s.to_bits() & ABS);
        i += 1;
    }
    (f32::from_bits(mb), mb < INF_BITS)
}

/// Eight quartic digits (i32 lanes in `{0, 1, 2}`) of `x · inv`: the
/// vector form of [`super::digit_of`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn digits_epi32(x: __m256, inv: __m256) -> __m256i {
    let bits = _mm256_castps_si256(_mm256_mul_ps(x, inv));
    let ab = _mm256_and_si256(bits, _mm256_set1_epi32(ABS as i32));
    let ge_half = _mm256_cmpgt_epi32(ab, _mm256_set1_epi32(HALF_BITS as i32 - 1));
    let le_inf = _mm256_cmpgt_epi32(_mm256_set1_epi32(INF_BITS as i32 + 1), ab);
    let nz = _mm256_and_si256(ge_half, le_inf); // all-ones where |q| = 1
    let sg = _mm256_srai_epi32::<31>(bits); // all-ones where the product is negative
    let d = _mm256_sub_epi32(_mm256_set1_epi32(1), nz); // 1 or 2
    let neg = _mm256_and_si256(nz, sg); // all-ones where the digit is 0
    _mm256_add_epi32(d, _mm256_add_epi32(neg, neg))
}

/// Packs the low byte of each 32-bit lane into a little-endian u64.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn pack_low_bytes(v: __m256i) -> u64 {
    let shuf = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    );
    let p = _mm256_shuffle_epi8(v, shuf);
    let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(p)) as u32 as u64;
    let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256::<1>(p)) as u32 as u64;
    lo | (hi << 32)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn quantize_ternary(xs: &[f32], inv: f32, out: &mut [i8]) {
    let invv = _mm256_set1_ps(inv);
    let one = _mm256_set1_epi32(1);
    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        let d = digits_epi32(_mm256_loadu_ps(xs.as_ptr().add(i)), invv);
        let word = pack_low_bytes(_mm256_sub_epi32(d, one));
        core::ptr::copy_nonoverlapping(
            word.to_le_bytes().as_ptr(),
            out.as_mut_ptr().add(i) as *mut u8,
            8,
        );
        i += 8;
    }
    while i < n {
        out[i] = super::digit_of(xs[i], inv) as i8 - 1;
        i += 1;
    }
}

/// `out[i] = syms[i] as f32 · scale`, eight lanes at a time: sign-extend
/// eight symbol bytes to i32 (`vpmovsxbd`), convert to f32 (exact for
/// the full i8 range), one `vmulps` — the same single IEEE multiply per
/// element as the scalar loop, so the result is bit-identical.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dequant_assign(syms: &[i8], scale: f32, out: &mut [f32]) {
    let sv = _mm256_set1_ps(scale);
    let n = syms.len();
    let mut i = 0;
    while i + 8 <= n {
        let b = _mm_loadl_epi64(syms.as_ptr().add(i) as *const __m128i);
        let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(f, sv));
        i += 8;
    }
    while i < n {
        out[i] = syms[i] as f32 * scale;
        i += 1;
    }
}

/// `out[i] += syms[i] as f32 · scale`: the same widen/convert as
/// [`dequant_assign`], then an explicit `vmulps` + `vaddps` pair — two
/// roundings, exactly the scalar `*o += s as f32 * scale` (the `fma`
/// feature stays disabled, so no contraction can fuse them).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dequant_add(syms: &[i8], scale: f32, out: &mut [f32]) {
    let sv = _mm256_set1_ps(scale);
    let n = syms.len();
    let mut i = 0;
    while i + 8 <= n {
        let b = _mm_loadl_epi64(syms.as_ptr().add(i) as *const __m128i);
        let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        let p = out.as_mut_ptr().add(i);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(f, sv)));
        i += 8;
    }
    while i < n {
        out[i] += syms[i] as f32 * scale;
        i += 1;
    }
}

/// Symbol-lane accumulate: adds the biased digit `syms[e] + 1` to u16
/// lane `e % 4` of `acc[e / 4]`, sixteen elements per iteration. On this
/// little-endian target the u64 words are just a contiguous u16 lane
/// array, so the kernel widens sixteen symbol bytes to i16
/// (`vpmovsxbw`), biases, and does one `vpaddw` against the lanes in
/// place. Pure integer arithmetic — trivially identical to the SWAR
/// word loop. The dispatcher's `ceil(n/4)`-words assertion makes every
/// 32-byte lane access in-bounds (`2·(i+16) ≤ 2n ≤ 8·acc.len()`).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn symbol_lanes_add(syms: &[i8], acc: &mut [u64]) {
    let ones = _mm256_set1_epi16(1);
    let base = acc.as_mut_ptr() as *mut u8;
    let n = syms.len();
    let mut i = 0;
    while i + 16 <= n {
        let b = _mm_loadu_si128(syms.as_ptr().add(i) as *const __m128i);
        let d = _mm256_add_epi16(_mm256_cvtepi8_epi16(b), ones);
        let p = base.add(2 * i) as *mut __m256i;
        _mm256_storeu_si256(p, _mm256_add_epi16(_mm256_loadu_si256(p), d));
        i += 16;
    }
    while i < n {
        acc[i / 4] += ((syms[i] + 1) as u64) << (16 * (i % 4));
        i += 1;
    }
}

/// Lane drain: `out[e] = (lane_e − members) as f32 · scale`, eight lanes
/// per iteration — zero-extend eight u16 lanes (`vpmovzxwd`), one exact
/// integer subtract, an exact i32→f32 convert (lane sums stay ≤ 65534,
/// far under 2²⁴), then the single IEEE multiply the scalar loop does.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn symbol_lanes_drain_assign(
    acc: &[u64],
    members: u32,
    scale: f32,
    out: &mut [f32],
) {
    let sv = _mm256_set1_ps(scale);
    let bias = _mm256_set1_epi32(members as i32);
    let base = acc.as_ptr() as *const u8;
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let lanes = _mm_loadu_si128(base.add(2 * i) as *const __m128i);
        let v = _mm256_sub_epi32(_mm256_cvtepu16_epi32(lanes), bias);
        let f = _mm256_mul_ps(_mm256_cvtepi32_ps(v), sv);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), f);
        i += 8;
    }
    while i < n {
        let lane = ((acc[i / 4] >> (16 * (i % 4))) & 0xffff) as i32;
        out[i] = (lane - members as i32) as f32 * scale;
        i += 1;
    }
}

/// [`symbol_lanes_drain_assign`] that accumulates: the drained product
/// goes through an explicit `vmulps` + `vaddps` pair — the scalar
/// path's two roundings, never an FMA.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn symbol_lanes_drain_add(
    acc: &[u64],
    members: u32,
    scale: f32,
    out: &mut [f32],
) {
    let sv = _mm256_set1_ps(scale);
    let bias = _mm256_set1_epi32(members as i32);
    let base = acc.as_ptr() as *const u8;
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let lanes = _mm_loadu_si128(base.add(2 * i) as *const __m128i);
        let v = _mm256_sub_epi32(_mm256_cvtepu16_epi32(lanes), bias);
        let f = _mm256_mul_ps(_mm256_cvtepi32_ps(v), sv);
        let p = out.as_mut_ptr().add(i);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), f));
        i += 8;
    }
    while i < n {
        let lane = ((acc[i / 4] >> (16 * (i % 4))) & 0xffff) as i32;
        out[i] += (lane - members as i32) as f32 * scale;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn pack_chunk(
    srcs: &[&[f32]; 5],
    inv: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    let full = srcs
        .iter()
        .map(|s| s.len())
        .min()
        .expect("5 srcs")
        .min(out.len());
    let blocks = full / 8;
    let invv = _mm256_set1_ps(inv);
    let mut last_nonzero = None;
    for b in 0..blocks {
        let i = b * 8;
        let mut acc = _mm256_setzero_si256();
        for j in 0..5 {
            let d = digits_epi32(_mm256_loadu_ps(srcs[j].as_ptr().add(i)), invv);
            acc = _mm256_add_epi32(
                acc,
                _mm256_mullo_epi32(d, _mm256_set1_epi32(WEIGHTS[j] as i32)),
            );
        }
        let word = pack_low_bytes(acc);
        out[i..i + 8].copy_from_slice(&word.to_le_bytes());
        if word != ZERO_WORD {
            last_nonzero = Some(base + i + last_nonzero_in_word(word));
        }
    }
    for i in blocks * 8..out.len() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = srcs[j];
            let digit = if i < s.len() {
                super::digit_of(s[i], inv)
            } else {
                1
            };
            byte += digit * w;
        }
        out[i] = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn pack_chunk_ea(
    srcs: &mut [&mut [f32]; 5],
    inv: f32,
    scale: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    let full = srcs
        .iter()
        .map(|s| s.len())
        .min()
        .expect("5 srcs")
        .min(out.len());
    let blocks = full / 8;
    let invv = _mm256_set1_ps(inv);
    let scalev = _mm256_set1_ps(scale);
    let one = _mm256_set1_epi32(1);
    let mut last_nonzero = None;
    for b in 0..blocks {
        let i = b * 8;
        let mut acc = _mm256_setzero_si256();
        for (j, s) in srcs.iter_mut().enumerate() {
            let x = _mm256_loadu_ps(s.as_ptr().add(i));
            let d = digits_epi32(x, invv);
            // Write back x − q·scale: one multiply, one subtract — the
            // exact scalar rounding sequence (no FMA contraction).
            let qf = _mm256_cvtepi32_ps(_mm256_sub_epi32(d, one));
            let r = _mm256_sub_ps(x, _mm256_mul_ps(qf, scalev));
            _mm256_storeu_ps(s.as_mut_ptr().add(i), r);
            acc = _mm256_add_epi32(
                acc,
                _mm256_mullo_epi32(d, _mm256_set1_epi32(WEIGHTS[j] as i32)),
            );
        }
        let word = pack_low_bytes(acc);
        out[i..i + 8].copy_from_slice(&word.to_le_bytes());
        if word != ZERO_WORD {
            last_nonzero = Some(base + i + last_nonzero_in_word(word));
        }
    }
    for i in blocks * 8..out.len() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = &mut *srcs[j];
            let digit = if i < s.len() {
                let x = s[i];
                let d = super::digit_of(x, inv);
                s[i] = x - (d as i8 - 1) as f32 * scale;
                d
            } else {
                1
            };
            byte += digit * w;
        }
        out[i] = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn find_invalid_quartic(h: &[u8]) -> Option<usize> {
    let limit = _mm256_set1_epi8(MAX_QUARTIC_BYTE as i8);
    let zero = _mm256_setzero_si256();
    let n = h.len();
    let p = h.as_ptr();
    let mut i = 0;
    while i + 32 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        // Saturating v − 242 is zero exactly when v ≤ 242.
        let ok = _mm256_cmpeq_epi8(_mm256_subs_epu8(v, limit), zero);
        let bad = !(_mm256_movemask_epi8(ok) as u32);
        if bad != 0 {
            return Some(i + bad.trailing_zeros() as usize);
        }
        i += 32;
    }
    h[i..]
        .iter()
        .position(|&b| b > MAX_QUARTIC_BYTE)
        .map(|o| i + o)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn find_zero_byte(h: &[u8], from: usize) -> usize {
    let zb = _mm256_set1_epi8(ZERO_BYTE as i8);
    let n = h.len();
    let p = h.as_ptr();
    let mut i = from;
    while i + 32 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        let hits = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zb)) as u32;
        if hits != 0 {
            return i + hits.trailing_zeros() as usize;
        }
        i += 32;
    }
    h[i..]
        .iter()
        .position(|&b| b == ZERO_BYTE)
        .map_or(n, |o| i + o)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn find_nonzero_byte(h: &[u8], from: usize) -> usize {
    let zb = _mm256_set1_epi8(ZERO_BYTE as i8);
    let n = h.len();
    let p = h.as_ptr();
    let mut i = from;
    while i + 32 <= n {
        let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
        let misses = !(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zb)) as u32);
        if misses != 0 {
            return i + misses.trailing_zeros() as usize;
        }
        i += 32;
    }
    h[i..]
        .iter()
        .position(|&b| b != ZERO_BYTE)
        .map_or(n, |o| i + o)
}
