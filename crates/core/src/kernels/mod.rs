//! Runtime-dispatched encode kernels: scalar reference, branchless u64
//! SWAR, and `core::arch` x86-64 intrinsics.
//!
//! The 3LC encode path — max-magnitude reduction, fused ternary
//! quantization + quartic packing, and zero-run scanning — exists in
//! three implementation tiers behind one dispatch point:
//!
//! - [`CodecImpl::Scalar`]: the straightforward reference loops. Always
//!   available; the other tiers are defined by being bit-for-bit
//!   identical to it.
//! - [`CodecImpl::Swar`]: branchless, word-at-a-time kernels built on
//!   plain `u64` arithmetic ("SIMD within a register"). Always available,
//!   100% safe code, and written so LLVM auto-vectorizes the float lanes.
//! - [`CodecImpl::Simd`]: explicit AVX2 intrinsics (`core::arch::x86_64`),
//!   selected at runtime only when the CPU reports AVX2.
//!
//! Selection happens once per process ([`selection`]): the best available
//! tier wins, unless `THREELC_CODEC_IMPL=scalar|swar|simd` forces one for
//! testing. A forced tier that the host cannot run falls back to the best
//! available tier and the selection records the downgrade, so callers
//! (`threelc codec`, the CI dispatch matrix) can report it loudly instead
//! of silently testing the wrong code.
//!
//! # The bit-identity argument
//!
//! Every tier must produce byte-identical output — including identical
//! error-accumulation buffers and identical corrupt-input error offsets —
//! because distributed runs mix hosts and the protocol compares payloads
//! bit for bit. The kernels keep that promise by construction:
//!
//! - **Quantization** maps `t = x · inv` to `{-1, 0, 1}` by the sign of
//!   `t` and the single comparison `|t| ≥ 0.5`, evaluated on the IEEE bit
//!   pattern (`(bits & 0x7fff_ffff) ≥ 0x3f00_0000`, with NaN excluded by
//!   `≤ 0x7f80_0000`). For every `|t| < 1.5` this equals
//!   `t.round() as i8` exactly — and `|t| ≤ 1 + 2ε` always holds when
//!   `inv` is finite, because `scale = max|x| · s ≥ max|x|` (`s ≥ 1` and
//!   rounding a product of positives never lands below the larger
//!   representable factor). The float multiply itself is a single
//!   IEEE-exact operation on every tier (no FMA contraction is emitted
//!   from explicit `a * b`). The one place the comparison form *differs*
//!   from the historical `round()` form is the degenerate corner where
//!   `scale` is subnormal and `inv` overflows to `+inf`: `round(±inf) as
//!   i8` saturated to `±127`, which poisoned the downstream quartic pack
//!   (a debug-build panic). The comparison form yields `±1` there —
//!   well-defined ternary output on all tiers — and `0 · inf = NaN`
//!   quantizes to `0` exactly as the saturating cast did.
//! - **Max-|x| reduction**: for non-negative finite floats the IEEE bit
//!   pattern orders exactly like the integer it spells, so an integer max
//!   over `bits & 0x7fff_ffff` equals the float max the scalar tier
//!   computes. When any input is non-finite every tier reports
//!   `finite = false` and the caller discards the max and errors, so the
//!   tiers only need to agree on finiteness there (exponent ≠ 0xFF,
//!   checked bitwise identically).
//! - **Quartic packing** is integer arithmetic: digits in `{0, 1, 2}`
//!   weighted by `{81, 27, 9, 3, 1}` never exceed 242, so the SWAR tier
//!   can scale a whole 8-digit word with one `u64` multiply and sum the
//!   five words without any lane ever carrying into its neighbour.
//! - **Zero-run scanning** only locates byte positions (first `== 121`,
//!   first `!= 121`, first `> 242`); word- and vector-at-a-time scans
//!   refine their last word/vector to the exact first index, so offsets
//!   in emitted runs and in `InvalidQuarticByte` errors are identical.
//!
//! `tests/dispatch_identity.rs` enforces all of this differentially on
//! adversarial inputs (NaN/inf/subnormals, all-zero and no-zero tensors,
//! lengths straddling the 5-symbol and chunk boundaries).

use std::fmt;
use std::sync::OnceLock;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod simd_x86;
mod swar;

/// Environment variable forcing a codec implementation tier (for tests,
/// benchmarks, and the CI dispatch matrix).
pub const CODEC_IMPL_ENV: &str = "THREELC_CODEC_IMPL";

/// IEEE-754 bit pattern of `0.5f32`: the quantization threshold.
const HALF_BITS: u32 = 0x3f00_0000;
/// IEEE-754 bit pattern of `f32::INFINITY`; larger magnitudes are NaN.
const INF_BITS: u32 = 0x7f80_0000;
/// Quartic digit weights, most-significant partition first (`3⁴ … 3⁰`).
const WEIGHTS: [u8; 5] = [81, 27, 9, 3, 1];

/// One encode-kernel implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecImpl {
    /// Reference loops; always available.
    Scalar,
    /// Branchless u64 word-at-a-time kernels; always available, safe code.
    Swar,
    /// AVX2 intrinsics; available on x86-64 CPUs reporting AVX2.
    Simd,
}

impl CodecImpl {
    /// Every tier, slowest first.
    pub const ALL: [CodecImpl; 3] = [CodecImpl::Scalar, CodecImpl::Swar, CodecImpl::Simd];

    /// The tier's lowercase name (`scalar`, `swar`, `simd`), as accepted
    /// by [`CODEC_IMPL_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            CodecImpl::Scalar => "scalar",
            CodecImpl::Swar => "swar",
            CodecImpl::Simd => "simd",
        }
    }

    /// Parses a tier name (the values accepted in [`CODEC_IMPL_ENV`]).
    pub fn parse(s: &str) -> Option<CodecImpl> {
        match s {
            "scalar" => Some(CodecImpl::Scalar),
            "swar" => Some(CodecImpl::Swar),
            "simd" => Some(CodecImpl::Simd),
            _ => None,
        }
    }

    /// Whether this host can run the tier. `Scalar` and `Swar` always
    /// can; `Simd` requires an x86-64 CPU reporting AVX2 at runtime.
    pub fn is_available(self) -> bool {
        match self {
            CodecImpl::Scalar | CodecImpl::Swar => true,
            #[cfg(target_arch = "x86_64")]
            CodecImpl::Simd => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            CodecImpl::Simd => false,
        }
    }

    /// The fastest tier this host can run.
    pub fn best_available() -> CodecImpl {
        if CodecImpl::Simd.is_available() {
            CodecImpl::Simd
        } else {
            CodecImpl::Swar
        }
    }
}

impl fmt::Display for CodecImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the process-wide tier was chosen (see [`selection`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionSource {
    /// Best available tier; [`CODEC_IMPL_ENV`] was unset.
    Auto,
    /// Forced via [`CODEC_IMPL_ENV`] and available.
    Forced,
    /// [`CODEC_IMPL_ENV`] requested the contained tier, but this host
    /// cannot run it; the selection fell back to the best available one.
    ForcedUnavailable(CodecImpl),
}

/// The process-wide codec tier and how it was picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecSelection {
    /// The tier every new [`ThreeLcCompressor`](crate::ThreeLcCompressor)
    /// uses.
    pub imp: CodecImpl,
    /// Whether the environment forced it.
    pub source: SelectionSource,
}

impl CodecSelection {
    /// One-line human description, e.g. `simd (auto)` or
    /// `swar (requested simd unavailable on this host)`.
    pub fn describe(&self) -> String {
        match self.source {
            SelectionSource::Auto => format!("{} (auto)", self.imp),
            SelectionSource::Forced => format!("{} (forced via {CODEC_IMPL_ENV})", self.imp),
            SelectionSource::ForcedUnavailable(want) => {
                format!("{} (requested {want} unavailable on this host)", self.imp)
            }
        }
    }
}

/// The process-wide codec selection, resolved once on first use.
///
/// Honors [`CODEC_IMPL_ENV`] (`scalar`/`swar`/`simd`); an unset or empty
/// variable picks [`CodecImpl::best_available`]. A forced-but-unavailable tier
/// falls back to the best available one and records the downgrade in
/// [`SelectionSource::ForcedUnavailable`].
///
/// # Panics
///
/// Panics on an *invalid* value of the variable: a typo silently falling
/// back to auto-selection would defeat the CI dispatch matrix, which
/// relies on the forced tier actually being the one under test.
pub fn selection() -> CodecSelection {
    static SELECTION: OnceLock<CodecSelection> = OnceLock::new();
    // A set-but-empty variable counts as unset: CI matrices routinely
    // export an empty string for the "default" leg.
    *SELECTION.get_or_init(|| match std::env::var(CODEC_IMPL_ENV) {
        Err(_) => CodecSelection {
            imp: CodecImpl::best_available(),
            source: SelectionSource::Auto,
        },
        Ok(raw) if raw.is_empty() => CodecSelection {
            imp: CodecImpl::best_available(),
            source: SelectionSource::Auto,
        },
        Ok(raw) => {
            let want = CodecImpl::parse(&raw)
                .unwrap_or_else(|| panic!("{CODEC_IMPL_ENV}={raw} is not one of scalar|swar|simd"));
            if want.is_available() {
                CodecSelection {
                    imp: want,
                    source: SelectionSource::Forced,
                }
            } else {
                CodecSelection {
                    imp: CodecImpl::best_available(),
                    source: SelectionSource::ForcedUnavailable(want),
                }
            }
        }
    })
}

/// The process-wide active tier (shorthand for [`selection`]`().imp`).
pub fn active() -> CodecImpl {
    selection().imp
}

/// Quantizes `t = x · inv` to the quartic digit `round(t) + 1 ∈ {0,1,2}`.
///
/// Shared by the scalar and SWAR tiers (the AVX2 tier re-derives the same
/// arithmetic in vector registers). See the module docs for the proof
/// that this equals `(x * inv).round() as i8 + 1` for every non-degenerate
/// input.
#[inline(always)]
fn digit_of(x: f32, inv: f32) -> u8 {
    let tb = (x * inv).to_bits();
    let ab = tb & 0x7fff_ffff;
    let nz = (HALF_BITS..=INF_BITS).contains(&ab) as u8;
    let sg = (tb >> 31) as u8;
    // 1 (zero) + 1 if quantized nonzero − 2 if that nonzero is negative.
    1 + nz - (nz & sg) * 2
}

/// Resolves the tier to actually execute: an explicitly requested but
/// unavailable `Simd` degrades to `Swar` (identical output, no illegal
/// instruction) instead of crashing.
#[inline]
fn runnable(imp: CodecImpl) -> CodecImpl {
    if imp == CodecImpl::Simd && !imp.is_available() {
        CodecImpl::Swar
    } else {
        imp
    }
}

/// Max `|x|` and all-finite flag over `xs` (Equation 1's reduction).
///
/// Exactly the fold `(m.max(x.abs()), ok && x.is_finite())` starting from
/// `(0.0, true)`; the max is meaningful only when the flag is true.
pub fn max_abs_finite(imp: CodecImpl, xs: &[f32]) -> (f32, bool) {
    match runnable(imp) {
        CodecImpl::Scalar => scalar::max_abs_finite(xs),
        CodecImpl::Swar => swar::max_abs_finite(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::max_abs_finite(xs) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Fused error-accumulation step: `buf[i] += xs[i]`, then the same
/// reduction as [`max_abs_finite`] over the updated buffer.
pub fn accumulate_max_abs_finite(imp: CodecImpl, buf: &mut [f32], xs: &[f32]) -> (f32, bool) {
    debug_assert_eq!(buf.len(), xs.len());
    match runnable(imp) {
        CodecImpl::Scalar => scalar::accumulate_max_abs_finite(buf, xs),
        CodecImpl::Swar => swar::accumulate_max_abs_finite(buf, xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::accumulate_max_abs_finite(buf, xs) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Quantizes each `x` to `round(x · inv) ∈ {-1, 0, 1}` (Equation 2).
///
/// # Panics
///
/// Panics if `out.len() != xs.len()`.
pub fn quantize_ternary(imp: CodecImpl, xs: &[f32], inv: f32, out: &mut [i8]) {
    assert_eq!(xs.len(), out.len(), "output must match input length");
    match runnable(imp) {
        CodecImpl::Scalar => scalar::quantize_ternary(xs, inv, out),
        CodecImpl::Swar => swar::quantize_ternary(xs, inv, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::quantize_ternary(xs, inv, out) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Fused quantize + quartic pack for one chunk of output bytes.
///
/// `srcs[j]` holds this chunk's slice of quartic partition `j`
/// (`input[j·L + lo .. j·L + hi]` clamped to the tensor length); output
/// byte `i` combines digit `round(srcs[j][i] · inv) + 1` across the five
/// partitions, with the padding digit 1 past each slice's end. Returns
/// the absolute index (`base` + chunk offset) of the last byte that is
/// not the all-zero byte 121, for zero-run boundary alignment.
pub fn pack_chunk(
    imp: CodecImpl,
    srcs: &[&[f32]; 5],
    inv: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    for s in srcs {
        debug_assert!(s.len() <= out.len());
    }
    match runnable(imp) {
        CodecImpl::Scalar => scalar::pack_chunk(srcs, inv, out, base),
        CodecImpl::Swar => swar::pack_chunk(srcs, inv, out, base),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::pack_chunk(srcs, inv, out, base) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// [`pack_chunk`] over the error-accumulation buffer: additionally writes
/// the post-quantization residual `x − q · scale` back into each source
/// slice (Figure 3 steps (a)+(b)), fused into the same pass.
pub fn pack_chunk_ea(
    imp: CodecImpl,
    srcs: &mut [&mut [f32]; 5],
    inv: f32,
    scale: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    for s in srcs.iter() {
        debug_assert!(s.len() <= out.len());
    }
    match runnable(imp) {
        CodecImpl::Scalar => scalar::pack_chunk_ea(srcs, inv, scale, out, base),
        CodecImpl::Swar => swar::pack_chunk_ea(srcs, inv, scale, out, base),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::pack_chunk_ea(srcs, inv, scale, out, base) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Packs ternary values (partition layout, zero-padded) into quartic
/// bytes: the dispatchable core of [`crate::quartic::encode`]. `srcs[j]`
/// is partition `j` of the value stream.
pub fn pack_ternary(imp: CodecImpl, srcs: &[&[i8]; 5], out: &mut [u8]) {
    for s in srcs {
        debug_assert!(s.len() <= out.len());
    }
    match runnable(imp) {
        CodecImpl::Scalar => scalar::pack_ternary(srcs, out),
        // The ternary-input pack has no float lanes for AVX2 to win on;
        // the SWAR word kernel is the fast path for both upper tiers.
        CodecImpl::Swar | CodecImpl::Simd => swar::pack_ternary(srcs, out),
    }
}

/// Dequantize-assign: `out[i] = syms[i] as f32 · scale`.
///
/// The first accepted worker of an exact-mode compressed-domain
/// aggregation *assigns* into the accumulator (rather than adding to a
/// zeroed one) so that `-0.0` products — e.g. `scale == 0.0`, `sym == -1`
/// — survive exactly as they did when the seed path moved the first
/// decoded tensor into the sum. Each element is one IEEE multiply, so
/// every tier is bit-identical by construction.
///
/// # Panics
///
/// Panics if `out.len() != syms.len()`.
pub fn dequant_assign(imp: CodecImpl, syms: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(syms.len(), out.len(), "output must match symbol length");
    match runnable(imp) {
        CodecImpl::Scalar => scalar::dequant_assign(syms, scale, out),
        CodecImpl::Swar => swar::dequant_assign(syms, scale, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::dequant_assign(syms, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Dequantize-accumulate: `out[i] += syms[i] as f32 · scale`.
///
/// Exact-mode aggregation applies this once per accepted worker after the
/// first, reproducing the seed path's worker-order `Tensor::add_assign`
/// float sums element for element (one multiply + one add per element,
/// both IEEE-exact, no FMA contraction from explicit `a * b + c` split
/// across statements).
///
/// # Panics
///
/// Panics if `out.len() != syms.len()`.
pub fn dequant_add(imp: CodecImpl, syms: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(syms.len(), out.len(), "output must match symbol length");
    match runnable(imp) {
        CodecImpl::Scalar => scalar::dequant_add(syms, scale, out),
        CodecImpl::Swar => swar::dequant_add(syms, scale, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::dequant_add(syms, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Accumulates one worker's ternary symbols into widened integer lanes:
/// element `e` adds the biased digit `syms[e] + 1 ∈ {0,1,2}` to u16 lane
/// `e % 4` of `acc[e / 4]`.
///
/// This is the compressed-aggregation inner loop: workers sharing a scale
/// sum their symbols as integers (exact, order-free) and defer the float
/// multiply to one [`symbol_lanes_drain_assign`]/[`symbol_lanes_drain_add`]
/// pass per scale group. The bias keeps lanes non-negative so no borrow
/// can cross lanes; the caller must keep the group size ≤ 32767 members
/// (each add contributes ≤ 2 per lane) or lanes overflow into neighbours.
///
/// # Panics
///
/// Panics if `acc` is shorter than `syms.len().div_ceil(4)` words.
pub fn symbol_lanes_add(imp: CodecImpl, syms: &[i8], acc: &mut [u64]) {
    assert!(
        acc.len() >= syms.len().div_ceil(4),
        "lane buffer must hold ceil(n/4) words"
    );
    match runnable(imp) {
        CodecImpl::Scalar => scalar::symbol_lanes_add(syms, acc),
        CodecImpl::Swar => swar::symbol_lanes_add(syms, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::symbol_lanes_add(syms, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// Drains biased symbol lanes to floats: `out[e] = (lane_e − members) as
/// f32 · scale`, where `members` is how many workers were accumulated
/// (removing `members` copies of the +1 bias in one integer subtract).
///
/// The lane sum is exact integer arithmetic, so the result is a single
/// IEEE multiply per element — deterministic and tier-identical.
///
/// # Panics
///
/// Panics if `acc` is shorter than `out.len().div_ceil(4)` words.
pub fn symbol_lanes_drain_assign(
    imp: CodecImpl,
    acc: &[u64],
    members: u32,
    scale: f32,
    out: &mut [f32],
) {
    assert!(
        acc.len() >= out.len().div_ceil(4),
        "lane buffer must hold ceil(n/4) words"
    );
    match runnable(imp) {
        CodecImpl::Scalar => scalar::symbol_lanes_drain_assign(acc, members, scale, out),
        CodecImpl::Swar => swar::symbol_lanes_drain_assign(acc, members, scale, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::symbol_lanes_drain_assign(acc, members, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// [`symbol_lanes_drain_assign`] that accumulates (`out[e] += …`): scale
/// groups after the first add their drained sums onto the group-0 result.
///
/// # Panics
///
/// Panics if `acc` is shorter than `out.len().div_ceil(4)` words.
pub fn symbol_lanes_drain_add(
    imp: CodecImpl,
    acc: &[u64],
    members: u32,
    scale: f32,
    out: &mut [f32],
) {
    assert!(
        acc.len() >= out.len().div_ceil(4),
        "lane buffer must hold ceil(n/4) words"
    );
    match runnable(imp) {
        CodecImpl::Scalar => scalar::symbol_lanes_drain_add(acc, members, scale, out),
        CodecImpl::Swar => swar::symbol_lanes_drain_add(acc, members, scale, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::symbol_lanes_drain_add(acc, members, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// First index whose byte exceeds the quartic maximum 242, if any — the
/// offset reported by `InvalidQuarticByte` errors.
pub fn find_invalid_quartic(imp: CodecImpl, h: &[u8]) -> Option<usize> {
    match runnable(imp) {
        CodecImpl::Scalar => h.iter().position(|&b| b > crate::quartic::MAX_QUARTIC_BYTE),
        CodecImpl::Swar => swar::find_invalid_quartic(h),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::find_invalid_quartic(h) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// First index `≥ from` holding the all-zero quartic byte 121, or
/// `h.len()` when none remains (zero-run detection's forward scan).
pub fn find_zero_byte(imp: CodecImpl, h: &[u8], from: usize) -> usize {
    debug_assert!(from <= h.len());
    match runnable(imp) {
        CodecImpl::Scalar => h[from..]
            .iter()
            .position(|&b| b == crate::quartic::ZERO_BYTE)
            .map_or(h.len(), |p| from + p),
        CodecImpl::Swar => swar::find_zero_byte(h, from),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::find_zero_byte(h, from) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

/// First index `≥ from` holding anything but the all-zero quartic byte
/// 121, or `h.len()`: measures the zero run starting at `from`.
pub fn find_nonzero_byte(imp: CodecImpl, h: &[u8], from: usize) -> usize {
    debug_assert!(from <= h.len());
    match runnable(imp) {
        CodecImpl::Scalar => h[from..]
            .iter()
            .position(|&b| b != crate::quartic::ZERO_BYTE)
            .map_or(h.len(), |p| from + p),
        CodecImpl::Swar => swar::find_nonzero_byte(h, from),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` returns Simd only when AVX2 was detected.
        CodecImpl::Simd => unsafe { simd_x86::find_nonzero_byte(h, from) },
        #[cfg(not(target_arch = "x86_64"))]
        CodecImpl::Simd => unreachable!("Simd resolves to Swar off x86-64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_and_display() {
        for imp in CodecImpl::ALL {
            assert_eq!(CodecImpl::parse(imp.name()), Some(imp));
            assert_eq!(imp.to_string(), imp.name());
        }
        assert_eq!(CodecImpl::parse("sse2"), None);
        assert_eq!(CodecImpl::parse("SIMD"), None, "names are lowercase");
    }

    #[test]
    fn scalar_and_swar_are_always_available() {
        assert!(CodecImpl::Scalar.is_available());
        assert!(CodecImpl::Swar.is_available());
        assert!(CodecImpl::best_available() != CodecImpl::Scalar);
        assert!(CodecImpl::best_available().is_available());
    }

    #[test]
    fn selection_is_stable_and_runnable() {
        let s = selection();
        assert_eq!(s, selection(), "selection must be cached");
        assert!(s.imp.is_available());
        assert_eq!(active(), s.imp);
        assert!(!s.describe().is_empty());
    }

    #[test]
    fn describe_mentions_the_downgrade() {
        let sel = CodecSelection {
            imp: CodecImpl::Swar,
            source: SelectionSource::ForcedUnavailable(CodecImpl::Simd),
        };
        let text = sel.describe();
        assert!(text.contains("swar") && text.contains("simd") && text.contains("unavailable"));
    }

    #[test]
    fn digit_of_matches_round_on_representative_points() {
        // digit_of must equal round(x·inv)+1 wherever round stays ternary.
        let inv = 1.0f32;
        for &(x, want) in &[
            (0.0f32, 1u8),
            (-0.0, 1),
            (0.49999997, 1),
            (0.5, 2), // round half away from zero
            (-0.5, 0),
            (1.0, 2),
            (-1.0, 0),
            (0.25, 1),
            (f32::MIN_POSITIVE / 2.0, 1), // subnormal input
        ] {
            assert_eq!(digit_of(x, inv), want, "x={x}");
            let r = ((x * inv) as f64).round();
            if (-1.0..=1.0).contains(&r) {
                assert_eq!(digit_of(x, inv) as i8 - 1, r as i8, "x={x}");
            }
        }
        // The degenerate inv=inf corner: NaN (0·inf) quantizes to 0 and
        // overflowed magnitudes clamp to ±1 — well-defined ternary.
        assert_eq!(digit_of(0.0, f32::INFINITY), 1);
        assert_eq!(digit_of(1.0e-40, f32::INFINITY), 2);
        assert_eq!(digit_of(-1.0e-40, f32::INFINITY), 0);
    }

    #[test]
    fn runnable_never_returns_an_unavailable_tier() {
        for imp in CodecImpl::ALL {
            assert!(runnable(imp).is_available());
        }
    }
}
