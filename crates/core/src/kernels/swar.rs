//! Branchless u64 SWAR kernels ("SIMD within a register").
//!
//! All safe code: unaligned word access goes through
//! `u64::from_le_bytes`/`to_le_bytes` on 8-byte chunks, and the float
//! lanes are written as fixed-width 8-element inner loops that LLVM
//! auto-vectorizes. The u64 tricks used here:
//!
//! - **Weighted digit pack**: eight quartic digits (each ≤ 2) live one
//!   per byte in a u64; multiplying the whole word by a weight ≤ 81 and
//!   summing the five weighted words packs eight output bytes at once.
//!   No lane can carry into its neighbour because every per-byte total
//!   is ≤ 2·(81+27+9+3+1) = 242 < 256.
//! - **Per-byte increment** (`{-1,0,1}` → `{0,1,2}` as `u8` lanes):
//!   `((v & 0x7f7f…) + 0x0101…) ^ (v & 0x8080…)` adds 1 to every byte
//!   with the carry chain severed at each lane's top bit.
//! - **First-zero-byte scan** (classic `strlen` trick): with
//!   `x = v ^ 0x7979…`, `(x − 0x0101…) & !x & 0x8080…` flags zero bytes
//!   of `x`; bytes below the first zero can neither borrow nor flag, so
//!   `trailing_zeros / 8` is the exact first index.
//! - **Bytes > 242**: `v & ((v & 0x7f7f…) + 0x0d0d…) & 0x8080…` flags a
//!   byte iff its top bit is set and its low 7 bits are ≥ 0x73 — exactly
//!   the range 243–255. No borrows are involved, so every flag is exact.

use super::{digit_of, INF_BITS, WEIGHTS};
use crate::quartic::{MAX_QUARTIC_BYTE, ZERO_BYTE};

/// Eight copies of [`ZERO_BYTE`] (the all-zero quartic byte 121).
pub(super) const ZERO_WORD: u64 = 0x7979_7979_7979_7979;
/// Low 7 bits of every byte lane.
const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
/// Top bit of every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;
/// 1 in every byte lane.
const ONES: u64 = 0x0101_0101_0101_0101;
/// `256 − 243` in every byte lane: offsets the >242 range test.
const REP13: u64 = 0x0d0d_0d0d_0d0d_0d0d;

/// IEEE abs mask for f32 bit patterns.
const ABS: u32 = 0x7fff_ffff;

pub(super) fn max_abs_finite(xs: &[f32]) -> (f32, bool) {
    // For non-negative finite floats the bit pattern orders like the
    // integer it spells, so an 8-lane integer max over `bits & ABS`
    // equals the scalar `f32::max` fold — and `max < INF_BITS` holds iff
    // every input was finite (NaN/inf magnitudes are ≥ INF_BITS). When
    // the flag is false the returned max is unspecified (callers error
    // out and discard it).
    let mut lanes = [0u32; 8];
    let mut chunks = xs.chunks_exact(8);
    for c in chunks.by_ref() {
        for k in 0..8 {
            lanes[k] = lanes[k].max(c[k].to_bits() & ABS);
        }
    }
    let mut mb = 0u32;
    for &l in &lanes {
        mb = mb.max(l);
    }
    for &x in chunks.remainder() {
        mb = mb.max(x.to_bits() & ABS);
    }
    (f32::from_bits(mb), mb < INF_BITS)
}

pub(super) fn accumulate_max_abs_finite(buf: &mut [f32], xs: &[f32]) -> (f32, bool) {
    let mut lanes = [0u32; 8];
    let n = buf.len().min(xs.len());
    let mut i = 0;
    while i + 8 <= n {
        for k in 0..8 {
            let b = buf[i + k] + xs[i + k];
            buf[i + k] = b;
            lanes[k] = lanes[k].max(b.to_bits() & ABS);
        }
        i += 8;
    }
    let mut mb = 0u32;
    for &l in &lanes {
        mb = mb.max(l);
    }
    while i < n {
        let b = buf[i] + xs[i];
        buf[i] = b;
        mb = mb.max(b.to_bits() & ABS);
        i += 1;
    }
    (f32::from_bits(mb), mb < INF_BITS)
}

pub(super) fn quantize_ternary(xs: &[f32], inv: f32, out: &mut [i8]) {
    let mut i = 0;
    while i + 8 <= xs.len() {
        for k in 0..8 {
            out[i + k] = digit_of(xs[i + k], inv) as i8 - 1;
        }
        i += 8;
    }
    while i < xs.len() {
        out[i] = digit_of(xs[i], inv) as i8 - 1;
        i += 1;
    }
}

/// Eight quartic digits of `s[..8]` scaled by `inv`, one per output byte.
#[inline(always)]
fn digits8(s: &[f32], inv: f32) -> u64 {
    let mut d = 0u64;
    for (k, &x) in s[..8].iter().enumerate() {
        d |= (digit_of(x, inv) as u64) << (8 * k);
    }
    d
}

/// [`digits8`] with the error-accumulation residual written back.
#[inline(always)]
fn digits8_ea(s: &mut [f32], inv: f32, scale: f32) -> u64 {
    let mut d = 0u64;
    for (k, x) in s[..8].iter_mut().enumerate() {
        let dg = digit_of(*x, inv);
        *x -= (dg as i8 - 1) as f32 * scale;
        d |= (dg as u64) << (8 * k);
    }
    d
}

/// Index of the last byte of `word` differing from [`ZERO_BYTE`].
/// Requires `word != ZERO_WORD`.
#[inline(always)]
pub(super) fn last_nonzero_in_word(word: u64) -> usize {
    7 - ((word ^ ZERO_WORD).leading_zeros() / 8) as usize
}

pub(super) fn pack_chunk(
    srcs: &[&[f32]; 5],
    inv: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    // The word loop runs while all five partitions still have 8 elements;
    // only the ragged tail (at most the last partition boundary) pays the
    // padded per-byte path.
    let full = srcs
        .iter()
        .map(|s| s.len())
        .min()
        .expect("5 srcs")
        .min(out.len());
    let blocks = full / 8;
    let mut last_nonzero = None;
    for b in 0..blocks {
        let i = b * 8;
        let mut acc = 0u64;
        for j in 0..5 {
            acc =
                acc.wrapping_add(digits8(&srcs[j][i..i + 8], inv).wrapping_mul(WEIGHTS[j] as u64));
        }
        out[i..i + 8].copy_from_slice(&acc.to_le_bytes());
        if acc != ZERO_WORD {
            last_nonzero = Some(base + i + last_nonzero_in_word(acc));
        }
    }
    for i in blocks * 8..out.len() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = srcs[j];
            let digit = if i < s.len() { digit_of(s[i], inv) } else { 1 };
            byte += digit * w;
        }
        out[i] = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

pub(super) fn pack_chunk_ea(
    srcs: &mut [&mut [f32]; 5],
    inv: f32,
    scale: f32,
    out: &mut [u8],
    base: usize,
) -> Option<usize> {
    let full = srcs
        .iter()
        .map(|s| s.len())
        .min()
        .expect("5 srcs")
        .min(out.len());
    let blocks = full / 8;
    let mut last_nonzero = None;
    for b in 0..blocks {
        let i = b * 8;
        let mut acc = 0u64;
        for (j, s) in srcs.iter_mut().enumerate() {
            acc = acc.wrapping_add(
                digits8_ea(&mut s[i..i + 8], inv, scale).wrapping_mul(WEIGHTS[j] as u64),
            );
        }
        out[i..i + 8].copy_from_slice(&acc.to_le_bytes());
        if acc != ZERO_WORD {
            last_nonzero = Some(base + i + last_nonzero_in_word(acc));
        }
    }
    for i in blocks * 8..out.len() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = &mut *srcs[j];
            let digit = if i < s.len() {
                let x = s[i];
                let d = digit_of(x, inv);
                s[i] = x - (d as i8 - 1) as f32 * scale;
                d
            } else {
                1
            };
            byte += digit * w;
        }
        out[i] = byte;
        if byte != ZERO_BYTE {
            last_nonzero = Some(base + i);
        }
    }
    last_nonzero
}

/// Eight ternary values (`{-1,0,1}` as `i8`) shifted to digits `{0,1,2}`,
/// one per byte: the carry-suppressed per-byte `+1`.
#[inline(always)]
fn tern_digits8(s: &[i8]) -> u64 {
    let b: [u8; 8] = std::array::from_fn(|k| s[k] as u8);
    let v = u64::from_le_bytes(b);
    ((v & LO7) + ONES) ^ (v & HI)
}

pub(super) fn pack_ternary(srcs: &[&[i8]; 5], out: &mut [u8]) {
    let full = srcs
        .iter()
        .map(|s| s.len())
        .min()
        .expect("5 srcs")
        .min(out.len());
    let blocks = full / 8;
    for b in 0..blocks {
        let i = b * 8;
        let mut acc = 0u64;
        for j in 0..5 {
            acc =
                acc.wrapping_add(tern_digits8(&srcs[j][i..i + 8]).wrapping_mul(WEIGHTS[j] as u64));
        }
        out[i..i + 8].copy_from_slice(&acc.to_le_bytes());
    }
    for i in blocks * 8..out.len() {
        let mut byte = 0u8;
        for (j, w) in WEIGHTS.into_iter().enumerate() {
            let s = srcs[j];
            let digit = if i < s.len() { (s[i] + 1) as u8 } else { 1 };
            byte += digit * w;
        }
        out[i] = byte;
    }
}

pub(super) fn dequant_assign(syms: &[i8], scale: f32, out: &mut [f32]) {
    // `chunks_exact` (not index arithmetic) keeps the fixed-width body
    // free of bounds checks so the convert+multiply auto-vectorizes on
    // the baseline target.
    let mut oc = out.chunks_exact_mut(8);
    let mut sc = syms.chunks_exact(8);
    for (o, s) in (&mut oc).zip(&mut sc) {
        for k in 0..8 {
            o[k] = s[k] as f32 * scale;
        }
    }
    for (o, &s) in oc.into_remainder().iter_mut().zip(sc.remainder()) {
        *o = s as f32 * scale;
    }
}

pub(super) fn dequant_add(syms: &[i8], scale: f32, out: &mut [f32]) {
    let mut oc = out.chunks_exact_mut(8);
    let mut sc = syms.chunks_exact(8);
    for (o, s) in (&mut oc).zip(&mut sc) {
        for k in 0..8 {
            o[k] += s[k] as f32 * scale;
        }
    }
    for (o, &s) in oc.into_remainder().iter_mut().zip(sc.remainder()) {
        *o += s as f32 * scale;
    }
}

/// Spreads the low four bytes of `x` into the four u16 lanes of a u64
/// (byte `k` → lane `k`): the widening step between [`tern_digits8`]'s
/// byte digits and the u16 accumulator lanes.
#[inline(always)]
fn spread4(x: u64) -> u64 {
    let x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    (x | (x << 8)) & 0x00ff_00ff_00ff_00ff
}

pub(super) fn symbol_lanes_add(syms: &[i8], acc: &mut [u64]) {
    // Eight symbols per iteration: one carry-suppressed byte-lane +1
    // (`tern_digits8`), then two spreads widen the eight byte digits into
    // the u16 lanes of two consecutive accumulator words. Plain adds are
    // safe: the caller caps group size at 32767 members, so every lane
    // stays ≤ 65534 and nothing can carry across lanes.
    let n = syms.len();
    let mut i = 0;
    while i + 8 <= n {
        let d = tern_digits8(&syms[i..i + 8]);
        acc[i / 4] += spread4(d & 0xffff_ffff);
        acc[i / 4 + 1] += spread4(d >> 32);
        i += 8;
    }
    while i < n {
        acc[i / 4] += ((syms[i] + 1) as u64) << (16 * (i % 4));
        i += 1;
    }
}

pub(super) fn symbol_lanes_drain_assign(acc: &[u64], members: u32, scale: f32, out: &mut [f32]) {
    let n = out.len();
    let bias = members as i32;
    let mut i = 0;
    while i + 4 <= n {
        let w = acc[i / 4];
        for k in 0..4 {
            let lane = ((w >> (16 * k)) & 0xffff) as i32;
            out[i + k] = (lane - bias) as f32 * scale;
        }
        i += 4;
    }
    while i < n {
        let lane = ((acc[i / 4] >> (16 * (i % 4))) & 0xffff) as i32;
        out[i] = (lane - bias) as f32 * scale;
        i += 1;
    }
}

pub(super) fn symbol_lanes_drain_add(acc: &[u64], members: u32, scale: f32, out: &mut [f32]) {
    let n = out.len();
    let bias = members as i32;
    let mut i = 0;
    while i + 4 <= n {
        let w = acc[i / 4];
        for k in 0..4 {
            let lane = ((w >> (16 * k)) & 0xffff) as i32;
            out[i + k] += (lane - bias) as f32 * scale;
        }
        i += 4;
    }
    while i < n {
        let lane = ((acc[i / 4] >> (16 * (i % 4))) & 0xffff) as i32;
        out[i] += (lane - bias) as f32 * scale;
        i += 1;
    }
}

pub(super) fn find_invalid_quartic(h: &[u8]) -> Option<usize> {
    let mut i = 0;
    let mut chunks = h.chunks_exact(8);
    for c in chunks.by_ref() {
        let v = u64::from_le_bytes(c.try_into().expect("8 bytes"));
        let m = v & ((v & LO7) + REP13) & HI;
        if m != 0 {
            return Some(i + (m.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b > MAX_QUARTIC_BYTE)
        .map(|p| i + p)
}

pub(super) fn find_zero_byte(h: &[u8], from: usize) -> usize {
    let mut i = from;
    let mut chunks = h[from..].chunks_exact(8);
    for c in chunks.by_ref() {
        let x = u64::from_le_bytes(c.try_into().expect("8 bytes")) ^ ZERO_WORD;
        let m = x.wrapping_sub(ONES) & !x & HI;
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == ZERO_BYTE)
        .map_or(h.len(), |p| i + p)
}

pub(super) fn find_nonzero_byte(h: &[u8], from: usize) -> usize {
    let mut i = from;
    let mut chunks = h[from..].chunks_exact(8);
    for c in chunks.by_ref() {
        let x = u64::from_le_bytes(c.try_into().expect("8 bytes")) ^ ZERO_WORD;
        if x != 0 {
            // The lowest set bit of x sits inside the first differing byte.
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b != ZERO_BYTE)
        .map_or(h.len(), |p| i + p)
}
