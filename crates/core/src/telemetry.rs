//! Per-tensor compression telemetry.
//!
//! Every [`ThreeLcCompressor`](crate::ThreeLcCompressor) reports into the
//! process-global [`threelc_obs`] registry under the `threelc.*`
//! namespace. The histogram handles are resolved once at construction and
//! cached here, so the per-compress cost is a few relaxed atomic adds —
//! the registry's sharded lock is never touched on the hot path.
//!
//! Two probes are more expensive than a handful of atomics and therefore
//! only run when debug logging is enabled (`THREELC_LOG=debug`): the
//! error-accumulation L2 magnitude (an extra O(n) pass over the residual
//! buffer) and the zero-run-length histogram (one extra closure call per
//! run during zero-run encoding).

use crate::kernels::CodecImpl;
use std::sync::Arc;
use threelc_obs::{global, Counter, Histogram};

/// Cached handles to the global `threelc.*` compression metrics.
#[derive(Clone)]
pub struct CompressTelemetry {
    /// `threelc.compress.ratio` — float32 bytes in / wire bytes out.
    pub ratio: Arc<Histogram>,
    /// `threelc.compress.quartic_seconds` — time in quartic encoding
    /// (includes quantization of the accumulated buffer).
    pub quartic_seconds: Arc<Histogram>,
    /// `threelc.compress.zre_seconds` — time in zero-run encoding.
    pub zre_seconds: Arc<Histogram>,
    /// `threelc.decompress.seconds` — whole-payload decode time.
    pub decompress_seconds: Arc<Histogram>,
    /// `threelc.compress.zero_run_length` — lengths of the zero-byte runs
    /// the encoder replaced (split at the 14-byte escape maximum). Only
    /// recorded under `THREELC_LOG=debug`.
    pub zero_run_length: Arc<Histogram>,
    /// `threelc.compress.residual_l2` — L2 magnitude of the
    /// error-accumulation buffer after each compress. Only recorded under
    /// `THREELC_LOG=debug`.
    pub residual_l2: Arc<Histogram>,
    /// `threelc.compress.parallel_speedup` — effective speedup of each
    /// chunk-parallel encode: summed per-chunk busy seconds divided by the
    /// wall time of the parallel section. 1.0 means no win; the upper
    /// bound is the chunk count. Only recorded on the parallel path.
    pub parallel_speedup: Arc<Histogram>,
    /// `threelc.compress.chunk_seconds` — busy seconds of each parallel
    /// encode chunk (one sample per chunk), exposing stragglers among the
    /// codec workers. Only recorded on the parallel path.
    pub chunk_seconds: Arc<Histogram>,
    /// `threelc.codec.encode.{scalar,swar,simd}` — encode calls per codec
    /// implementation tier, indexed like [`CodecImpl::ALL`]. Makes the
    /// tier that actually ran attributable from any metrics dump, so a
    /// field host silently falling back to a slower tier shows up in
    /// telemetry rather than as an unexplained throughput regression.
    pub codec_encodes: [Arc<Counter>; 3],
}

impl CompressTelemetry {
    /// Handles into the process-global registry.
    pub fn from_global() -> Self {
        let reg = global();
        CompressTelemetry {
            ratio: reg.histogram("threelc.compress.ratio"),
            quartic_seconds: reg.histogram("threelc.compress.quartic_seconds"),
            zre_seconds: reg.histogram("threelc.compress.zre_seconds"),
            decompress_seconds: reg.histogram("threelc.decompress.seconds"),
            zero_run_length: reg.histogram("threelc.compress.zero_run_length"),
            residual_l2: reg.histogram("threelc.compress.residual_l2"),
            parallel_speedup: reg.histogram("threelc.compress.parallel_speedup"),
            chunk_seconds: reg.histogram("threelc.compress.chunk_seconds"),
            codec_encodes: [
                reg.counter("threelc.codec.encode.scalar"),
                reg.counter("threelc.codec.encode.swar"),
                reg.counter("threelc.codec.encode.simd"),
            ],
        }
    }

    /// Counts one encode on the given codec tier.
    pub fn record_encode(&self, imp: CodecImpl) {
        let idx = CodecImpl::ALL
            .iter()
            .position(|&i| i == imp)
            .expect("ALL covers every tier");
        self.codec_encodes[idx].inc();
    }
}

impl std::fmt::Debug for CompressTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The histograms are process-global aggregates; dumping their full
        // state from every compressor's Debug output would drown it.
        f.debug_struct("CompressTelemetry")
            .field("compress_count", &self.ratio.count())
            .finish()
    }
}

/// L2 norm of a slice, in one pass.
pub(crate) fn l2_norm(values: &[f32]) -> f64 {
    values
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_global_resolves_shared_handles() {
        let a = CompressTelemetry::from_global();
        let b = CompressTelemetry::from_global();
        assert!(Arc::ptr_eq(&a.ratio, &b.ratio));
        let before = a.ratio.count();
        b.ratio.record(4.0);
        assert_eq!(a.ratio.count(), before + 1);
    }

    #[test]
    fn debug_output_is_compact() {
        let t = CompressTelemetry::from_global();
        let s = format!("{t:?}");
        assert!(s.contains("CompressTelemetry"));
        assert!(!s.contains("buckets"), "must not dump histogram state: {s}");
    }

    #[test]
    fn l2_norm_matches_hand_computation() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }
}
