//! Wire payload size bounds for the 3LC format.
//!
//! A 3LC payload is a fixed 9-byte header (flags, scale, element count)
//! followed by the quartic byte stream, optionally zero-run encoded. Both
//! stages have exact size bounds:
//!
//! - quartic encoding is fixed-rate: `ceil(n / 5)` bytes for `n` values;
//! - zero-run encoding never expands (each input byte maps to at most one
//!   output byte) and at best collapses every [`zrle::MAX_RUN`] zero bytes
//!   into one escape byte.
//!
//! These bounds let transports size receive buffers before decoding and
//! let file/frame parsers reject element counts that could not possibly
//! fit the bytes at hand — *before* allocating count-proportional memory.

use crate::quartic;
use crate::zrle;

/// Bytes of the 3LC wire header: flags (u8), scale (f32 LE), count (u32 LE).
pub const WIRE_HEADER_LEN: usize = 9;

/// Header flag bit set when the body is zero-run encoded.
pub const WIRE_FLAG_ZRE: u8 = 0b0000_0001;

/// Bytes of quartic encoding for `values` ternary values (fixed-rate).
pub fn quartic_len(values: usize) -> usize {
    values.div_ceil(quartic::VALUES_PER_BYTE)
}

/// Largest possible 3LC payload for `values` values: header plus the full
/// quartic stream (zero-run encoding never expands).
pub fn max_payload_len(values: usize) -> usize {
    WIRE_HEADER_LEN + quartic_len(values)
}

/// Smallest possible 3LC payload for `values` values: header plus the
/// quartic stream with every zero run maximally collapsed.
pub fn min_payload_len(values: usize) -> usize {
    WIRE_HEADER_LEN + quartic_len(values).div_ceil(zrle::MAX_RUN)
}

/// Largest element count a payload of `payload_len` bytes could describe.
///
/// The inverse of [`min_payload_len`]: any claimed count above this bound
/// is malformed, no matter what the body holds. Saturates instead of
/// overflowing for absurd lengths.
pub fn max_values_for_payload(payload_len: usize) -> usize {
    let body = payload_len.saturating_sub(WIRE_HEADER_LEN);
    body.saturating_mul(zrle::MAX_RUN)
        .saturating_mul(quartic::VALUES_PER_BYTE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlq::SparsityMultiplier;
    use crate::{Compressor, ThreeLcCompressor, ThreeLcOptions};
    use threelc_tensor::{Shape, Tensor};

    #[test]
    fn bounds_bracket_real_payloads() {
        for n in [1usize, 4, 5, 6, 100, 1000] {
            // Worst case: alternating signs never form zero runs.
            let dense: Vec<f32> = (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            // Best case: all zeros collapse maximally.
            let sparse = vec![0.0f32; n];
            for data in [dense, sparse] {
                let t = Tensor::from_vec(data, [n]);
                let mut cx =
                    ThreeLcCompressor::new(Shape::new(&[n]), SparsityMultiplier::default());
                let wire = cx.compress(&t).expect("compress");
                assert!(wire.len() <= max_payload_len(n), "n={n}: {}", wire.len());
                assert!(wire.len() >= min_payload_len(n), "n={n}: {}", wire.len());
            }
        }
    }

    #[test]
    fn no_zre_payload_is_exactly_the_max() {
        let n = 777;
        let t = Tensor::from_vec(vec![0.0f32; n], [n]);
        let mut cx = ThreeLcCompressor::with_options(
            Shape::new(&[n]),
            ThreeLcOptions {
                sparsity: SparsityMultiplier::default(),
                zero_run_encoding: false,
                error_accumulation: false,
            },
        );
        assert_eq!(cx.compress(&t).expect("compress").len(), max_payload_len(n));
    }

    #[test]
    fn max_values_inverts_min_payload() {
        for n in [0usize, 1, 69, 70, 71, 12345] {
            assert!(max_values_for_payload(min_payload_len(n)) >= n, "n={n}");
        }
        // One byte of body cannot hold more than MAX_RUN escape-coded
        // quartic bytes' worth of values.
        assert_eq!(
            max_values_for_payload(WIRE_HEADER_LEN + 1),
            zrle::MAX_RUN * quartic::VALUES_PER_BYTE
        );
        // Truncated headers describe nothing.
        assert_eq!(max_values_for_payload(0), 0);
        assert_eq!(max_values_for_payload(WIRE_HEADER_LEN), 0);
    }

    #[test]
    fn absurd_lengths_saturate() {
        assert_eq!(max_values_for_payload(usize::MAX), usize::MAX);
    }
}
