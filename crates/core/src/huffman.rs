//! A canonical Huffman coder over bytes, used as the entropy-coding
//! comparison point for zero-run encoding.
//!
//! The paper argues (§3.3, §6) that zero-run encoding approaches the
//! compression of entropy coders like Huffman/Elias coding on quartic
//! streams while avoiding bit-level operations and lookup tables. This
//! module provides the comparison: a complete two-pass (per-payload
//! histogram + canonical code) byte Huffman coder. The ablation benchmark
//! `ablation_encoding` measures both ratio and speed against ZRE on real
//! training traffic.
//!
//! Wire format: `u32` symbol count, 256 × `u8` code lengths (0 = unused,
//! ≤ 32), then the bit stream (MSB-first within each byte).

use crate::DecodeError;

const MAX_CODE_LEN: u32 = 32;
/// Header: 4-byte count + 256 code lengths.
const HEADER_LEN: usize = 4 + 256;

/// Encodes a byte stream with a per-payload canonical Huffman code.
///
/// The header alone is 260 bytes, so this only pays off for payloads
/// larger than a few hundred bytes — one reason the paper prefers
/// zero-run encoding for per-tensor payloads.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut freq = [0u64; 256];
    for &b in input {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::with_capacity(HEADER_LEN + input.len() / 2);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    out.extend_from_slice(&lengths.map(|l| l as u8));

    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in input {
        let (code, len) = codes[b as usize];
        acc = (acc << len) | code as u64;
        nbits += len;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        out.push((acc << (8 - nbits)) as u8);
    }
    out
}

/// Decodes a Huffman-encoded stream.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated headers, invalid code-length
/// tables, or bit streams that end mid-symbol.
pub fn decode(payload: &[u8]) -> Result<Vec<u8>, DecodeError> {
    if payload.len() < HEADER_LEN {
        return Err(DecodeError::TruncatedHeader {
            have: payload.len(),
            need: HEADER_LEN,
        });
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let mut lengths = [0u32; 256];
    for (i, &l) in payload[4..4 + 256].iter().enumerate() {
        if l as u32 > MAX_CODE_LEN {
            return Err(DecodeError::Malformed {
                reason: format!("code length {l} exceeds maximum"),
            });
        }
        lengths[i] = l as u32;
    }
    if count == 0 {
        return Ok(Vec::new());
    }
    // Rebuild the canonical code table and a (length-ordered) lookup list.
    let codes = canonical_codes(&lengths);
    // Kraft check: a valid, complete code is required unless only one
    // symbol exists.
    let used: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    if used.is_empty() {
        return Err(DecodeError::Malformed {
            reason: "no symbols in code table".to_owned(),
        });
    }

    let bits = &payload[HEADER_LEN..];
    let mut out = Vec::with_capacity(count);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    let mut pos = 0usize;
    // Sorted (len, code, symbol) for simple longest-prefix decode.
    let mut table: Vec<(u32, u32, u8)> = used
        .iter()
        .map(|&s| (lengths[s], codes[s].0, s as u8))
        .collect();
    table.sort();
    while out.len() < count {
        // Ensure enough bits for the longest code or end of input.
        while nbits < MAX_CODE_LEN && pos < bits.len() {
            acc = (acc << 8) | bits[pos] as u64;
            nbits += 8;
            pos += 1;
        }
        let mut matched = false;
        for &(len, code, sym) in &table {
            if len <= nbits && (acc >> (nbits - len)) as u32 & ((1u64 << len) - 1) as u32 == code {
                nbits -= len;
                acc &= (1u64 << nbits) - 1;
                out.push(sym);
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(DecodeError::Malformed {
                reason: "bit stream ended mid-symbol".to_owned(),
            });
        }
    }
    Ok(out)
}

/// Computes code lengths via package-merge-free heap Huffman with a length
/// cap (lengths are re-derived canonically, so ties are deterministic).
fn code_lengths(freq: &[u64; 256]) -> [u32; 256] {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut lengths = [0u32; 256];
    let symbols: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match symbols.len() {
        0 => return lengths,
        1 => {
            lengths[symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap of (weight, node id); parent links to recover depths.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut parent: Vec<usize> = vec![usize::MAX; symbols.len()];
    for (i, &s) in symbols.iter().enumerate() {
        heap.push(Reverse((freq[s], i)));
    }
    while heap.len() > 1 {
        let Reverse((wa, a)) = heap.pop().expect("len > 1");
        let Reverse((wb, b)) = heap.pop().expect("len > 1");
        let node = parent.len();
        parent.push(usize::MAX);
        parent[a] = node;
        parent[b] = node;
        heap.push(Reverse((wa + wb, node)));
    }
    for (i, &s) in symbols.iter().enumerate() {
        let mut depth = 0;
        let mut n = i;
        while parent[n] != usize::MAX {
            n = parent[n];
            depth += 1;
        }
        lengths[s] = depth.min(MAX_CODE_LEN);
    }
    lengths
}

/// Assigns canonical codes (shorter lengths first, then symbol order).
fn canonical_codes(lengths: &[u32; 256]) -> [(u32, u32); 256] {
    let mut order: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut codes = [(0u32, 0u32); 256];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &s in &order {
        code <<= lengths[s] - prev_len;
        codes[s] = (code, lengths[s]);
        prev_len = lengths[s];
        code += 1;
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = b"abracadabra".to_vec();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![121u8; 500];
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
        // 1 bit per symbol + header.
        assert!(enc.len() <= HEADER_LEN + 500 / 8 + 1);
    }

    #[test]
    fn roundtrip_empty() {
        let enc = encode(&[]);
        assert_eq!(decode(&enc).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn compresses_skewed_quartic_stream() {
        // A quartic-like stream dominated by the zero byte.
        let mut rng = threelc_tensor::rng(1);
        use rand::Rng as _;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                if rng.gen::<f32>() < 0.9 {
                    121
                } else {
                    rng.gen_range(0..=242)
                }
            })
            .collect();
        let enc = encode(&data);
        assert!(
            enc.len() * 2 < data.len(),
            "huffman should at least halve a 90%-skewed stream ({} vs {})",
            enc.len(),
            data.len()
        );
    }

    #[test]
    fn near_entropy_on_biased_stream() {
        // For p(121) = 0.5 and the rest uniform over 242 symbols, entropy
        // ≈ 0.5 + 0.5·(log2(242)+1) ≈ 4.96 bits; Huffman must be within
        // ~0.3 bits of it.
        let mut rng = threelc_tensor::rng(2);
        use rand::Rng as _;
        let n = 100_000usize;
        let data: Vec<u8> = (0..n)
            .map(|_| {
                if rng.gen::<bool>() {
                    121
                } else {
                    rng.gen_range(0..=242)
                }
            })
            .collect();
        let enc = encode(&data);
        let bits_per_sym = (enc.len() - HEADER_LEN) as f64 * 8.0 / n as f64;
        assert!(
            (4.6..5.3).contains(&bits_per_sym),
            "bits/symbol {bits_per_sym}"
        );
    }

    #[test]
    fn truncated_payload_errors() {
        let enc = encode(b"hello hello hello");
        assert!(decode(&enc[..10]).is_err());
        // Cut the bit stream so it ends mid-symbol.
        let cut = &enc[..enc.len() - 1];
        let r = decode(cut);
        // Either a malformed error or (if the symbol happened to complete)
        // a short output — but never a panic.
        if let Ok(out) = r {
            assert!(out.len() <= 17);
        }
    }

    #[test]
    fn garbage_never_panics() {
        let mut rng = threelc_tensor::rng(3);
        use rand::Rng as _;
        for len in [0usize, 3, 4, 260, 261, 300] {
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = decode(&garbage);
        }
    }
}
