//! Quartic encoding of ternary tensors (paper §3.2).
//!
//! CPUs have no native base-3 type, and the naive 2-bit encoding of a
//! ternary value wastes ~26% over the entropy bound. Quartic encoding packs
//! five ternary values into one byte using the quartic-form expression
//! `a·3⁴ + b·3³ + c·3² + d·3 + e`, which has only 3⁵ = 243 distinct values —
//! it fits a byte with room to spare (the spare codes 243–255 are what
//! zero-run encoding uses).
//!
//! Following the paper's step list, encoding:
//!
//! 1. element-wise add 1 (mapping `{-1,0,1}` → `{0,1,2}`),
//! 2. flatten, pad with zeros to a multiple of 5,
//! 3. divide into five equal *partitions* `p0..p4`,
//! 4. compute `p0·81 + p1·27 + p2·9 + p3·3 + p4` element-wise.
//!
//! The partition layout (byte `i` combines elements `i, i+L, i+2L, i+3L,
//! i+4L` where `L` is the partition length) is what makes the transform
//! vectorizable as five strided multiply-adds. A group of five zeros maps to
//! the byte value `121` (= 1·81+1·27+1·9+1·3+1), the byte zero-run encoding
//! targets.

use crate::DecodeError;

/// The quartic byte produced by five zero ternary values.
pub const ZERO_BYTE: u8 = 121;

/// The largest valid quartic byte (3⁵ − 1).
pub const MAX_QUARTIC_BYTE: u8 = 242;

/// Number of ternary values packed per byte.
pub const VALUES_PER_BYTE: usize = 5;

/// Encodes ternary values (each in `{-1, 0, 1}`) into quartic bytes.
///
/// The output length is `ceil(len / 5)`; the input is implicitly padded
/// with zeros (which become digit 1 after the +1 shift).
///
/// # Panics
///
/// Panics (in debug builds) if a value is outside `{-1, 0, 1}`. Release
/// builds produce unspecified bytes for invalid input; upstream
/// [`TernaryTensor`](crate::TernaryTensor) guarantees validity.
///
/// ```
/// use threelc::quartic;
/// // Five zeros → the zero byte 121.
/// assert_eq!(quartic::encode(&[0, 0, 0, 0, 0]), vec![121]);
/// // All ones → 2·(81+27+9+3+1) = 242, the max byte.
/// assert_eq!(quartic::encode(&[1, 1, 1, 1, 1]), vec![242]);
/// ```
pub fn encode(values: &[i8]) -> Vec<u8> {
    encode_impl(crate::kernels::active(), values)
}

/// [`encode`] on an explicit codec tier (every tier is bit-identical;
/// see [`crate::kernels`]).
pub fn encode_impl(imp: crate::kernels::CodecImpl, values: &[i8]) -> Vec<u8> {
    debug_assert!(
        values.iter().all(|v| (-1..=1).contains(v)),
        "quartic input must be ternary"
    );
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let bytes = n.div_ceil(VALUES_PER_BYTE);
    let partition = bytes; // L: padded length / 5
    let mut out = vec![0u8; bytes];
    // digit(j, i) = values[j*L + i] + 1, with zero padding past the end.
    let srcs: [&[i8]; VALUES_PER_BYTE] =
        std::array::from_fn(|j| &values[(j * partition).min(n)..((j + 1) * partition).min(n)]);
    crate::kernels::pack_ternary(imp, &srcs, &mut out);
    out
}

/// Decodes quartic bytes back into `count` ternary values.
///
/// # Errors
///
/// - [`DecodeError::InvalidQuarticByte`] if any byte exceeds 242.
/// - [`DecodeError::BodyLengthMismatch`] if the byte count does not match
///   `ceil(count / 5)`.
///
/// ```
/// use threelc::quartic;
/// let tern = [1i8, -1, 0, 0, 1, 0, 1];
/// let bytes = quartic::encode(&tern);
/// assert_eq!(quartic::decode(&bytes, tern.len())?, tern);
/// # Ok::<(), threelc::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8], count: usize) -> Result<Vec<i8>, DecodeError> {
    let mut out = Vec::new();
    decode_into_impl(crate::kernels::active(), bytes, count, &mut out)?;
    Ok(out)
}

/// [`decode`] into a caller-owned buffer on an explicit codec tier: `out`
/// is resized to `count` and overwritten. Reusing one buffer across calls
/// is what lets symbol-domain consumers (compressed-domain aggregation)
/// decode a stream of payloads without a fresh allocation per payload.
///
/// # Errors
///
/// Exactly [`decode`]'s errors, with identical offsets; on error `out` is
/// left in an unspecified (but valid) state.
pub fn decode_into_impl(
    imp: crate::kernels::CodecImpl,
    bytes: &[u8],
    count: usize,
    out: &mut Vec<i8>,
) -> Result<(), DecodeError> {
    let expected_bytes = count.div_ceil(VALUES_PER_BYTE);
    if bytes.len() != expected_bytes {
        return Err(DecodeError::BodyLengthMismatch {
            decoded: bytes.len() * VALUES_PER_BYTE,
            expected: count,
        });
    }
    if count == 0 {
        out.clear();
        return Ok(());
    }
    if let Some(offset) = crate::kernels::find_invalid_quartic(imp, bytes) {
        return Err(DecodeError::InvalidQuarticByte {
            byte: bytes[offset],
            offset,
        });
    }
    let partition = bytes.len();
    out.clear();
    out.resize(count, 0);
    // Reverse the base-3 digits: p_j = (byte / 3^(4-j)) % 3, then -1.
    // Deliberately arithmetic rather than a lookup table: LLVM turns the
    // divide-by-constant and modulo into multiplies and vectorizes each
    // contiguous per-digit pass, which a table gather would forbid.
    for (j, weight) in [81u16, 27, 9, 3, 1].into_iter().enumerate() {
        let base = j * partition;
        for (i, &b) in bytes.iter().enumerate() {
            let idx = base + i;
            if idx >= count {
                break;
            }
            let digit = (b as u16 / weight) % 3;
            out[idx] = digit as i8 - 1;
        }
    }
    Ok(())
}

/// Bits per ternary value used by quartic encoding (8 bits / 5 values).
pub const BITS_PER_VALUE: f64 = 8.0 / VALUES_PER_BYTE as f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_bytes() {
        assert_eq!(encode(&[0, 0, 0, 0, 0]), vec![ZERO_BYTE]);
        assert_eq!(encode(&[-1, -1, -1, -1, -1]), vec![0]);
        assert_eq!(encode(&[1, 1, 1, 1, 1]), vec![MAX_QUARTIC_BYTE]);
        // Single leading 1, rest zeros: 2·81 + 1·27 + 1·9 + 1·3 + 1 = 202.
        assert_eq!(encode(&[1, 0, 0, 0, 0]), vec![202]);
    }

    #[test]
    fn partition_layout_matches_paper() {
        // 10 values → 2 bytes, partitions of length 2. Byte 0 combines
        // values 0, 2, 4, 6, 8; byte 1 combines 1, 3, 5, 7, 9.
        let values = [1i8, -1, 0, 0, 0, 0, 0, 0, 0, 0];
        let bytes = encode(&values);
        // Byte 0: digits (2,1,1,1,1) = 2·81+27+9+3+1 = 202.
        // Byte 1: digits (0,1,1,1,1) = 0+27+9+3+1 = 40.
        assert_eq!(bytes, vec![202, 40]);
    }

    #[test]
    fn padding_uses_zero_digit() {
        // 6 values → 2 bytes, partitions of length 2; indices 6..10 padded.
        let values = [0i8, 0, 0, 0, 0, 0];
        let bytes = encode(&values);
        assert_eq!(bytes, vec![ZERO_BYTE, ZERO_BYTE]);
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        // All 3^5 ternary 5-tuples roundtrip exactly.
        for code in 0..243usize {
            let mut c = code;
            let mut tuple = [0i8; 5];
            for t in tuple.iter_mut().rev() {
                *t = (c % 3) as i8 - 1;
                c /= 3;
            }
            let bytes = encode(&tuple);
            assert_eq!(bytes.len(), 1);
            let back = decode(&bytes, 5).unwrap();
            assert_eq!(back, tuple);
        }
    }

    #[test]
    fn roundtrip_unaligned_lengths() {
        for n in 0..23usize {
            let values: Vec<i8> = (0..n).map(|i| (i % 3) as i8 - 1).collect();
            let bytes = encode(&values);
            assert_eq!(bytes.len(), n.div_ceil(5));
            assert_eq!(decode(&bytes, n).unwrap(), values);
        }
    }

    #[test]
    fn decode_rejects_invalid_byte() {
        let err = decode(&[243], 5).unwrap_err();
        assert_eq!(
            err,
            DecodeError::InvalidQuarticByte {
                byte: 243,
                offset: 0
            }
        );
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(matches!(
            decode(&[121, 121], 5),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
        assert!(matches!(
            decode(&[], 5),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert_eq!(decode(&[], 0).unwrap(), Vec::<i8>::new());
    }

    #[test]
    fn space_is_1_6_bits_per_value() {
        let values = vec![0i8; 1000];
        let bytes = encode(&values);
        assert_eq!(bytes.len(), 200);
        assert!((BITS_PER_VALUE - 1.6).abs() < 1e-12);
    }

    #[test]
    fn all_output_bytes_in_valid_range() {
        let mut r = threelc_tensor::rng(3);
        use rand::Rng as _;
        let values: Vec<i8> = (0..997).map(|_| r.gen_range(-1..=1i8)).collect();
        let bytes = encode(&values);
        assert!(bytes.iter().all(|&b| b <= MAX_QUARTIC_BYTE));
    }
}
