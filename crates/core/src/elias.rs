//! Elias gamma coding and the bit-stream primitives it needs.
//!
//! The paper's related work (§6) notes that quantization methods often
//! pair with entropy coders such as Huffman and **Elias coding** for
//! compact binary representations — QSGD (Alistarh et al.) being the
//! canonical example. This module provides Elias gamma codes over a
//! simple MSB-first bit stream; the `threelc-baselines` crate uses it to
//! implement a QSGD-style comparator, and the encoding ablation uses it
//! as a second entropy-coding reference point next to [`huffman`](crate::huffman).

use crate::DecodeError;

/// An MSB-first bit writer over a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the trailing partial byte (0–7).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "at most 32 bits per write");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.used);
            self.used = (self.used + 1) % 8;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finishes the stream and returns the bytes (zero-padded tail).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// An MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    pub fn read_bit(&mut self) -> Result<u32, DecodeError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(DecodeError::Malformed {
                reason: "bit stream exhausted".to_owned(),
            });
        }
        let bit = (self.bytes[byte] >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `count` bits remain.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, DecodeError> {
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

/// Writes the Elias gamma code of a **positive** integer.
///
/// The code is `⌊log₂ n⌋` zero bits followed by the binary representation
/// of `n` (which starts with a 1).
///
/// # Panics
///
/// Panics if `n == 0` (gamma codes only cover positive integers; use
/// [`encode_u32`] for values that may be zero).
pub fn encode_gamma(writer: &mut BitWriter, n: u32) {
    assert!(n > 0, "elias gamma requires a positive integer");
    let bits = 32 - n.leading_zeros(); // position of the highest set bit
    writer.write_bits(0, bits - 1);
    writer.write_bits(n, bits);
}

/// Reads an Elias gamma code.
///
/// # Errors
///
/// Returns an error on a truncated or malformed stream.
pub fn decode_gamma(reader: &mut BitReader<'_>) -> Result<u32, DecodeError> {
    let mut zeros = 0u32;
    while reader.read_bit()? == 0 {
        zeros += 1;
        if zeros >= 32 {
            return Err(DecodeError::Malformed {
                reason: "elias gamma prefix too long".to_owned(),
            });
        }
    }
    let rest = reader.read_bits(zeros)?;
    Ok((1u32 << zeros) | rest)
}

/// Gamma-codes an arbitrary `u32` by shifting the domain (`n + 1`).
pub fn encode_u32(writer: &mut BitWriter, n: u32) {
    assert!(n < u32::MAX, "value too large for shifted gamma");
    encode_gamma(writer, n + 1);
}

/// Inverse of [`encode_u32`].
///
/// # Errors
///
/// Returns an error on a truncated or malformed stream.
pub fn decode_u32(reader: &mut BitReader<'_>) -> Result<u32, DecodeError> {
    Ok(decode_gamma(reader)? - 1)
}

/// Maps a signed integer to an unsigned one with small magnitudes first
/// (zigzag), so gamma codes stay short for near-zero values.
pub fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwriter_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b0110, 4);
        w.write_bits(0xABCD, 16);
        assert_eq!(w.bit_len(), 23);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(4).unwrap(), 0b0110);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
    }

    #[test]
    fn gamma_known_codes() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011", γ(4) = "00100".
        let code_of = |n: u32| {
            let mut w = BitWriter::new();
            encode_gamma(&mut w, n);
            (w.bit_len(), w.into_bytes())
        };
        assert_eq!(code_of(1), (1, vec![0b1000_0000]));
        assert_eq!(code_of(2), (3, vec![0b0100_0000]));
        assert_eq!(code_of(3), (3, vec![0b0110_0000]));
        assert_eq!(code_of(4), (5, vec![0b0010_0000]));
    }

    #[test]
    fn gamma_roundtrip_range() {
        let mut w = BitWriter::new();
        for n in 1..200u32 {
            encode_gamma(&mut w, n);
        }
        encode_gamma(&mut w, u32::MAX);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for n in 1..200u32 {
            assert_eq!(decode_gamma(&mut r).unwrap(), n);
        }
        assert_eq!(decode_gamma(&mut r).unwrap(), u32::MAX);
    }

    #[test]
    fn shifted_u32_handles_zero() {
        let mut w = BitWriter::new();
        for n in [0u32, 1, 7, 1000] {
            encode_u32(&mut w, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for n in [0u32, 1, 7, 1000] {
            assert_eq!(decode_u32(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for v in [-5i32, -1, 0, 1, 5, i32::MIN + 1, i32::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v, "v = {v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        encode_gamma(&mut w, 1000); // long code
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..1]);
        assert!(decode_gamma(&mut r).is_err());
        let mut r = BitReader::new(&[]);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn all_zero_bytes_rejected() {
        // 32+ zero bits without a terminating 1 is malformed.
        let mut r = BitReader::new(&[0u8; 8]);
        assert!(matches!(
            decode_gamma(&mut r),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_zero_panics() {
        encode_gamma(&mut BitWriter::new(), 0);
    }
}
