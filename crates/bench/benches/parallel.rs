//! Criterion microbenchmarks for the chunk-parallel 3LC pipeline:
//! serial vs parallel encode and decode across tensor sizes and thread
//! counts.
//!
//! These back the PR 3 throughput claim (≥2× encode at 4 threads for
//! tensors ≥1 MiB on a ≥4-core host) that `bench_parallel` measures and
//! `bench_gate` enforces; the criterion versions exist for interactive
//! profiling and as a CI smoke target (`cargo bench -- --test`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::{Initializer, Tensor};

/// 1 MiB and 4 MiB of f32 values — both above the parallel threshold.
const SIZES: [usize; 2] = [1 << 18, 1 << 20];
const THREADS: [usize; 3] = [1, 2, 4];

fn gradient_like_tensor(n: usize, seed: u64) -> Tensor {
    let mut rng = threelc_tensor::rng(seed);
    Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [n])
}

/// A context without error accumulation, so every iteration compresses
/// the same effective input (EA would mutate state between iterations).
fn context(input: &Tensor, threads: usize) -> ThreeLcCompressor {
    let options = ThreeLcOptions {
        sparsity: SparsityMultiplier::new(1.75).expect("in range"),
        zero_run_encoding: true,
        error_accumulation: false,
    };
    ThreeLcCompressor::with_options(input.shape().clone(), options).with_threads(threads)
}

fn bench_parallel_encode(c: &mut Criterion) {
    for n in SIZES {
        let input = gradient_like_tensor(n, 3);
        let mut group = c.benchmark_group(format!("parallel-encode/{n}"));
        group.throughput(Throughput::Elements(n as u64));
        for threads in THREADS {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{threads}t")),
                &threads,
                |b, &threads| {
                    let mut ctx = context(&input, threads);
                    b.iter(|| ctx.compress(&input).expect("finite input"));
                },
            );
        }
        group.finish();
    }
}

fn bench_parallel_decode(c: &mut Criterion) {
    for n in SIZES {
        let input = gradient_like_tensor(n, 4);
        let mut serial = context(&input, 1);
        let wire = serial.compress(&input).expect("finite input");
        let mut group = c.benchmark_group(format!("parallel-decode/{n}"));
        group.throughput(Throughput::Elements(n as u64));
        for threads in THREADS {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{threads}t")),
                &threads,
                |b, &threads| {
                    let ctx = context(&input, threads);
                    b.iter(|| ctx.decompress(&wire).expect("valid payload"));
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_parallel_encode, bench_parallel_decode
}
criterion_main!(benches);
