//! Criterion microbenchmarks for the tensor substrate: the operations on
//! the simulator's critical path (matmul for forward/backward, the
//! quantization reductions, elementwise updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threelc_tensor::{Initializer, Tensor};

fn gaussian(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = threelc_tensor::rng(seed);
    Initializer::Normal {
        mean: 0.0,
        std_dev: 1.0,
    }
    .init(&mut rng, shape)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = gaussian(&[n, n], 1);
        let b = gaussian(&[n, n], 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).expect("square matmul"));
        });
    }
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    const N: usize = 1 << 16;
    let t = gaussian(&[N], 3);
    let mut group = c.benchmark_group("reductions");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("max_abs", |b| b.iter(|| t.max_abs()));
    group.bench_function("sum", |b| b.iter(|| t.sum()));
    group.bench_function("l2_norm", |b| b.iter(|| t.l2_norm()));
    group.bench_function("variance", |b| b.iter(|| t.variance()));
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    const N: usize = 1 << 16;
    let t = gaussian(&[N], 4);
    let u = gaussian(&[N], 5);
    let mut group = c.benchmark_group("elementwise");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("add_assign", |b| {
        let mut acc = t.clone();
        b.iter(|| acc.add_assign(&u).expect("same shape"));
    });
    group.bench_function("axpy", |b| {
        let mut acc = t.clone();
        b.iter(|| acc.axpy(0.9, &u).expect("same shape"));
    });
    group.bench_function("scale", |b| b.iter(|| t.scale(0.5)));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under two minutes on a
    // single core; throughput numbers are stable well before that.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_matmul, bench_reductions, bench_elementwise
}
criterion_main!(benches);
