//! Criterion microbenchmarks: per-scheme compression/decompression
//! throughput and the three 3LC pipeline stages in isolation.
//!
//! These support the paper's computation-overhead axis (§5.3): 3LC's
//! quantization and encodings are cheap byte-level transforms, and MQE
//! 1-bit's per-class mean reduction is the costliest codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threelc::{quartic, zrle, SparsityMultiplier, TernaryTensor};
use threelc_baselines::{build_compressor, SchemeKind};
use threelc_tensor::{Initializer, Tensor};

const N: usize = 1 << 16;

fn gradient_like_tensor(seed: u64) -> Tensor {
    let mut rng = threelc_tensor::rng(seed);
    Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [N])
}

fn bench_schemes(c: &mut Criterion) {
    let input = gradient_like_tensor(1);
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Elements(N as u64));
    for scheme in SchemeKind::table1_designs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, scheme| {
                let mut ctx = build_compressor(scheme, input.shape().clone(), 7);
                b.iter(|| ctx.compress(&input).expect("valid input"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Elements(N as u64));
    for scheme in SchemeKind::table1_designs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, scheme| {
                let mut ctx = build_compressor(scheme, input.shape().clone(), 7);
                let wire = ctx.compress(&input).expect("valid input");
                b.iter(|| ctx.decompress(&wire).expect("valid payload"));
            },
        );
    }
    group.finish();
}

fn bench_3lc_stages(c: &mut Criterion) {
    let input = gradient_like_tensor(2);
    let s = SparsityMultiplier::new(1.75).expect("in range");
    let quantized = TernaryTensor::quantize(&input, s).expect("finite input");
    let quartic_bytes = quartic::encode(quantized.values());
    let zre_bytes = zrle::encode(&quartic_bytes).expect("valid quartic");

    let mut group = c.benchmark_group("3lc-stages");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("quantize", |b| {
        b.iter(|| TernaryTensor::quantize(&input, s).expect("finite"));
    });
    group.bench_function("dequantize", |b| b.iter(|| quantized.dequantize()));
    group.bench_function("quartic-encode", |b| {
        b.iter(|| quartic::encode(quantized.values()));
    });
    group.bench_function("quartic-decode", |b| {
        b.iter(|| quartic::decode(&quartic_bytes, N).expect("valid"));
    });
    group.bench_function("zrle-encode", |b| {
        b.iter(|| zrle::encode(&quartic_bytes).expect("valid"));
    });
    group.bench_function("zrle-decode", |b| b.iter(|| zrle::decode(&zre_bytes)));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep the full suite under two minutes on a
    // single core; throughput numbers are stable well before that.
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_schemes, bench_3lc_stages
}
criterion_main!(benches);
