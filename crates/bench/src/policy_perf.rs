//! Policy-evaluation overhead measurement and its CI gate.
//!
//! The adaptive policy engine runs once per step on the server, so its
//! cost must be invisible next to the step itself. [`measure`] times
//! three things:
//!
//! - a pure [`threelc_policy::Policy::decide`] call over a synthetic many-tensor
//!   observation vector (the only new per-step work an adaptive run
//!   adds on the hot path),
//! - a full in-process cluster step with the default static policy,
//! - the same cluster step with a feedback policy.
//!
//! The gated metric is `decide_ns / static_step_ns`: the fraction of a
//! step an adaptive policy spends deciding. It is derived from two
//! best-of-N measurements instead of subtracting two noisy end-to-end
//! step times, because a <2% threshold would otherwise drown in
//! wall-clock jitter; the end-to-end feedback step time is still
//! recorded for eyeballing. Cross-host comparisons reuse the
//! calibration-scaling scheme from [`crate::perf`].

use crate::perf::{best_of, calibrate};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use threelc_baselines::SchemeKind;
use threelc_distsim::{Cluster, ExperimentConfig, PolicySpec};
use threelc_policy::TensorObs;

/// Maximum fraction of a static step the policy evaluation may cost.
pub const MAX_POLICY_OVERHEAD: f64 = 0.02;
/// Allowed fractional slowdown of the `decide` micro-benchmark against
/// the calibration-scaled baseline. Looser than the codec gate's 15%:
/// the measured quantity is microseconds, where scheduler noise is
/// proportionally larger.
pub const MAX_DECIDE_REGRESSION: f64 = 0.5;
/// Tensors per [`threelc_policy::Policy::decide`] call in the micro-benchmark —
/// deliberately far more than the cluster model below carries, so the
/// gated ratio overstates the real overhead.
pub const DECIDE_TENSORS: usize = 64;
/// `decide` calls folded into one timed sample, for stable nanoseconds.
const DECIDE_BATCH: usize = 256;
/// Cluster steps folded into one timed sample.
const STEP_BATCH: usize = 4;

/// A policy-overhead measurement run, as written to `BENCH_pr6.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyBenchReport {
    /// Hardware parallelism of the measuring host.
    pub host_cpus: usize,
    /// Nanoseconds for the fixed calibration workload on this host.
    pub calibration_ns: f64,
    /// Tensors per `decide` call in the micro-benchmark.
    pub tensors: usize,
    /// Best-of-N nanoseconds for one feedback `decide` call over
    /// [`PolicyBenchReport::tensors`] observations.
    pub decide_ns: f64,
    /// Best-of-N nanoseconds for one cluster step, static policy.
    pub static_step_ns: f64,
    /// Best-of-N nanoseconds for one cluster step, feedback policy.
    pub feedback_step_ns: f64,
    /// `decide_ns / static_step_ns` — the gated metric.
    pub overhead: f64,
}

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.0),
        workers: 2,
        batch_per_worker: 8,
        total_steps: u64::MAX, // stepped manually; never reached
        model_width: 64,
        model_blocks: 2,
        eval_every: 0,
        seed: 11,
        ..Default::default()
    }
}

fn feedback_spec() -> PolicySpec {
    PolicySpec::parse("feedback:ratio=8,start=1.2,gain=0.05,hold=1").expect("spec parses")
}

/// Best-of-N nanoseconds for one `decide` call on a feedback policy fed
/// realistic telemetry, including the per-call decision-vector
/// allocation (that allocation is part of the real per-step cost).
fn measure_decide(reps: usize) -> f64 {
    let mut policy = feedback_spec()
        .build(DECIDE_TENSORS, threelc::SparsityMultiplier::default())
        .expect("spec builds");
    let obs = vec![
        TensorObs {
            values: 4096,
            wire_bytes: 2048,
            payloads: 2,
            residual_l2: 0.37,
        };
        DECIDE_TENSORS
    ];
    let mut step = 1u64;
    best_of(reps, || {
        for _ in 0..DECIDE_BATCH {
            black_box(policy.decide(black_box(step), black_box(&obs)));
            step += 1;
        }
    }) / DECIDE_BATCH as f64
}

/// Best-of-N nanoseconds for one step of a cluster running `config`.
/// The same cluster keeps stepping across reps — a feedback policy's
/// decisions drift over the run, which is exactly the workload being
/// priced.
fn measure_step(config: ExperimentConfig, reps: usize) -> f64 {
    let mut cluster = Cluster::new(config);
    cluster.step(); // warm-up
    best_of(reps, || {
        for _ in 0..STEP_BATCH {
            cluster.step();
        }
    }) / STEP_BATCH as f64
}

/// Measures the policy micro-benchmark and both cluster variants,
/// best of `reps`.
pub fn measure(reps: usize) -> PolicyBenchReport {
    let decide_ns = measure_decide(reps);
    let static_step_ns = measure_step(bench_config(), reps);
    let mut feedback = bench_config();
    feedback.policy = feedback_spec();
    let feedback_step_ns = measure_step(feedback, reps);
    PolicyBenchReport {
        host_cpus: threelc::parallel::available_threads(),
        calibration_ns: calibrate(reps),
        tensors: DECIDE_TENSORS,
        decide_ns,
        static_step_ns,
        feedback_step_ns,
        overhead: decide_ns / static_step_ns,
    }
}

impl PolicyBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host_cpus {}  calibration {:.0} ns",
            self.host_cpus, self.calibration_ns
        );
        let _ = writeln!(
            out,
            "decide ({} tensors) {:>10.0} ns/call",
            self.tensors, self.decide_ns
        );
        let _ = writeln!(out, "step (static)      {:>10.0} ns", self.static_step_ns);
        let _ = writeln!(out, "step (feedback)    {:>10.0} ns", self.feedback_step_ns);
        let _ = writeln!(
            out,
            "policy overhead    {:>10.3}% of a static step (gate < {:.0}%)",
            self.overhead * 100.0,
            MAX_POLICY_OVERHEAD * 100.0
        );
        out
    }
}

/// Compares `current` against `baseline`: the policy-evaluation
/// overhead must stay under [`MAX_POLICY_OVERHEAD`] of a static step,
/// and the `decide` micro-benchmark may be at most
/// [`MAX_DECIDE_REGRESSION`] slower than the calibration-scaled
/// baseline.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any check
/// fails.
pub fn gate(current: &PolicyBenchReport, baseline: &PolicyBenchReport) -> Result<String, String> {
    let mut violations = Vec::new();
    if !current.overhead.is_finite() || current.overhead >= MAX_POLICY_OVERHEAD {
        violations.push(format!(
            "policy evaluation costs {:.3}% of a static step, gate is {:.0}%",
            current.overhead * 100.0,
            MAX_POLICY_OVERHEAD * 100.0
        ));
    }
    let scale = if current.calibration_ns > 0.0 && baseline.calibration_ns > 0.0 {
        current.calibration_ns / baseline.calibration_ns
    } else {
        1.0
    };
    if current.tensors == baseline.tensors {
        let allowed = baseline.decide_ns * scale * (1.0 + MAX_DECIDE_REGRESSION);
        if current.decide_ns > allowed {
            violations.push(format!(
                "decide/{} tensors regressed: {:.0} ns/call vs allowed {:.0} (baseline {:.0} × host scale {:.2} × {:.0}%)",
                current.tensors,
                current.decide_ns,
                allowed,
                baseline.decide_ns,
                scale,
                (1.0 + MAX_DECIDE_REGRESSION) * 100.0
            ));
        }
    } else {
        violations.push(format!(
            "baseline measured {} tensors per decide, current measured {}",
            baseline.tensors, current.tensors
        ));
    }
    if violations.is_empty() {
        Ok(format!(
            "policy bench gate passed: overhead {:.3}% < {:.0}%, decide {:.0} ns/call",
            current.overhead * 100.0,
            MAX_POLICY_OVERHEAD * 100.0,
            current.decide_ns
        ))
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(overhead: f64, decide_ns: f64) -> PolicyBenchReport {
        PolicyBenchReport {
            host_cpus: 4,
            calibration_ns: 1000.0,
            tensors: DECIDE_TENSORS,
            decide_ns,
            static_step_ns: 1_000_000.0,
            feedback_step_ns: 1_001_000.0,
            overhead,
        }
    }

    #[test]
    fn gate_accepts_a_report_under_the_overhead_ceiling() {
        let r = report(0.001, 1000.0);
        let summary = gate(&r, &r).expect("identical reports pass");
        assert!(summary.contains("passed"), "{summary}");
    }

    #[test]
    fn gate_rejects_excess_overhead() {
        let bad = report(0.05, 1000.0);
        let err = gate(&bad, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("5.000%"), "{err}");
    }

    #[test]
    fn gate_rejects_a_decide_regression() {
        let slow = report(0.001, 5000.0);
        let err = gate(&slow, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn gate_rejects_mismatched_tensor_counts() {
        let mut other = report(0.001, 1000.0);
        other.tensors = 8;
        let err = gate(&report(0.001, 1000.0), &other).unwrap_err();
        assert!(err.contains("tensors per decide"), "{err}");
    }

    #[test]
    fn measurement_reports_a_tiny_overhead() {
        // One rep keeps this test cheap; the point is that the measured
        // pipeline holds together and the overhead lands far under the
        // gate even in a debug build.
        let r = measure(1);
        assert!(r.decide_ns > 0.0);
        assert!(r.static_step_ns > 0.0);
        assert!(r.feedback_step_ns > 0.0);
        assert!(r.overhead < MAX_POLICY_OVERHEAD, "overhead {}", r.overhead);
        let rendered = r.render();
        assert!(rendered.contains("policy overhead"), "{rendered}");
    }
}
