//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each table/figure has a dedicated binary (see `src/bin/`); this library
//! provides what they share:
//!
//! - [`cache`] — experiment results are expensive relative to formatting,
//!   so every `(config)` run is cached as JSON under `results/runs/` and
//!   reused across binaries (Table 1's 100%-steps runs are the same runs
//!   Figures 4–6 plot).
//! - [`harness`] — command-line options common to all binaries
//!   (`--steps`, `--quick`, `--seed`, `--fresh`) and the experiment grids.
//! - [`table`] — fixed-width text table rendering.

pub mod aggregate_perf;
pub mod analyze_perf;
pub mod cache;
pub mod harness;
pub mod perf;
pub mod plot;
pub mod policy_perf;
pub mod recorder_perf;
pub mod schema;
pub mod table;

pub use cache::run_cached;
pub use harness::HarnessOptions;
pub use table::Table;
