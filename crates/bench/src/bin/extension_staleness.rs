//! Extension experiment: relaxed barriers via stale pulls (§2.1).
//!
//! The paper's background section observes that asynchronous state-change
//! transmission hides communication latency but "generally requires more
//! training steps than BSP to train a model to similar test accuracy".
//! This sweep quantifies that tradeoff on our substrate: pull staleness
//! hides the pull transfer entirely (shorter steps on slow links) but
//! workers compute on increasingly stale replicas (lower accuracy at a
//! fixed step budget).
//!
//! ```text
//! cargo run -p threelc-bench --release --bin extension_staleness [-- --steps N | --quick]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    staleness: u32,
    minutes_10mbps: f64,
    accuracy_pct: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Extension: pull staleness (relaxed barriers) ({} standard steps)\n",
        opts.steps
    );
    let net = NetworkModel::ten_mbps();
    let mut table = Table::new(&[
        "Scheme",
        "Staleness",
        "Time @ 10 Mbps (min)",
        "Accuracy (%)",
    ]);
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Float32, SchemeKind::three_lc(1.0)] {
        for staleness in [0u32, 1, 2, 4] {
            let mut config = opts.config(scheme);
            config.staleness = staleness;
            eprintln!("running {} staleness={staleness} ...", scheme.label());
            let r = run_cached(&config, opts.fresh);
            let minutes = r.total_seconds_at(&net) / 60.0;
            let acc = r.final_eval.accuracy * 100.0;
            table.row_owned(vec![
                r.scheme_label.clone(),
                staleness.to_string(),
                format!("{minutes:.1}"),
                format!("{acc:.2}"),
            ]);
            rows.push(Row {
                scheme: r.scheme_label.clone(),
                staleness,
                minutes_10mbps: minutes,
                accuracy_pct: acc,
            });
        }
    }
    table.print();
    println!(
        "\nStaleness hides the pull transfer (time falls, most visibly for\n\
         the uncompressed baseline) while accuracy at a fixed step budget\n\
         degrades — §2.1's async-vs-BSP tradeoff. 3LC attacks the traffic\n\
         itself, keeping synchronous semantics."
    );
    let path = cache::write_output("extension_staleness.json", &rows);
    println!("wrote {}", path.display());
}
