//! Renders SVG versions of the regenerated figures from the JSON outputs
//! under `results/` (run the `figs4_6`, `fig7`, `fig8`, and `fig9`
//! binaries first).
//!
//! ```text
//! cargo run -p threelc-bench --release --bin plots
//! ```

use threelc_bench::cache::workspace_root;
use threelc_bench::plot::{LinePlot, PlotSeries};
use threelc_bench::schema::{BitsPanel, TradeoffFigure, TradeoffSeries, TrainingCurve};

fn load<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let path = workspace_root().join("results").join(name);
    let text = std::fs::read_to_string(&path).ok()?;
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("skipping {name}: {e}");
            None
        }
    }
}

fn save(name: &str, svg: &str) {
    let dir = workspace_root().join("results").join("plots");
    std::fs::create_dir_all(&dir).expect("plots directory is writable");
    let path = dir.join(name);
    std::fs::write(&path, svg).expect("svg writes");
    println!("wrote {}", path.display());
}

fn tradeoff_plot(title: &str, series: &[TradeoffSeries]) -> LinePlot {
    let mut plot = LinePlot::new(title, "Total training time (minutes)", "Test accuracy (%)");
    for s in series {
        plot.push_series(PlotSeries {
            name: s.design.clone(),
            points: s
                .points
                .iter()
                .map(|p| (p.training_minutes, p.accuracy_pct))
                .collect(),
        });
    }
    plot
}

fn main() {
    let mut rendered = 0;

    if let Some(figures) = load::<Vec<TradeoffFigure>>("figs4_6.json") {
        for (i, fig) in figures.iter().enumerate() {
            let title = format!("Figure {}: time vs accuracy @ {}", 4 + i, fig.bandwidth);
            save(
                &format!("fig{}.svg", 4 + i),
                &tradeoff_plot(&title, &fig.series).render_svg(),
            );
            rendered += 1;
        }
    }

    if let Some(curves) = load::<Vec<TrainingCurve>>("fig7.json") {
        let mut loss = LinePlot::new(
            "Figure 7 (left): training loss",
            "Training steps",
            "Training loss",
        );
        let mut acc = LinePlot::new(
            "Figure 7 (right): test accuracy",
            "Training steps",
            "Test accuracy (%)",
        );
        for c in &curves {
            loss.push_series(PlotSeries {
                name: c.design.clone(),
                points: c.loss.iter().map(|&(s, l)| (s as f64, l as f64)).collect(),
            });
            acc.push_series(PlotSeries {
                name: c.design.clone(),
                points: c.accuracy.iter().map(|&(s, a)| (s as f64, a)).collect(),
            });
        }
        save("fig7_loss.svg", &loss.render_svg());
        save("fig7_accuracy.svg", &acc.render_svg());
        rendered += 2;
    }

    if let Some(series) = load::<Vec<TradeoffSeries>>("fig8.json") {
        save(
            "fig8.svg",
            &tradeoff_plot("Figure 8: sparsity multiplier @ 10 Mbps", &series).render_svg(),
        );
        rendered += 1;
    }

    if let Some(panels) = load::<Vec<BitsPanel>>("fig9.json") {
        for p in &panels {
            let mut plot = LinePlot::new(
                &format!("Figure 9: compressed size per value (s={:.2})", p.sparsity),
                "Training steps",
                "Bits per state change",
            );
            plot.push_series(PlotSeries {
                name: "Without ZRE".into(),
                points: p
                    .samples
                    .iter()
                    .map(|&(s, _, _)| (s as f64, p.without_zre_bits))
                    .collect(),
            });
            plot.push_series(PlotSeries {
                name: "With ZRE (push)".into(),
                points: p
                    .samples
                    .iter()
                    .map(|&(s, push, _)| (s as f64, push))
                    .collect(),
            });
            plot.push_series(PlotSeries {
                name: "With ZRE (pull)".into(),
                points: p
                    .samples
                    .iter()
                    .map(|&(s, _, pull)| (s as f64, pull))
                    .collect(),
            });
            save(
                &format!("fig9_s{}.svg", (p.sparsity * 100.0) as u32),
                &plot.render_svg(),
            );
            rendered += 1;
        }
    }

    if rendered == 0 {
        eprintln!(
            "no figure data found under results/ — run the figs4_6 / fig7 / fig8 / fig9 \
             binaries first"
        );
        std::process::exit(1);
    }
    println!("{rendered} figure(s) rendered under results/plots/");
}
