//! Regenerates **Figures 4, 5, and 6**: total training time vs. test
//! accuracy at 25/50/75/100% of standard training steps, for the nine
//! plotted designs, at 10 Mbps (Fig. 4), 100 Mbps (Fig. 5), and 1 Gbps
//! (Fig. 6).
//!
//! Training dynamics are bandwidth-independent, so each (design, fraction)
//! pair is trained once and its trace is re-priced under each link — the
//! same extrapolation the paper uses (§5.2).
//!
//! ```text
//! cargo run -p threelc-bench --release --bin figs4_6 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_bench::harness::{figure_designs, STEP_FRACTIONS};
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Point {
    percent_steps: u64,
    training_minutes: f64,
    accuracy_pct: f64,
}

#[derive(Debug, Serialize)]
struct Series {
    design: String,
    points: Vec<Point>,
}

#[derive(Debug, Serialize)]
struct Figure {
    bandwidth: String,
    series: Vec<Series>,
}

fn main() {
    let opts = HarnessOptions::from_env();
    // Train every (design, fraction) once.
    let mut runs = Vec::new();
    for design in figure_designs() {
        for pct in STEP_FRACTIONS {
            let config = opts.config(design).at_percent_steps(pct);
            eprintln!("running {} @ {pct}% steps ...", design.label());
            runs.push((design.label(), pct, run_cached(&config, opts.fresh)));
        }
    }

    let mut figures = Vec::new();
    for (fig_no, (label, net)) in [
        (4, NetworkModel::ten_mbps()),
        (5, NetworkModel::hundred_mbps()),
        (6, NetworkModel::one_gbps()),
    ]
    .iter()
    .enumerate()
    .map(|(i, (a, b))| (i + 4, (a, b)))
    {
        println!(
            "\nFigure {fig_no}: training time vs accuracy @ {} ({} standard steps)",
            NetworkModel::paper_presets()[fig_no - 4].0,
            opts.steps
        );
        let _ = label;
        let mut table = Table::new(&["Design", "% steps", "Time (min)", "Accuracy (%)"]);
        let mut series: Vec<Series> = Vec::new();
        for (design, pct, result) in &runs {
            let minutes = result.total_seconds_at(net) / 60.0;
            let acc = result.final_eval.accuracy * 100.0;
            table.row_owned(vec![
                design.clone(),
                format!("{pct}"),
                format!("{minutes:.1}"),
                format!("{acc:.2}"),
            ]);
            match series.last_mut() {
                Some(s) if &s.design == design => s.points.push(Point {
                    percent_steps: *pct,
                    training_minutes: minutes,
                    accuracy_pct: acc,
                }),
                _ => series.push(Series {
                    design: design.clone(),
                    points: vec![Point {
                        percent_steps: *pct,
                        training_minutes: minutes,
                        accuracy_pct: acc,
                    }],
                }),
            }
        }
        table.print();
        figures.push(Figure {
            bandwidth: NetworkModel::paper_presets()[fig_no - 4].0.to_owned(),
            series,
        });
    }
    let path = cache::write_output("figs4_6.json", &figures);
    println!("\nwrote {}", path.display());
}
