//! Measures serial vs chunk-parallel 3LC codec throughput and writes a
//! machine-readable report (`BENCH_pr8.json` by default) for
//! `bench_gate` to compare against the checked-in baseline.
//!
//! Usage: `bench_parallel [output.json] [--reps N]`

use std::process::ExitCode;
use threelc_bench::perf;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_pr8.json".to_string();
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => reps = n,
                _ => {
                    eprintln!("--reps requires an integer value");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`\nusage: bench_parallel [output.json] [--reps N]");
                return ExitCode::from(2);
            }
            path => out = path.to_string(),
        }
    }

    let report = perf::measure(&perf::SIZES, &perf::THREADS, reps);
    print!("{}", report.render());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
