//! Ablation: parameter-server sharding (Figure 1's multiple servers).
//!
//! Partitioning the model across k servers multiplies the aggregate
//! server-side bandwidth by ~k — an *alternative* way to attack the
//! network bottleneck that composes with, but does not replace, traffic
//! compression. This sweep shows the baseline needs many servers to
//! approach what 3LC achieves through one.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin ablation_sharding [-- --steps N | --quick]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    servers: usize,
    minutes_10mbps: f64,
    accuracy_pct: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Ablation: parameter-server sharding ({} standard steps)\n",
        opts.steps
    );
    let net = NetworkModel::ten_mbps();
    let mut table = Table::new(&["Scheme", "Servers", "Time @ 10 Mbps (min)", "Accuracy (%)"]);
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Float32, SchemeKind::three_lc(1.0)] {
        for servers in [1usize, 2, 4] {
            let mut config = opts.config(scheme);
            config.servers = servers;
            eprintln!("running {} across {servers} server(s) ...", scheme.label());
            let r = run_cached(&config, opts.fresh);
            let minutes = r.total_seconds_at(&net) / 60.0;
            let acc = r.final_eval.accuracy * 100.0;
            table.row_owned(vec![
                r.scheme_label.clone(),
                servers.to_string(),
                format!("{minutes:.1}"),
                format!("{acc:.2}"),
            ]);
            rows.push(Row {
                scheme: r.scheme_label.clone(),
                servers,
                minutes_10mbps: minutes,
                accuracy_pct: acc,
            });
        }
    }
    table.print();
    println!(
        "\nSharding buys linear aggregate bandwidth; 3LC buys 40-100x traffic\n\
         reduction — and the two compose."
    );
    let path = cache::write_output("ablation_sharding.json", &rows);
    println!("wrote {}", path.display());
}
