//! Measures the server's aggregate phase under every aggregation mode
//! and writes a machine-readable report (`BENCH_pr10.json` by default),
//! or gates a fresh report against the checked-in baseline.
//!
//! Usage: `bench_aggregate [output.json] [--reps N]`
//!        `bench_aggregate --gate <current.json> <baseline.json>`

use std::process::ExitCode;
use threelc_bench::aggregate_perf::{self, AggregateBenchReport};

fn read_report(path: &str) -> Result<AggregateBenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not an aggregate bench report: {e}"))
}

fn gate(current: &str, baseline: &str) -> ExitCode {
    let (current, baseline) = match (read_report(current), read_report(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match aggregate_perf::gate(&current, &baseline) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(violations) => {
            eprintln!("aggregate bench gate FAILED:\n{violations}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--gate") {
        let [_, current, baseline] = args.as_slice() else {
            eprintln!("usage: bench_aggregate --gate <current.json> <baseline.json>");
            return ExitCode::from(2);
        };
        return gate(current, baseline);
    }

    let mut out = "BENCH_pr10.json".to_string();
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => reps = n,
                _ => {
                    eprintln!("--reps requires an integer value");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag `{other}`\nusage: bench_aggregate [output.json] [--reps N] | bench_aggregate --gate <current.json> <baseline.json>"
                );
                return ExitCode::from(2);
            }
            path => out = path.to_string(),
        }
    }

    let report = aggregate_perf::measure(reps);
    print!("{}", report.render());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
