//! Ablation: shared vs. per-worker pull compression (paper §3, Fig. 2b).
//!
//! The paper's point-to-point design compresses model deltas once and lets
//! every worker pull the same payload; compressing each worker's pull
//! separately performs redundant codec work. Traffic is identical — only
//! the server's codec time (and thus step time on fast links) differs.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin ablation_shared_pull [-- --steps N | --quick]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct AblationRow {
    variant: String,
    server_codec_seconds_per_step: f64,
    step_seconds_1gbps: f64,
    total_bytes: u64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Ablation: shared vs per-worker pull compression, 3LC (s=1.00), {} steps\n",
        opts.steps
    );

    let mut table = Table::new(&[
        "Variant",
        "Server codec (ms/step)",
        "Step @ 1 Gbps (s)",
        "Bytes",
    ]);
    let mut rows = Vec::new();
    for (label, shared) in [("shared pull", true), ("per-worker pull", false)] {
        let mut config = opts.config(SchemeKind::three_lc(1.0));
        config.shared_pull_compression = shared;
        eprintln!("running {label} ...");
        let r = run_cached(&config, opts.fresh);
        let steps = r.trace.steps.len() as f64;
        let server_codec: f64 = r
            .trace
            .steps
            .iter()
            .map(|s| s.server_codec_seconds)
            .sum::<f64>()
            / steps;
        let net = NetworkModel::one_gbps();
        let step_s = r.total_seconds_at(&net) / steps;
        table.row_owned(vec![
            label.to_owned(),
            format!("{:.2}", server_codec * 1e3),
            format!("{step_s:.3}"),
            format!("{}", r.trace.total_bytes()),
        ]);
        rows.push(AblationRow {
            variant: label.to_owned(),
            server_codec_seconds_per_step: server_codec,
            step_seconds_1gbps: step_s,
            total_bytes: r.trace.total_bytes(),
        });
    }
    table.print();
    println!("\n(traffic is identical by design; only codec time differs)");
    let path = cache::write_output("ablation_shared_pull.json", &rows);
    println!("wrote {}", path.display());
}
