//! Regenerates **Figure 7**: runtime training loss (left) and test
//! accuracy (right) over training steps for the most representative
//! designs, using standard training steps.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin fig7 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};

#[derive(Debug, Serialize)]
struct Curve {
    design: String,
    /// (step, smoothed training loss) samples.
    loss: Vec<(u64, f32)>,
    /// (step, test accuracy %) samples.
    accuracy: Vec<(u64, f64)>,
}

/// The paper's Figure 7 legend: baseline plus the most representative
/// quantization, sparsification, and local-step designs, and default 3LC.
fn designs() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Float32,
        SchemeKind::MqeOneBit,
        SchemeKind::Sparsify { fraction: 0.05 },
        SchemeKind::LocalSteps { period: 2 },
        SchemeKind::three_lc(1.0),
    ]
}

fn main() {
    let opts = HarnessOptions::from_env();
    let eval_every = (opts.steps / 24).max(1);
    println!(
        "Figure 7: training loss and test accuracy over {} standard steps\n",
        opts.steps
    );

    let mut curves = Vec::new();
    for design in designs() {
        let mut config = opts.config(design);
        config.eval_every = eval_every;
        eprintln!("running {} ...", design.label());
        let r = run_cached(&config, opts.fresh);
        // Smooth the per-step loss over eval_every-sized windows.
        let loss: Vec<(u64, f32)> = r
            .trace
            .steps
            .chunks(eval_every as usize)
            .map(|w| {
                let step = w.last().expect("nonempty chunk").step + 1;
                let mean = w.iter().map(|s| s.loss).sum::<f32>() / w.len() as f32;
                (step, mean)
            })
            .collect();
        let accuracy: Vec<(u64, f64)> = r
            .trace
            .evals
            .iter()
            .map(|e| (e.step, e.eval.accuracy * 100.0))
            .collect();
        curves.push(Curve {
            design: r.scheme_label.clone(),
            loss,
            accuracy,
        });
    }

    // Print a digest: loss/accuracy at quartiles of training.
    let mut table = Table::new(&[
        "Design",
        "Loss @25%",
        "@50%",
        "@100%",
        "Acc @25%",
        "@50%",
        "@100%",
    ]);
    for c in &curves {
        let at = |v: &Vec<(u64, f32)>, f: f64| -> f32 {
            let i = ((v.len() as f64 * f).ceil() as usize).clamp(1, v.len()) - 1;
            v[i].1
        };
        let at_acc = |v: &Vec<(u64, f64)>, f: f64| -> f64 {
            let i = ((v.len() as f64 * f).ceil() as usize).clamp(1, v.len()) - 1;
            v[i].1
        };
        table.row_owned(vec![
            c.design.clone(),
            format!("{:.3}", at(&c.loss, 0.25)),
            format!("{:.3}", at(&c.loss, 0.5)),
            format!("{:.3}", at(&c.loss, 1.0)),
            format!("{:.2}", at_acc(&c.accuracy, 0.25)),
            format!("{:.2}", at_acc(&c.accuracy, 0.5)),
            format!("{:.2}", at_acc(&c.accuracy, 1.0)),
        ]);
    }
    table.print();
    let path = cache::write_output("fig7.json", &curves);
    println!("\nwrote {}", path.display());
}
