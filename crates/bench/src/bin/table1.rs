//! Regenerates **Table 1**: training-time speedup over the 32-bit float
//! baseline at 10 Mbps / 100 Mbps / 1 Gbps, plus test accuracy, for all
//! eleven compared designs using standard training steps.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin table1 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Table1Row {
    design: String,
    speedup_10mbps: f64,
    speedup_100mbps: f64,
    speedup_1gbps: f64,
    accuracy_pct: f64,
    accuracy_diff_pct: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    let designs = SchemeKind::table1_designs();
    let nets = NetworkModel::paper_presets();

    println!(
        "Table 1: speedup over baseline and test accuracy ({} standard steps, {} run(s) averaged)\n",
        opts.steps, opts.runs
    );

    // One result set per repetition (the paper averages 5 independent
    // runs, §5.2); each repetition gets its own baseline for the speedup
    // ratios.
    let repetitions: Vec<Vec<_>> = (0..opts.runs)
        .map(|run| {
            designs
                .iter()
                .map(|d| {
                    eprintln!("running {} (run {run}) ...", d.label());
                    run_cached(&opts.config_for_run(*d, run), opts.fresh)
                })
                .collect()
        })
        .collect();
    let results = &repetitions[0];
    let baseline = &results[0];
    let base_acc: f64 = repetitions
        .iter()
        .map(|rep| rep[0].final_eval.accuracy * 100.0)
        .sum::<f64>()
        / opts.runs as f64;

    let mut table = Table::new(&[
        "Design",
        "@ 10 Mbps",
        "@ 100 Mbps",
        "@ 1 Gbps",
        "Accuracy (%)",
        "Difference",
    ]);
    let mut rows = Vec::new();
    for (di, r) in results.iter().enumerate() {
        // Average speedups and accuracy over repetitions.
        let mut speedups = vec![0.0f64; nets.len()];
        let mut acc = 0.0f64;
        for rep in &repetitions {
            for (si, (_, n)) in nets.iter().enumerate() {
                speedups[si] += rep[0].total_seconds_at(n) / rep[di].total_seconds_at(n);
            }
            acc += rep[di].final_eval.accuracy * 100.0;
        }
        for s in &mut speedups {
            *s /= opts.runs as f64;
        }
        acc /= opts.runs as f64;
        let diff = acc - base_acc;
        table.row_owned(vec![
            r.scheme_label.clone(),
            format!("{:.2}", speedups[0]),
            format!("{:.2}", speedups[1]),
            format!("{:.2}", speedups[2]),
            format!("{acc:.2}"),
            if r.scheme_label == baseline.scheme_label {
                String::new()
            } else {
                format!("{diff:+.2}")
            },
        ]);
        rows.push(Table1Row {
            design: r.scheme_label.clone(),
            speedup_10mbps: speedups[0],
            speedup_100mbps: speedups[1],
            speedup_1gbps: speedups[2],
            accuracy_pct: acc,
            accuracy_diff_pct: diff,
        });
    }
    table.print();
    let path = cache::write_output("table1.json", &rows);
    println!("\nwrote {}", path.display());
}
