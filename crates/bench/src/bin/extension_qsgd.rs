//! Extension experiment: QSGD (multi-level stochastic quantization with
//! Elias coding, §6 related work) vs. 3LC and the baseline.
//!
//! QSGD is unbiased like TernGrad but spends more bits for lower variance;
//! this sweep shows where it lands on the traffic/accuracy plane the
//! paper's Table 1 spans.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin extension_qsgd [-- --steps N | --quick]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Row {
    design: String,
    bits_per_value: f64,
    speedup_10mbps: f64,
    accuracy_pct: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Extension: QSGD vs 3LC vs baseline ({} standard steps)\n",
        opts.steps
    );
    let designs = [
        SchemeKind::Float32,
        SchemeKind::Fp16,
        SchemeKind::Qsgd { levels: 2 },
        SchemeKind::Qsgd { levels: 4 },
        SchemeKind::Qsgd { levels: 16 },
        SchemeKind::StochasticTernary,
        SchemeKind::three_lc(1.0),
    ];
    let results: Vec<_> = designs
        .iter()
        .map(|d| {
            eprintln!("running {} ...", d.label());
            run_cached(&opts.config(*d), opts.fresh)
        })
        .collect();
    let net = NetworkModel::ten_mbps();
    let base_time = results[0].total_seconds_at(&net);

    let mut table = Table::new(&["Design", "bits/value", "Speedup @ 10 Mbps", "Accuracy (%)"]);
    let mut rows = Vec::new();
    for r in &results {
        let bits = match r.scheme_label.as_str() {
            "32-bit float" => 32.0,
            _ => r.bits_per_value(),
        };
        let speedup = base_time / r.total_seconds_at(&net);
        let acc = r.final_eval.accuracy * 100.0;
        table.row_owned(vec![
            r.scheme_label.clone(),
            format!("{bits:.3}"),
            format!("{speedup:.2}"),
            format!("{acc:.2}"),
        ]);
        rows.push(Row {
            design: r.scheme_label.clone(),
            bits_per_value: bits,
            speedup_10mbps: speedup,
            accuracy_pct: acc,
        });
    }
    table.print();
    println!(
        "\nQSGD's unbiased multi-level quantization needs several bits per\n\
         value to preserve accuracy; 3LC's error accumulation reaches\n\
         baseline accuracy below one bit — the paper's central comparison."
    );
    let path = cache::write_output("extension_qsgd.json", &rows);
    println!("wrote {}", path.display());
}
