//! Regenerates **Figure 8**: training time vs. test accuracy at 10 Mbps
//! with the sparsity multiplier varied over {1.00, 1.50, 1.75, 1.90} and
//! 25/50/75/100% of standard steps.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin fig8 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::harness::STEP_FRACTIONS;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Point {
    percent_steps: u64,
    training_minutes: f64,
    accuracy_pct: f64,
}

#[derive(Debug, Serialize)]
struct Series {
    design: String,
    points: Vec<Point>,
}

fn main() {
    let opts = HarnessOptions::from_env();
    let net = NetworkModel::ten_mbps();
    println!(
        "Figure 8: 3LC sparsity-multiplier sensitivity @ 10 Mbps ({} standard steps)\n",
        opts.steps
    );

    let mut table = Table::new(&["Design", "% steps", "Time (min)", "Accuracy (%)"]);
    let mut series = Vec::new();
    for s in [1.0f32, 1.5, 1.75, 1.9] {
        let design = SchemeKind::three_lc(s);
        let mut points = Vec::new();
        for pct in STEP_FRACTIONS {
            let config = opts.config(design).at_percent_steps(pct);
            eprintln!("running {} @ {pct}% steps ...", design.label());
            let r = run_cached(&config, opts.fresh);
            let minutes = r.total_seconds_at(&net) / 60.0;
            let acc = r.final_eval.accuracy * 100.0;
            table.row_owned(vec![
                design.label(),
                format!("{pct}"),
                format!("{minutes:.1}"),
                format!("{acc:.2}"),
            ]);
            points.push(Point {
                percent_steps: pct,
                training_minutes: minutes,
                accuracy_pct: acc,
            });
        }
        series.push(Series {
            design: design.label(),
            points,
        });
    }
    table.print();
    let path = cache::write_output("fig8.json", &series);
    println!("\nwrote {}", path.display());
}
