//! CI regression gate: compares a fresh `bench_parallel` report against
//! the checked-in baseline and exits nonzero on any violation (>15%
//! slowdown after calibration scaling, a missing parallel speedup on
//! hosts with enough cores, or negative thread scaling below the serial
//! floor). With `--encode-bar <reference.json>` it additionally enforces
//! the single-thread encode throughput bar: the current report must beat
//! the calibration-scaled reference (the pre-SWAR `BENCH_pr3.json`) by
//! 3x, unless the run used the scalar reference tier.
//!
//! Usage: `bench_gate <current.json> <baseline.json> [--encode-bar <reference.json>]`

use std::process::ExitCode;
use threelc_bench::perf::{encode_bar, gate, small_tensor_check, BenchReport};

const USAGE: &str =
    "usage: bench_gate <current.json> <baseline.json> [--encode-bar <reference.json>]";

fn read_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a bench report: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut encode_ref = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--encode-bar" => match it.next() {
                Some(p) => encode_ref = Some(p.clone()),
                None => {
                    eprintln!("--encode-bar requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    let [current, baseline] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (current, baseline) = match (read_report(current), read_report(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut checks = vec![gate(&current, &baseline), small_tensor_check(&current)];
    if let Some(path) = encode_ref {
        match read_report(&path) {
            Ok(reference) => checks.push(encode_bar(&current, &reference)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    for check in checks {
        match check {
            Ok(summary) => println!("{summary}"),
            Err(violations) => {
                eprintln!("bench gate FAILED:\n{violations}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
