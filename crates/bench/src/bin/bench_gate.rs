//! CI regression gate: compares a fresh `bench_parallel` report against
//! the checked-in baseline and exits nonzero on any violation (>15%
//! slowdown after calibration scaling, or a missing parallel speedup on
//! hosts with enough cores).
//!
//! Usage: `bench_gate <current.json> <baseline.json>`

use std::process::ExitCode;
use threelc_bench::perf::{gate, BenchReport};

fn read_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a bench report: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current, baseline] = args.as_slice() else {
        eprintln!("usage: bench_gate <current.json> <baseline.json>");
        return ExitCode::from(2);
    };
    let (current, baseline) = match (read_report(current), read_report(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match gate(&current, &baseline) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(violations) => {
            eprintln!("bench gate FAILED:\n{violations}");
            ExitCode::FAILURE
        }
    }
}
