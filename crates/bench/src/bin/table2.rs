//! Regenerates **Table 2**: 3LC's average traffic compression (end-to-end
//! compression ratio and bits per state change) across sparsity
//! multipliers, including the no-zero-run-encoding ablation.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin table2 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};

#[derive(Debug, Serialize)]
struct Table2Row {
    s: String,
    compression_ratio: f64,
    bits_per_state_change: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Table 2: average traffic compression of 3LC ({} standard steps)\n",
        opts.steps
    );

    // The "No ZRE" row: quartic encoding alone is fixed-length, so its
    // ratio is exactly 32/1.6 = 20x regardless of s; we still run it to
    // measure rather than assume.
    let mut variants: Vec<(String, SchemeKind)> = vec![(
        "No ZRE".to_owned(),
        SchemeKind::ThreeLc {
            sparsity: 1.0,
            zero_run_encoding: false,
            error_accumulation: true,
        },
    )];
    for s in [1.0f32, 1.5, 1.75, 1.9] {
        variants.push((format!("{s:.2}"), SchemeKind::three_lc(s)));
    }

    let mut table = Table::new(&["s", "Compression ratio (x)", "bits per state change"]);
    let mut rows = Vec::new();
    for (label, scheme) in variants {
        eprintln!("running {} ...", scheme.label());
        let r = run_cached(&opts.config(scheme), opts.fresh);
        table.row_owned(vec![
            label.clone(),
            format!("{:.1}", r.compression_ratio()),
            format!("{:.3}", r.bits_per_value()),
        ]);
        rows.push(Table2Row {
            s: label,
            compression_ratio: r.compression_ratio(),
            bits_per_state_change: r.bits_per_value(),
        });
    }
    table.print();
    let path = cache::write_output("table2.json", &rows);
    println!("\nwrote {}", path.display());
}
