//! Ablation: backup workers under straggler jitter (paper §2.1).
//!
//! TensorFlow's `SyncReplicasOptimizer` — the baseline the paper builds
//! on — advances a step once enough gradient pushes arrive, dropping the
//! stragglers. With lognormal per-worker compute jitter, this binary
//! sweeps the number of backup workers and reports the simulated step
//! time (gated by the slowest *accepted* worker) and the final accuracy
//! (backup workers discard gradients, slightly reducing useful work per
//! step).
//!
//! ```text
//! cargo run -p threelc-bench --release --bin ablation_backup_workers [-- --steps N | --quick]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};
use threelc_distsim::NetworkModel;

#[derive(Debug, Serialize)]
struct Row {
    backup_workers: usize,
    mean_compute_gate: f64,
    total_minutes_1gbps: f64,
    accuracy_pct: f64,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Ablation: backup workers with straggler jitter (3LC s=1.00, {} steps)\n",
        opts.steps
    );
    let net = NetworkModel::one_gbps();
    let mut table = Table::new(&[
        "Backup workers",
        "Mean compute gate",
        "Time @ 1 Gbps (min)",
        "Accuracy (%)",
    ]);
    let mut rows = Vec::new();
    for backups in [0usize, 1, 2] {
        let mut config = opts.config(SchemeKind::three_lc(1.0));
        config.backup_workers = backups;
        config.timing.straggler_jitter = 0.25;
        eprintln!("running with {backups} backup workers ...");
        let r = run_cached(&config, opts.fresh);
        let gate: f64 = r
            .trace
            .steps
            .iter()
            .map(|s| s.compute_multiplier)
            .sum::<f64>()
            / r.trace.steps.len() as f64;
        let minutes = r.total_seconds_at(&net) / 60.0;
        let acc = r.final_eval.accuracy * 100.0;
        table.row_owned(vec![
            backups.to_string(),
            format!("{gate:.3}"),
            format!("{minutes:.1}"),
            format!("{acc:.2}"),
        ]);
        rows.push(Row {
            backup_workers: backups,
            mean_compute_gate: gate,
            total_minutes_1gbps: minutes,
            accuracy_pct: acc,
        });
    }
    table.print();
    println!(
        "\nMore backups cut the straggler tail (lower gate, shorter steps) at\n\
         the cost of discarding gradients (slightly less work per step)."
    );
    let path = cache::write_output("ablation_backup_workers.json", &rows);
    println!("wrote {}", path.display());
}
