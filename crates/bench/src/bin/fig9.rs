//! Regenerates **Figure 9**: compressed size per state-change value (bits)
//! at each training step, separately for gradient pushes and model-delta
//! pulls, for 3LC with s = 1.00 (left) and s = 1.75 (right), plus the
//! fixed 1.6-bit no-ZRE reference line.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin fig9 [-- --steps N | --quick | --fresh]
//! ```

use serde::Serialize;
use threelc_baselines::SchemeKind;
use threelc_bench::{cache, run_cached, HarnessOptions, Table};

#[derive(Debug, Serialize)]
struct Panel {
    sparsity: f32,
    without_zre_bits: f64,
    /// (step, push bits/value, pull bits/value), downsampled.
    samples: Vec<(u64, f64, f64)>,
}

fn main() {
    let opts = HarnessOptions::from_env();
    println!(
        "Figure 9: compressed bits per state change over {} standard steps\n",
        opts.steps
    );

    let mut panels = Vec::new();
    let mut table = Table::new(&["s", "phase", "push b/v", "pull b/v"]);
    for s in [1.0f32, 1.75] {
        let design = SchemeKind::three_lc(s);
        eprintln!("running {} ...", design.label());
        let r = run_cached(&opts.config(design), opts.fresh);
        let workers = r.config.workers as u64;
        let stride = (r.trace.steps.len() / 64).max(1);
        let samples: Vec<(u64, f64, f64)> = r
            .trace
            .steps
            .chunks(stride)
            .map(|w| {
                let step = w.last().expect("nonempty").step;
                let push = w
                    .iter()
                    .map(|x| x.push_bits_per_value(workers))
                    .sum::<f64>()
                    / w.len() as f64;
                let pull = w
                    .iter()
                    .map(|x| x.pull_bits_per_value(workers))
                    .sum::<f64>()
                    / w.len() as f64;
                (step, push, pull)
            })
            .collect();
        // Digest rows: early / middle / late thirds of training.
        for (name, lo, hi) in [
            ("early", 0.0, 1.0 / 3.0),
            ("middle", 1.0 / 3.0, 2.0 / 3.0),
            ("late", 2.0 / 3.0, 1.0),
        ] {
            let a = (samples.len() as f64 * lo) as usize;
            let b = ((samples.len() as f64 * hi) as usize)
                .max(a + 1)
                .min(samples.len());
            let part = &samples[a..b];
            let push = part.iter().map(|x| x.1).sum::<f64>() / part.len() as f64;
            let pull = part.iter().map(|x| x.2).sum::<f64>() / part.len() as f64;
            table.row_owned(vec![
                format!("{s:.2}"),
                name.to_owned(),
                format!("{push:.3}"),
                format!("{pull:.3}"),
            ]);
        }
        panels.push(Panel {
            sparsity: s,
            without_zre_bits: 1.6,
            samples,
        });
    }
    table.print();
    let path = cache::write_output("fig9.json", &panels);
    println!("\nwrote {}", path.display());
}
