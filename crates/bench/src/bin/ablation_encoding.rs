//! Ablation: zero-run encoding vs. Huffman entropy coding vs. plain
//! quartic, on gradient-like quantized traffic (paper §3.3 / §6).
//!
//! The paper's claim: ZRE reaches compression comparable to entropy
//! coding while using only byte-level operations — no bit twiddling, no
//! code tables — and therefore much less CPU. This binary measures both
//! the compressed size and the wall-clock encode+decode time of each
//! lossless stage on 3-value-quantized Gaussian gradients across sparsity
//! multipliers.
//!
//! ```text
//! cargo run -p threelc-bench --release --bin ablation_encoding
//! ```

use serde::Serialize;
use std::time::Instant;
use threelc::{huffman, quartic, zrle, SparsityMultiplier, TernaryTensor};
use threelc_bench::{cache, Table};
use threelc_tensor::Initializer;

const N: usize = 1 << 20;
const REPS: u32 = 5;

#[derive(Debug, Serialize)]
struct Row {
    sparsity: f32,
    stage: String,
    bits_per_value: f64,
    encode_ns_per_value: f64,
    decode_ns_per_value: f64,
}

fn timed<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let mut out = f();
    for _ in 1..reps {
        out = f();
    }
    (out, t0.elapsed().as_secs_f64() / reps as f64)
}

fn main() {
    let mut rng = threelc_tensor::rng(11);
    let input = Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [N]);

    let mut table = Table::new(&["s", "stage", "bits/value", "enc ns/val", "dec ns/val"]);
    let mut rows = Vec::new();
    for s in [1.0f32, 1.5, 1.75, 1.9] {
        let q = TernaryTensor::quantize(&input, SparsityMultiplier::new(s).expect("valid"))
            .expect("finite");
        let quartic_bytes = quartic::encode(q.values());

        // Plain quartic (fixed 1.6 bits/value).
        let (_, enc_t) = timed(REPS, || quartic::encode(q.values()));
        let (_, dec_t) = timed(REPS, || quartic::decode(&quartic_bytes, N).expect("valid"));
        push(
            &mut table,
            &mut rows,
            s,
            "quartic only",
            quartic_bytes.len(),
            enc_t,
            dec_t,
        );

        // Quartic + zero-run encoding.
        let zre = zrle::encode(&quartic_bytes).expect("valid");
        let (_, enc_t) = timed(REPS, || zrle::encode(&quartic_bytes).expect("valid"));
        let (_, dec_t) = timed(REPS, || zrle::decode(&zre));
        push(
            &mut table,
            &mut rows,
            s,
            "quartic + ZRE",
            zre.len(),
            enc_t,
            dec_t,
        );

        // Quartic + Huffman entropy coding.
        let huff = huffman::encode(&quartic_bytes);
        let (_, enc_t) = timed(REPS, || huffman::encode(&quartic_bytes));
        let (_, dec_t) = timed(REPS, || huffman::decode(&huff).expect("valid"));
        push(
            &mut table,
            &mut rows,
            s,
            "quartic + Huffman",
            huff.len(),
            enc_t,
            dec_t,
        );
    }
    table.print();
    println!(
        "\nZRE should sit near Huffman's ratio at a fraction of its cost\n\
         (the paper's rationale for avoiding entropy coding, §3.3)."
    );
    let path = cache::write_output("ablation_encoding.json", &rows);
    println!("wrote {}", path.display());
}

fn push(
    table: &mut Table,
    rows: &mut Vec<Row>,
    s: f32,
    stage: &str,
    bytes: usize,
    enc_t: f64,
    dec_t: f64,
) {
    let bits = bytes as f64 * 8.0 / N as f64;
    let enc_ns = enc_t * 1e9 / N as f64;
    let dec_ns = dec_t * 1e9 / N as f64;
    table.row_owned(vec![
        format!("{s:.2}"),
        stage.to_owned(),
        format!("{bits:.3}"),
        format!("{enc_ns:.2}"),
        format!("{dec_ns:.2}"),
    ]);
    rows.push(Row {
        sparsity: s,
        stage: stage.to_owned(),
        bits_per_value: bits,
        encode_ns_per_value: enc_ns,
        decode_ns_per_value: dec_ns,
    });
}
