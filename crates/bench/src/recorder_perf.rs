//! Time-series recorder overhead measurement and its CI gate.
//!
//! The [`threelc_obs::RunRecorder`] folds one [`threelc_obs::WorkerDelta`]
//! per worker into the series store on every training step — on the
//! server's coordinator thread and inside the simulator's step loop — so
//! its cost must be invisible next to the step itself. [`measure`] times:
//!
//! - one `record_step` call over a realistic worker fan-in, in the
//!   steady state where raw windows wrap and buckets re-tier (the most
//!   expensive regime the recorder has),
//! - one [`RunSeries`](threelc_obs::RunSeries) snapshot (the cost a
//!   `threelc top` scrape imposes on the server),
//! - a full in-process cluster step (which itself records, so the
//!   denominator prices the real workload).
//!
//! The gated metric is `record_ns / static_step_ns`: the fraction of a
//! step the always-on recorder costs. Best-of-N measurements and the
//! calibration-scaling scheme from [`crate::perf`] keep the <2% gate out
//! of wall-clock-jitter territory, exactly as the policy gate does.

use crate::perf::{best_of, calibrate};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use threelc_baselines::SchemeKind;
use threelc_distsim::{Cluster, ExperimentConfig};
use threelc_obs::{RunRecorder, WorkerDelta};

/// Maximum fraction of a static step the recorder may cost.
pub const MAX_RECORDER_OVERHEAD: f64 = 0.02;
/// Allowed fractional slowdown of the `record_step` micro-benchmark
/// against the calibration-scaled baseline. The measured quantity is
/// sub-microsecond, where scheduler noise is proportionally large.
pub const MAX_RECORD_REGRESSION: f64 = 0.5;
/// Workers folded per `record_step` in the micro-benchmark.
pub const RECORD_WORKERS: usize = 8;
/// `record_step` calls folded into one timed sample.
const RECORD_BATCH: usize = 256;
/// Cluster steps folded into one timed sample.
const STEP_BATCH: usize = 4;
/// Steps recorded before timing starts, so raw windows have wrapped and
/// bucket re-tiering is part of every sample.
const WARM_STEPS: u64 = 512;

/// A recorder-overhead measurement run, as written to `BENCH_pr7.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecorderBenchReport {
    /// Hardware parallelism of the measuring host.
    pub host_cpus: usize,
    /// Nanoseconds for the fixed calibration workload on this host.
    pub calibration_ns: f64,
    /// Workers per `record_step` call in the micro-benchmark.
    pub workers: usize,
    /// Best-of-N nanoseconds for one steady-state `record_step` call
    /// over [`RecorderBenchReport::workers`] deltas.
    pub record_ns: f64,
    /// Best-of-N nanoseconds for one full store snapshot (the per-scrape
    /// cost a `threelc top` poll imposes).
    pub snapshot_ns: f64,
    /// Best-of-N nanoseconds for one cluster step, static policy.
    pub static_step_ns: f64,
    /// `record_ns / static_step_ns` — the gated metric.
    pub overhead: f64,
}

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.0),
        workers: 2,
        batch_per_worker: 8,
        total_steps: u64::MAX, // stepped manually; never reached
        model_width: 64,
        model_blocks: 2,
        eval_every: 0,
        seed: 11,
        ..Default::default()
    }
}

fn delta(worker: usize, step: u64) -> WorkerDelta {
    WorkerDelta {
        worker,
        wire_bytes: 2048 + step % 97,
        ratio: 15.0 + (step % 7) as f64 * 0.1,
        residual_l2: 0.37,
        loss: 1.0 / (step + 1) as f64,
        multiplier: 1.0,
        rejoins: 0,
        step_seconds: 0.004,
        barrier_wait_seconds: 0.0,
    }
}

/// Best-of-N nanoseconds for one steady-state `record_step` call.
fn measure_record(reps: usize) -> f64 {
    let mut recorder = RunRecorder::new(RECORD_WORKERS);
    let mut step = 0u64;
    let mut deltas = vec![delta(0, 0); RECORD_WORKERS];
    let fold = |recorder: &mut RunRecorder, step: u64, deltas: &mut [WorkerDelta]| {
        for (w, d) in deltas.iter_mut().enumerate() {
            *d = delta(w, step);
        }
        recorder.record_step(step, deltas);
    };
    // Warm past the raw windows so every timed call exercises bucket
    // folding, not just cheap appends.
    while step < WARM_STEPS {
        fold(&mut recorder, step, &mut deltas);
        step += 1;
    }
    best_of(reps, || {
        for _ in 0..RECORD_BATCH {
            fold(&mut recorder, step, &mut deltas);
            step += 1;
        }
    }) / RECORD_BATCH as f64
}

/// Best-of-N nanoseconds for one full store snapshot after
/// [`WARM_STEPS`] of recording.
fn measure_snapshot(reps: usize) -> f64 {
    let mut recorder = RunRecorder::new(RECORD_WORKERS);
    let mut deltas = vec![delta(0, 0); RECORD_WORKERS];
    for step in 0..WARM_STEPS {
        for (w, d) in deltas.iter_mut().enumerate() {
            *d = delta(w, step);
        }
        recorder.record_step(step, &deltas);
    }
    best_of(reps, || {
        black_box(recorder.snapshot());
    })
}

/// Best-of-N nanoseconds for one step of a cluster running the bench
/// configuration (recording included — it is part of every real step).
fn measure_step(reps: usize) -> f64 {
    let mut cluster = Cluster::new(bench_config());
    cluster.step(); // warm-up
    best_of(reps, || {
        for _ in 0..STEP_BATCH {
            cluster.step();
        }
    }) / STEP_BATCH as f64
}

/// Measures the recorder micro-benchmarks and the cluster step, best of
/// `reps`.
pub fn measure(reps: usize) -> RecorderBenchReport {
    let record_ns = measure_record(reps);
    let snapshot_ns = measure_snapshot(reps);
    let static_step_ns = measure_step(reps);
    RecorderBenchReport {
        host_cpus: threelc::parallel::available_threads(),
        calibration_ns: calibrate(reps),
        workers: RECORD_WORKERS,
        record_ns,
        snapshot_ns,
        static_step_ns,
        overhead: record_ns / static_step_ns,
    }
}

impl RecorderBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host_cpus {}  calibration {:.0} ns",
            self.host_cpus, self.calibration_ns
        );
        let _ = writeln!(
            out,
            "record_step ({} workers) {:>10.0} ns/call",
            self.workers, self.record_ns
        );
        let _ = writeln!(out, "snapshot            {:>10.0} ns", self.snapshot_ns);
        let _ = writeln!(out, "step (static)       {:>10.0} ns", self.static_step_ns);
        let _ = writeln!(
            out,
            "recorder overhead   {:>10.3}% of a static step (gate < {:.0}%)",
            self.overhead * 100.0,
            MAX_RECORDER_OVERHEAD * 100.0
        );
        out
    }
}

/// Compares `current` against `baseline`: the recorder must stay under
/// [`MAX_RECORDER_OVERHEAD`] of a static step, and the `record_step`
/// micro-benchmark may be at most [`MAX_RECORD_REGRESSION`] slower than
/// the calibration-scaled baseline.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any check
/// fails.
pub fn gate(
    current: &RecorderBenchReport,
    baseline: &RecorderBenchReport,
) -> Result<String, String> {
    let mut violations = Vec::new();
    if !current.overhead.is_finite() || current.overhead >= MAX_RECORDER_OVERHEAD {
        violations.push(format!(
            "recording costs {:.3}% of a static step, gate is {:.0}%",
            current.overhead * 100.0,
            MAX_RECORDER_OVERHEAD * 100.0
        ));
    }
    let scale = if current.calibration_ns > 0.0 && baseline.calibration_ns > 0.0 {
        current.calibration_ns / baseline.calibration_ns
    } else {
        1.0
    };
    if current.workers == baseline.workers {
        let allowed = baseline.record_ns * scale * (1.0 + MAX_RECORD_REGRESSION);
        if current.record_ns > allowed {
            violations.push(format!(
                "record_step/{} workers regressed: {:.0} ns/call vs allowed {:.0} (baseline {:.0} × host scale {:.2} × {:.0}%)",
                current.workers,
                current.record_ns,
                allowed,
                baseline.record_ns,
                scale,
                (1.0 + MAX_RECORD_REGRESSION) * 100.0
            ));
        }
    } else {
        violations.push(format!(
            "baseline measured {} workers per record_step, current measured {}",
            baseline.workers, current.workers
        ));
    }
    if violations.is_empty() {
        Ok(format!(
            "recorder bench gate passed: overhead {:.3}% < {:.0}%, record_step {:.0} ns/call",
            current.overhead * 100.0,
            MAX_RECORDER_OVERHEAD * 100.0,
            current.record_ns
        ))
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(overhead: f64, record_ns: f64) -> RecorderBenchReport {
        RecorderBenchReport {
            host_cpus: 4,
            calibration_ns: 1000.0,
            workers: RECORD_WORKERS,
            record_ns,
            snapshot_ns: 5000.0,
            static_step_ns: 1_000_000.0,
            overhead,
        }
    }

    #[test]
    fn gate_accepts_a_report_under_the_overhead_ceiling() {
        let r = report(0.001, 1000.0);
        let summary = gate(&r, &r).expect("identical reports pass");
        assert!(summary.contains("passed"), "{summary}");
    }

    #[test]
    fn gate_rejects_excess_overhead() {
        let bad = report(0.05, 1000.0);
        let err = gate(&bad, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("5.000%"), "{err}");
    }

    #[test]
    fn gate_rejects_a_record_regression() {
        let slow = report(0.001, 5000.0);
        let err = gate(&slow, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn gate_rejects_mismatched_worker_counts() {
        let mut other = report(0.001, 1000.0);
        other.workers = 2;
        let err = gate(&report(0.001, 1000.0), &other).unwrap_err();
        assert!(err.contains("workers per record_step"), "{err}");
    }

    #[test]
    fn measurement_reports_a_tiny_overhead() {
        // One rep keeps this test cheap; the point is that the measured
        // pipeline holds together and the overhead lands far under the
        // gate even in a debug build.
        let r = measure(1);
        assert!(r.record_ns > 0.0);
        assert!(r.snapshot_ns > 0.0);
        assert!(r.static_step_ns > 0.0);
        assert!(
            r.overhead < MAX_RECORDER_OVERHEAD,
            "overhead {}",
            r.overhead
        );
        let rendered = r.render();
        assert!(rendered.contains("recorder overhead"), "{rendered}");
    }
}
