//! Shared data schemas for the table/figure outputs under `results/`.
//!
//! Every bench binary writes one of these shapes as JSON; the `plots`
//! binary reads them back to render SVG figures. Keeping the schema in
//! one place guarantees writers and readers stay in sync.

use serde::{Deserialize, Serialize};

/// One (time, accuracy) datapoint of a Figures-4–6/8 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Fraction of standard training steps (25/50/75/100).
    pub percent_steps: u64,
    /// Total simulated training time, minutes.
    pub training_minutes: f64,
    /// Final top-1 test accuracy, percent.
    pub accuracy_pct: f64,
}

/// A named series of tradeoff points (one design).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffSeries {
    /// Design label as used in the paper's legends.
    pub design: String,
    /// Points in increasing step-fraction order.
    pub points: Vec<TradeoffPoint>,
}

/// One full time-vs-accuracy figure at a single bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffFigure {
    /// Bandwidth label (`"10 Mbps"`, ...).
    pub bandwidth: String,
    /// One series per design.
    pub series: Vec<TradeoffSeries>,
}

/// Loss/accuracy curves over training steps (Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCurve {
    /// Design label.
    pub design: String,
    /// (step, smoothed training loss) samples.
    pub loss: Vec<(u64, f32)>,
    /// (step, test accuracy %) samples.
    pub accuracy: Vec<(u64, f64)>,
}

/// Per-step compressed size panel (Figure 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitsPanel {
    /// Sparsity multiplier of this panel.
    pub sparsity: f32,
    /// The fixed no-ZRE reference line (1.6 bits).
    pub without_zre_bits: f64,
    /// (step, push bits/value, pull bits/value), downsampled.
    pub samples: Vec<(u64, f64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_figure() {
        let fig = TradeoffFigure {
            bandwidth: "10 Mbps".into(),
            series: vec![TradeoffSeries {
                design: "3LC (s=1.00)".into(),
                points: vec![TradeoffPoint {
                    percent_steps: 100,
                    training_minutes: 112.6,
                    accuracy_pct: 95.31,
                }],
            }],
        };
        let json = serde_json::to_string(&fig).unwrap();
        let back: TradeoffFigure = serde_json::from_str(&json).unwrap();
        assert_eq!(fig, back);
    }
}
