//! JSON-file caching of experiment results.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use threelc_distsim::{run_experiment, ExperimentConfig, ExperimentResult};

/// Directory (relative to the workspace root) where cached runs live.
pub const RUNS_DIR: &str = "results/runs";

/// Locates the workspace root by walking up from the current directory
/// until a `Cargo.toml` with a `[workspace]` section is found; falls back
/// to the current directory.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

/// A stable cache key for a config (hash of its canonical JSON).
pub fn config_key(config: &ExperimentConfig) -> String {
    let json = serde_json::to_string(config).expect("config serializes");
    let mut h = DefaultHasher::new();
    json.hash(&mut h);
    format!("{:016x}", h.finish())
}

fn cache_path(root: &Path, config: &ExperimentConfig) -> PathBuf {
    let label = config
        .scheme
        .label()
        .replace([' ', '(', ')', '=', '%', '+'], "_");
    root.join(RUNS_DIR).join(format!(
        "{label}-{}steps-{}.json",
        config.total_steps,
        config_key(config)
    ))
}

/// Runs an experiment, reusing a cached result when one exists for this
/// exact configuration.
///
/// Set `fresh` to ignore (and overwrite) any cached result.
///
/// If the run's telemetry watchdog flagged anomalies (compression-ratio
/// drift, residual-L2 blowups), a warning goes to stderr: figures and
/// tables built on a pathological run should say so, whether the run was
/// fresh or replayed from the cache.
pub fn run_cached(config: &ExperimentConfig, fresh: bool) -> ExperimentResult {
    let result = run_cached_inner(config, fresh);
    if let Some(summary) = anomaly_summary(&result) {
        eprintln!("warning: watchdog flagged {summary}");
    }
    result
}

fn run_cached_inner(config: &ExperimentConfig, fresh: bool) -> ExperimentResult {
    let root = workspace_root();
    let path = cache_path(&root, config);
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(result) = serde_json::from_str::<ExperimentResult>(&text) {
                if &result.config == config {
                    return result;
                }
            }
        }
    }
    let result = run_experiment(config);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(json) = serde_json::to_string(&result) {
        let _ = std::fs::write(&path, json);
    }
    result
}

/// One-line summary of a result's watchdog findings, or `None` for a
/// clean run.
pub fn anomaly_summary(result: &ExperimentResult) -> Option<String> {
    let anomalies = &result.trace.anomalies;
    let first = anomalies.first()?;
    Some(format!(
        "{} anomaly(ies) in run [{}], first: {}",
        anomalies.len(),
        result.scheme_label,
        first.detail
    ))
}

/// Writes a figure/table data file under `results/` and returns its path.
pub fn write_output(name: &str, value: &impl serde::Serialize) -> PathBuf {
    let path = workspace_root().join("results").join(name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(value).expect("output serializes");
    std::fs::write(&path, json).expect("results directory is writable");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            workers: 2,
            batch_per_worker: 4,
            total_steps: 2,
            model_width: 8,
            model_blocks: 1,
            seed: 123456,
            ..ExperimentConfig::for_scheme(SchemeKind::Int8)
        }
    }

    #[test]
    fn key_is_stable_and_config_sensitive() {
        let a = tiny();
        assert_eq!(config_key(&a), config_key(&a.clone()));
        let mut b = tiny();
        b.total_steps = 3;
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn cached_run_roundtrips() {
        let config = tiny();
        let first = run_cached(&config, true);
        let second = run_cached(&config, false);
        assert_eq!(first, second, "cache must return the identical result");
    }

    #[test]
    fn workspace_root_has_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn anomaly_summary_reports_flagged_runs_only() {
        let mut result = run_cached(&tiny(), true);
        assert_eq!(anomaly_summary(&result), None, "tiny run should be clean");
        result.trace.anomalies.push(threelc_obs::Anomaly {
            kind: "residual-blowup".into(),
            step: 1,
            node: String::new(),
            phase: String::new(),
            value: 25.0,
            threshold: 2.5,
            detail: "step 1: residual L2 25.0 exceeded 2.5".into(),
        });
        let summary = anomaly_summary(&result).expect("flagged run summarizes");
        assert!(summary.contains("1 anomaly(ies)"), "got: {summary}");
        assert!(summary.contains("residual L2"), "got: {summary}");
    }
}
