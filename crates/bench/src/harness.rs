//! Command-line options and experiment grids shared by the bench binaries.

use threelc_baselines::SchemeKind;
use threelc_distsim::config::STANDARD_STEPS;
use threelc_distsim::ExperimentConfig;

/// Options accepted by every table/figure binary.
///
/// - `--steps N` — override the standard step count (default
///   [`STANDARD_STEPS`]).
/// - `--quick` — 300-step runs for a fast smoke pass.
/// - `--seed N` — master seed (default 42).
/// - `--runs N` — independent repetitions to average (the paper averages
///   5 full-measurement runs, §5.2; default 1).
/// - `--fresh` — ignore cached runs and re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Standard (100%) step count.
    pub steps: u64,
    /// Master seed.
    pub seed: u64,
    /// Independent repetitions to average.
    pub runs: u64,
    /// Ignore the run cache.
    pub fresh: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            steps: STANDARD_STEPS,
            seed: 42,
            runs: 1,
            fresh: false,
        }
    }
}

impl HarnessOptions {
    /// Parses options from `std::env::args`, ignoring unknown flags (the
    /// binary may define its own).
    ///
    /// # Panics
    ///
    /// Panics with a usage message if a flag's value is missing or
    /// unparsable.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an iterator of arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = HarnessOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--steps" => {
                    opts.steps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--steps requires an integer");
                }
                "--seed" => {
                    opts.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--runs" => {
                    opts.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .expect("--runs requires a positive integer");
                }
                "--quick" => opts.steps = 300,
                "--fresh" => opts.fresh = true,
                _ => {}
            }
        }
        opts
    }

    /// The base experiment config for a scheme under these options.
    pub fn config(&self, scheme: SchemeKind) -> ExperimentConfig {
        self.config_for_run(scheme, 0)
    }

    /// The config for repetition `run` (0-based): each repetition derives
    /// a distinct master seed.
    pub fn config_for_run(&self, scheme: SchemeKind, run: u64) -> ExperimentConfig {
        ExperimentConfig {
            total_steps: self.steps,
            seed: self.seed.wrapping_add(run.wrapping_mul(7919)),
            ..ExperimentConfig::for_scheme(scheme)
        }
    }
}

/// The designs plotted in Figures 4–6 (Table 1 minus the two extra 3LC
/// sparsity settings, matching the paper's legends).
pub fn figure_designs() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Float32,
        SchemeKind::Int8,
        SchemeKind::StochasticTernary,
        SchemeKind::MqeOneBit,
        SchemeKind::Sparsify { fraction: 0.25 },
        SchemeKind::Sparsify { fraction: 0.05 },
        SchemeKind::LocalSteps { period: 2 },
        SchemeKind::three_lc(1.0),
        SchemeKind::three_lc(1.75),
    ]
}

/// The step fractions of Figures 4–6 and 8.
pub const STEP_FRACTIONS: [u64; 4] = [25, 50, 75, 100];

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = HarnessOptions::parse(s(&[]));
        assert_eq!(o.steps, STANDARD_STEPS);
        assert_eq!(o.seed, 42);
        assert!(!o.fresh);
    }

    #[test]
    fn parses_flags() {
        let o = HarnessOptions::parse(s(&["--steps", "500", "--seed", "7", "--fresh"]));
        assert_eq!(o.steps, 500);
        assert_eq!(o.seed, 7);
        assert!(o.fresh);
    }

    #[test]
    fn runs_flag() {
        let o = HarnessOptions::parse(s(&["--runs", "3"]));
        assert_eq!(o.runs, 3);
        assert_ne!(
            o.config_for_run(SchemeKind::Float32, 0).seed,
            o.config_for_run(SchemeKind::Float32, 1).seed
        );
    }

    #[test]
    fn quick_mode() {
        assert_eq!(HarnessOptions::parse(s(&["--quick"])).steps, 300);
    }

    #[test]
    fn unknown_flags_ignored() {
        let o = HarnessOptions::parse(s(&["--bandwidth", "10mbps"]));
        assert_eq!(o.steps, STANDARD_STEPS);
    }

    #[test]
    fn figure_designs_count_matches_paper_legend() {
        assert_eq!(figure_designs().len(), 9);
    }

    #[test]
    fn config_carries_options() {
        let o = HarnessOptions::parse(s(&["--steps", "100", "--seed", "5"]));
        let c = o.config(SchemeKind::Float32);
        assert_eq!(c.total_steps, 100);
        assert_eq!(c.seed, 5);
    }
}
