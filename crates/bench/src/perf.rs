//! Parallel-codec performance measurement and the CI regression gate.
//!
//! [`measure`] times serial and chunk-parallel 3LC encode/decode with
//! plain wall-clock best-of-N runs (no criterion dependency, so the
//! release binaries can emit machine-readable JSON), producing a
//! [`BenchReport`]. [`gate`] compares a fresh report against a
//! checked-in baseline and fails on regressions.
//!
//! Cross-host comparability: absolute nanoseconds from one machine mean
//! nothing on another, so every report carries a `calibration_ns` — the
//! time of a fixed scalar workload on the measuring host. The gate
//! scales the baseline by the calibration ratio before applying the
//! regression threshold, which makes same-host comparisons exact and
//! cross-host comparisons meaningful. The parallel-speedup criterion is
//! only enforced when the measuring host actually has enough cores
//! ([`REQUIRED_SPEEDUP_CORES`]); a single-core CI runner cannot exhibit
//! a 4-thread speedup and must not fail for it.

use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;
use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::{Initializer, Tensor};

/// Tensor sizes measured by default: 256 KiB, 1 MiB and 4 MiB of `f32`
/// values. The 256 KiB size sits below the serial floor
/// ([`threelc::DEFAULT_PARALLEL_MIN_VALUES`]) and above the pre-floor
/// threshold — it is the size class where chunk-parallel encode used to
/// scale *negatively*, and what [`small_tensor_check`] watches.
pub const SIZES: [usize; 3] = [1 << 16, 1 << 18, 1 << 20];
/// Thread counts measured by default.
pub const THREADS: [usize; 3] = [1, 2, 4];
/// Allowed fractional slowdown against the (calibration-scaled) baseline
/// before the gate fails.
pub const MAX_REGRESSION: f64 = 0.15;
/// Required encode speedup at [`REQUIRED_SPEEDUP_THREADS`] threads for
/// tensors of at least [`SPEEDUP_MIN_BYTES`].
pub const REQUIRED_SPEEDUP: f64 = 2.0;
/// Thread count at which [`REQUIRED_SPEEDUP`] must hold.
pub const REQUIRED_SPEEDUP_THREADS: usize = 4;
/// Minimum hardware cores before the speedup criterion is enforced.
pub const REQUIRED_SPEEDUP_CORES: usize = 4;
/// Tensor byte size (as f32) from which the speedup criterion applies.
/// 4 MiB: with the SWAR/SIMD rewrite single-thread encode is several
/// times faster, so chunking only amortizes its coordination cost on
/// tensors well past the serial floor.
pub const SPEEDUP_MIN_BYTES: usize = 1 << 22;

/// Required single-thread encode speedup over the calibration-scaled
/// pre-SWAR reference report (`BENCH_pr3.json`), enforced by
/// [`encode_bar`] on hosts running a vectorized tier.
pub const ENCODE_BAR_SPEEDUP: f64 = 3.0;
/// Tensor length watched by [`small_tensor_check`].
pub const SMALL_TENSOR_VALUES: usize = 1 << 16;
/// Worst multi-thread slowdown tolerated at [`SMALL_TENSOR_VALUES`]:
/// below the serial floor no worker threads spawn, so multi-thread
/// timings must track the serial timing to within noise.
pub const SMALL_TENSOR_MAX_SLOWDOWN: f64 = 1.5;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// `"encode"` or `"decode"`.
    pub bench: String,
    /// Tensor length in `f32` values.
    pub values: usize,
    /// Tensor size in bytes (`values * 4`).
    pub bytes: usize,
    /// Codec worker threads requested.
    pub threads: usize,
    /// Best-of-N wall time per operation, nanoseconds.
    pub ns_per_op: f64,
    /// Input throughput implied by `ns_per_op`.
    pub mib_per_s: f64,
}

/// A full measurement run, as written to `BENCH_pr8.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Hardware parallelism of the measuring host.
    pub host_cpus: usize,
    /// Nanoseconds for the fixed calibration workload on this host.
    pub calibration_ns: f64,
    /// Codec implementation tier the run used (`scalar`, `swar`,
    /// `simd`). Empty in reports predating tiered dispatch
    /// (`BENCH_pr3.json`), which measured the old scalar-only encoder.
    #[serde(default)]
    pub codec: String,
    /// One entry per (bench, size, threads) combination.
    pub results: Vec<BenchResult>,
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
pub(crate) fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// The fixed calibration workload: a strided sum over 1 Mi `f32`s.
/// Pure scalar arithmetic and sequential memory traffic — the same
/// resources the codec leans on — with no allocation in the timed loop.
pub(crate) fn calibrate(reps: usize) -> f64 {
    let data: Vec<f32> = (0..1 << 20).map(|i| (i % 251) as f32 * 0.5).collect();
    best_of(reps, || {
        let mut acc = 0.0f32;
        for &x in black_box(&data) {
            acc += x;
        }
        black_box(acc);
    })
}

fn gradient_like_tensor(n: usize, seed: u64) -> Tensor {
    let mut rng = threelc_tensor::rng(seed);
    Initializer::Normal {
        mean: 0.0,
        std_dev: 0.02,
    }
    .init(&mut rng, [n])
}

/// A context without error accumulation, so every timed iteration
/// compresses the same effective input.
fn context(input: &Tensor, threads: usize) -> ThreeLcCompressor {
    let options = ThreeLcOptions {
        sparsity: SparsityMultiplier::new(1.75).expect("in range"),
        zero_run_encoding: true,
        error_accumulation: false,
    };
    ThreeLcCompressor::with_options(input.shape().clone(), options).with_threads(threads)
}

/// Measures encode and decode over `sizes` × `threads`, best of `reps`.
pub fn measure(sizes: &[usize], threads: &[usize], reps: usize) -> BenchReport {
    let mut results = Vec::new();
    for &n in sizes {
        let input = gradient_like_tensor(n, 3);
        let mut serial = context(&input, 1);
        let wire = serial.compress(&input).expect("finite input");
        for &t in threads {
            let mut ctx = context(&input, t);
            ctx.compress(&input).expect("finite input"); // warm-up
            let ns = best_of(reps, || {
                black_box(ctx.compress(black_box(&input)).expect("finite input"));
            });
            results.push(result("encode", n, t, ns));

            let dctx = context(&input, t);
            dctx.decompress(&wire).expect("valid payload"); // warm-up
            let ns = best_of(reps, || {
                black_box(dctx.decompress(black_box(&wire)).expect("valid payload"));
            });
            results.push(result("decode", n, t, ns));
        }
    }
    BenchReport {
        host_cpus: threelc::parallel::available_threads(),
        calibration_ns: calibrate(reps),
        codec: threelc::kernels::active().name().to_string(),
        results,
    }
}

fn result(bench: &str, values: usize, threads: usize, ns_per_op: f64) -> BenchResult {
    BenchResult {
        bench: bench.to_string(),
        values,
        bytes: values * 4,
        threads,
        ns_per_op,
        mib_per_s: (values * 4) as f64 / (1 << 20) as f64 / (ns_per_op / 1e9),
    }
}

impl BenchReport {
    /// The entry for `(bench, values, threads)`, if measured.
    pub fn find(&self, bench: &str, values: usize, threads: usize) -> Option<&BenchResult> {
        self.results
            .iter()
            .find(|r| r.bench == bench && r.values == values && r.threads == threads)
    }

    /// Speedup of `threads` over the serial run of the same bench/size.
    pub fn speedup(&self, bench: &str, values: usize, threads: usize) -> Option<f64> {
        let serial = self.find(bench, values, 1)?;
        let parallel = self.find(bench, values, threads)?;
        (parallel.ns_per_op > 0.0).then(|| serial.ns_per_op / parallel.ns_per_op)
    }

    /// Human-readable summary table with speedup columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host_cpus {}  calibration {:.0} ns  codec {}",
            self.host_cpus,
            self.calibration_ns,
            if self.codec.is_empty() {
                "unrecorded"
            } else {
                &self.codec
            }
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8} {:>14} {:>12} {:>9}",
            "bench", "values", "threads", "ns/op", "MiB/s", "speedup"
        );
        for r in &self.results {
            let speedup = self
                .speedup(&r.bench, r.values, r.threads)
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>8} {:>14.0} {:>12.1} {:>9}",
                r.bench, r.values, r.threads, r.ns_per_op, r.mib_per_s, speedup
            );
        }
        out
    }
}

/// Compares `current` against `baseline`: every matched configuration
/// may be at most [`MAX_REGRESSION`] slower than the calibration-scaled
/// baseline, and on hosts with at least [`REQUIRED_SPEEDUP_CORES`] cores
/// the ≥1 MiB encode speedup at [`REQUIRED_SPEEDUP_THREADS`] threads
/// must reach [`REQUIRED_SPEEDUP`].
///
/// Configurations whose thread count exceeds the cores of *either* host
/// are skipped: timing threads that fight over too few cores is
/// scheduler lottery, not a property of the code, and a baseline
/// recorded oversubscribed says nothing about a wider host.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any check
/// fails, including the case of zero matched configurations.
pub fn gate(current: &BenchReport, baseline: &BenchReport) -> Result<String, String> {
    let mut violations = Vec::new();
    let scale = if current.calibration_ns > 0.0 && baseline.calibration_ns > 0.0 {
        current.calibration_ns / baseline.calibration_ns
    } else {
        1.0
    };
    let core_cap = current.host_cpus.min(baseline.host_cpus).max(1);
    let mut matched = 0usize;
    let mut oversubscribed = 0usize;
    for base in &baseline.results {
        let Some(cur) = current.find(&base.bench, base.values, base.threads) else {
            continue;
        };
        if base.threads > core_cap {
            oversubscribed += 1;
            continue;
        }
        matched += 1;
        let allowed = base.ns_per_op * scale * (1.0 + MAX_REGRESSION);
        if cur.ns_per_op > allowed {
            violations.push(format!(
                "{}/{}v/{}t regressed: {:.0} ns/op vs allowed {:.0} (baseline {:.0} × host scale {:.2} × {:.0}%)",
                base.bench,
                base.values,
                base.threads,
                cur.ns_per_op,
                allowed,
                base.ns_per_op,
                scale,
                (1.0 + MAX_REGRESSION) * 100.0
            ));
        }
    }
    if matched == 0 {
        violations.push("no benchmark configurations matched the baseline".to_string());
    }
    if current.host_cpus >= REQUIRED_SPEEDUP_CORES {
        for r in &current.results {
            if r.bench != "encode" || r.threads != 1 || r.bytes < SPEEDUP_MIN_BYTES {
                continue;
            }
            match current.speedup("encode", r.values, REQUIRED_SPEEDUP_THREADS) {
                Some(s) if s >= REQUIRED_SPEEDUP => {}
                Some(s) => violations.push(format!(
                    "encode/{}v speedup at {} threads is {s:.2}x, need >= {REQUIRED_SPEEDUP:.1}x",
                    r.values, REQUIRED_SPEEDUP_THREADS
                )),
                None => violations.push(format!(
                    "encode/{}v has no {}-thread measurement for the speedup criterion",
                    r.values, REQUIRED_SPEEDUP_THREADS
                )),
            }
        }
    }
    if violations.is_empty() {
        let skipped = if oversubscribed > 0 {
            format!(
                ", {oversubscribed} oversubscribed configuration(s) skipped (core cap {core_cap})"
            )
        } else {
            String::new()
        };
        Ok(format!(
            "bench gate passed: {matched} configuration(s) within {:.0}% of baseline (host scale {scale:.2}){skipped}{}",
            MAX_REGRESSION * 100.0,
            if current.host_cpus >= REQUIRED_SPEEDUP_CORES {
                format!(", speedup criterion enforced on {} cores", current.host_cpus)
            } else {
                format!(
                    ", speedup criterion skipped ({} < {REQUIRED_SPEEDUP_CORES} cores)",
                    current.host_cpus
                )
            }
        ))
    } else {
        Err(violations.join("\n"))
    }
}

/// The single-thread encode throughput bar: every 1-thread encode
/// configuration present in both reports must beat the
/// calibration-scaled `reference` figure by [`ENCODE_BAR_SPEEDUP`].
///
/// The reference is the checked-in pre-SWAR report (`BENCH_pr3.json`),
/// so this asserts the vectorized rewrite's speedup survives, scaled to
/// the measuring host. When `current` ran the scalar tier (forced via
/// `THREELC_CODEC_IMPL`, or on a host with no vectorized tier) the bar
/// is skipped: the scalar tier is the reference implementation and is
/// not expected to be 3x itself.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any matched
/// configuration misses the bar, or if no configuration matched.
pub fn encode_bar(current: &BenchReport, reference: &BenchReport) -> Result<String, String> {
    if current.codec == "scalar" {
        return Ok(format!(
            "encode bar skipped: current report ran the scalar reference tier \
             (bar requires a vectorized tier, {ENCODE_BAR_SPEEDUP:.1}x)"
        ));
    }
    let scale = if current.calibration_ns > 0.0 && reference.calibration_ns > 0.0 {
        current.calibration_ns / reference.calibration_ns
    } else {
        1.0
    };
    let mut violations = Vec::new();
    let mut matched = 0usize;
    for rf in &reference.results {
        if rf.bench != "encode" || rf.threads != 1 {
            continue;
        }
        let Some(cur) = current.find("encode", rf.values, 1) else {
            continue;
        };
        matched += 1;
        let allowed = rf.ns_per_op * scale / ENCODE_BAR_SPEEDUP;
        if cur.ns_per_op > allowed {
            violations.push(format!(
                "encode/{}v/1t is {:.0} ns/op ({:.2}x of reference), bar is {:.0} \
                 (reference {:.0} × host scale {:.2} / {ENCODE_BAR_SPEEDUP:.1})",
                rf.values,
                cur.ns_per_op,
                rf.ns_per_op * scale / cur.ns_per_op,
                allowed,
                rf.ns_per_op,
                scale
            ));
        }
    }
    if matched == 0 {
        violations.push("no single-thread encode configuration matched the reference".to_string());
    }
    if violations.is_empty() {
        Ok(format!(
            "encode bar passed: {matched} configuration(s) at >= {ENCODE_BAR_SPEEDUP:.1}x the \
             calibration-scaled reference ({} tier, host scale {scale:.2})",
            current.codec
        ))
    } else {
        Err(violations.join("\n"))
    }
}

/// Verifies the serial size floor removed negative thread scaling:
/// at [`SMALL_TENSOR_VALUES`] (below the floor) every multi-thread
/// encode timing must stay within [`SMALL_TENSOR_MAX_SLOWDOWN`] of the
/// serial timing, because no worker threads may spawn there at all.
/// Valid on any host, including single-core CI runners — that is where
/// the pre-floor negative scaling was worst.
///
/// # Errors
///
/// Returns the violations if a multi-thread configuration is slower
/// than the allowance, or if the report lacks the needed entries.
pub fn small_tensor_check(current: &BenchReport) -> Result<String, String> {
    let Some(serial) = current.find("encode", SMALL_TENSOR_VALUES, 1) else {
        return Err(format!(
            "report has no encode/{SMALL_TENSOR_VALUES}v/1t entry for the small-tensor check"
        ));
    };
    let mut violations = Vec::new();
    let mut matched = 0usize;
    for r in &current.results {
        if r.bench != "encode" || r.values != SMALL_TENSOR_VALUES || r.threads <= 1 {
            continue;
        }
        matched += 1;
        let allowed = serial.ns_per_op * SMALL_TENSOR_MAX_SLOWDOWN;
        if r.ns_per_op > allowed {
            violations.push(format!(
                "encode/{}v/{}t is {:.0} ns/op vs {:.0} serial — negative thread scaling \
                 below the serial floor (allowed {:.0})",
                r.values, r.threads, r.ns_per_op, serial.ns_per_op, allowed
            ));
        }
    }
    if matched == 0 {
        violations.push(format!(
            "report has no multi-thread encode/{SMALL_TENSOR_VALUES}v entries for the \
             small-tensor check"
        ));
    }
    if violations.is_empty() {
        Ok(format!(
            "small-tensor check passed: {matched} multi-thread configuration(s) at \
             {SMALL_TENSOR_VALUES} values track the serial timing"
        ))
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(
        host_cpus: usize,
        calibration_ns: f64,
        entries: &[(&str, usize, usize, f64)],
    ) -> BenchReport {
        BenchReport {
            host_cpus,
            calibration_ns,
            codec: "swar".to_string(),
            results: entries
                .iter()
                .map(|&(bench, values, threads, ns)| result(bench, values, threads, ns))
                .collect(),
        }
    }

    #[test]
    fn measure_produces_all_configurations() {
        let r = measure(&[4096], &[1, 2], 1);
        assert_eq!(r.results.len(), 4);
        assert!(r.host_cpus >= 1);
        assert!(r.calibration_ns > 0.0);
        for entry in &r.results {
            assert!(entry.ns_per_op > 0.0, "{entry:?}");
            assert!(entry.mib_per_s > 0.0, "{entry:?}");
            assert_eq!(entry.bytes, entry.values * 4);
        }
        assert!(r.speedup("encode", 4096, 2).is_some());
        assert!(r.render().contains("encode"));
    }

    #[test]
    fn gate_passes_identical_reports() {
        let base = report(1, 100.0, &[("encode", 1 << 18, 1, 5000.0)]);
        let msg = gate(&base.clone(), &base).expect("identical reports pass");
        assert!(msg.contains("1 configuration(s)"), "got: {msg}");
        assert!(msg.contains("skipped"), "1-core host skips speedup: {msg}");
    }

    #[test]
    fn gate_fails_on_regression_beyond_threshold() {
        let base = report(1, 100.0, &[("encode", 1 << 18, 1, 5000.0)]);
        let slow = report(1, 100.0, &[("encode", 1 << 18, 1, 6000.0)]);
        let err = gate(&slow, &base).expect_err("20% regression must fail");
        assert!(err.contains("regressed"), "got: {err}");
        // 15% slower is within the threshold.
        let ok = report(1, 100.0, &[("encode", 1 << 18, 1, 5700.0)]);
        gate(&ok, &base).expect("14% regression passes");
    }

    #[test]
    fn gate_scales_baseline_by_calibration() {
        // The current host is 2x slower overall (calibration 200 vs 100),
        // so 2x-slower benches are not a regression. Both hosts report
        // 2 cores so the 2-thread config is not skipped as oversubscribed.
        let base = report(2, 100.0, &[("decode", 1 << 18, 2, 5000.0)]);
        let cur = report(2, 200.0, &[("decode", 1 << 18, 2, 10000.0)]);
        gate(&cur, &base).expect("calibration-scaled comparison passes");
        let too_slow = report(2, 200.0, &[("decode", 1 << 18, 2, 12000.0)]);
        gate(&too_slow, &base).expect_err("slower than the scaled allowance");
    }

    #[test]
    fn gate_skips_oversubscribed_configurations() {
        // A 4-thread config on a 1-core host times the scheduler, not the
        // codec: even a huge "regression" there must not fail the gate.
        let base = report(
            1,
            100.0,
            &[
                ("encode", 1 << 18, 1, 5000.0),
                ("encode", 1 << 18, 4, 5000.0),
            ],
        );
        let cur = report(
            1,
            100.0,
            &[
                ("encode", 1 << 18, 1, 5000.0),
                ("encode", 1 << 18, 4, 50000.0), // 10x slower, but oversubscribed
            ],
        );
        let msg = gate(&cur, &base).expect("oversubscribed config is skipped");
        assert!(msg.contains("1 configuration(s)"), "got: {msg}");
        assert!(msg.contains("oversubscribed"), "got: {msg}");
        // The same numbers with enough cores on both hosts DO fail.
        let base4 = report(
            4,
            100.0,
            &[
                ("encode", 1 << 18, 1, 5000.0),
                ("encode", 1 << 18, 4, 5000.0),
            ],
        );
        let cur4 = report(
            4,
            100.0,
            &[
                ("encode", 1 << 18, 1, 5000.0),
                ("encode", 1 << 18, 4, 50000.0),
            ],
        );
        let err = gate(&cur4, &base4).expect_err("real regression on 4 cores fails");
        assert!(err.contains("regressed"), "got: {err}");
    }

    #[test]
    fn gate_fails_when_nothing_matches() {
        let base = report(1, 100.0, &[("encode", 1 << 18, 1, 5000.0)]);
        let other = report(1, 100.0, &[("encode", 1 << 20, 1, 5000.0)]);
        let err = gate(&other, &base).expect_err("disjoint configs must fail");
        assert!(err.contains("no benchmark configurations"), "got: {err}");
    }

    #[test]
    fn gate_enforces_speedup_only_on_multicore_hosts() {
        // 1 << 20 values = 4 MiB: at SPEEDUP_MIN_BYTES, so the criterion
        // applies. Sizes below it (e.g. 1 MiB) are exempt since the
        // vectorized rewrite made small-tensor chunking unprofitable.
        let entries = [
            ("encode", 1 << 20, 1, 10000.0),
            ("encode", 1 << 20, 4, 9000.0), // 1.11x: below the 2x bar
        ];
        let base = report(4, 100.0, &entries);
        // Same numbers on a 1-core host: criterion skipped, gate passes.
        gate(&report(1, 100.0, &entries), &base).expect("1-core host skips the speedup bar");
        // On a 4-core host the weak speedup fails.
        let err = gate(&report(4, 100.0, &entries), &base).expect_err("4-core host enforces");
        assert!(err.contains("speedup"), "got: {err}");
        // A healthy speedup passes.
        let good = [
            ("encode", 1 << 20, 1, 10000.0),
            ("encode", 1 << 20, 4, 4000.0), // 2.5x
        ];
        gate(&report(4, 100.0, &good), &base).expect("2.5x speedup passes");
        // The smaller exempt size does not trigger the criterion.
        let small = [
            ("encode", 1 << 18, 1, 10000.0),
            ("encode", 1 << 18, 4, 9000.0),
        ];
        let base_small = report(4, 100.0, &small);
        gate(&report(4, 100.0, &small), &base_small).expect("sub-4MiB sizes are exempt");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report(4, 123.0, &[("encode", 64, 1, 10.0), ("decode", 64, 1, 5.0)]);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        // Reports predating the codec field (BENCH_pr3.json) still parse.
        let old: BenchReport =
            serde_json::from_str(r#"{"host_cpus":1,"calibration_ns":5.0,"results":[]}"#).unwrap();
        assert_eq!(old.codec, "");
    }

    #[test]
    fn encode_bar_enforces_3x_over_the_scaled_reference() {
        let reference = report(1, 100.0, &[("encode", 1 << 18, 1, 9000.0)]);
        // 3.0x exactly: passes.
        let fast = report(1, 100.0, &[("encode", 1 << 18, 1, 3000.0)]);
        let msg = encode_bar(&fast, &reference).expect("3x passes");
        assert!(msg.contains("passed"), "got: {msg}");
        // 2.5x: fails.
        let slow = report(1, 100.0, &[("encode", 1 << 18, 1, 3600.0)]);
        let err = encode_bar(&slow, &reference).expect_err("2.5x misses the bar");
        assert!(err.contains("bar is"), "got: {err}");
        // The bar scales with host calibration: the same 3600 ns/op on a
        // host measuring 2x slower overall corresponds to 5x.
        let slower_host = report(1, 200.0, &[("encode", 1 << 18, 1, 3600.0)]);
        encode_bar(&slower_host, &reference).expect("calibration-scaled bar passes");
    }

    #[test]
    fn encode_bar_skips_the_scalar_tier_and_fails_on_no_match() {
        let reference = report(1, 100.0, &[("encode", 1 << 18, 1, 9000.0)]);
        let mut scalar = report(1, 100.0, &[("encode", 1 << 18, 1, 9000.0)]);
        scalar.codec = "scalar".to_string();
        let msg = encode_bar(&scalar, &reference).expect("scalar tier is exempt");
        assert!(msg.contains("skipped"), "got: {msg}");
        // Disjoint configurations must fail loudly, not silently pass.
        let disjoint = report(1, 100.0, &[("encode", 1 << 20, 1, 10.0)]);
        let err = encode_bar(&disjoint, &reference).expect_err("no match fails");
        assert!(err.contains("no single-thread encode"), "got: {err}");
    }

    #[test]
    fn small_tensor_check_catches_negative_thread_scaling() {
        let n = SMALL_TENSOR_VALUES;
        // Multi-thread timings tracking serial: passes (the floor keeps
        // these configurations serial, so they are the same code path).
        let good = report(
            1,
            100.0,
            &[
                ("encode", n, 1, 1000.0),
                ("encode", n, 2, 1010.0),
                ("encode", n, 4, 990.0),
            ],
        );
        let msg = small_tensor_check(&good).expect("flat scaling passes");
        assert!(msg.contains("passed"), "got: {msg}");
        // 2x slower at 4 threads — the pre-floor pathology — fails.
        let bad = report(
            1,
            100.0,
            &[("encode", n, 1, 1000.0), ("encode", n, 4, 2000.0)],
        );
        let err = small_tensor_check(&bad).expect_err("negative scaling fails");
        assert!(err.contains("negative thread scaling"), "got: {err}");
        // Missing entries fail loudly instead of vacuously passing.
        let empty = report(1, 100.0, &[("encode", n, 1, 1000.0)]);
        assert!(small_tensor_check(&empty).is_err());
        let no_serial = report(1, 100.0, &[("encode", n, 4, 1000.0)]);
        assert!(small_tensor_check(&no_serial).is_err());
    }
}
