//! Server aggregate-phase measurement and its CI gate.
//!
//! The compressed-domain aggregation rewrite claims the server spends
//! less time turning accepted pushes into a mean gradient: the `exact`
//! path accumulates worker-order float sums straight from decoded
//! symbols (no per-worker tensor allocation, no separate dequantize
//! pass), and the `compressed` path defers the float multiply to one
//! pass per scale group. [`measure`] prices all three modes on the same
//! 4-worker workload and the gate holds the rewrite to its claim:
//! `exact` must beat the f32 path's aggregate phase, both within the
//! fresh report (same host, same process) and against the
//! calibration-scaled baseline.
//!
//! The aggregate phase is read from the engine's own telemetry
//! (`engine.aggregate.symbol_decode_seconds` +
//! `engine.aggregate.accumulate_seconds` histogram deltas around the
//! timed loop) rather than re-instrumented here, so the bench measures
//! exactly what `threelc analyze` attributes. Histogram sums are CPU
//! seconds summed across shards, so multi-thread samples report
//! aggregate CPU cost, not wall time; the gate therefore only judges
//! the serial (`threads = 1`) samples, where the two coincide.

use crate::perf::calibrate;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;
use threelc_baselines::SchemeKind;
use threelc_distsim::engine::{Problem, ServerCore, WorkerReplica};
use threelc_distsim::{AggregateMode, ExperimentConfig};

/// Workers in the bench workload (the ISSUE's 4-worker reference shape).
pub const WORKERS: usize = 4;
/// Model width of the bench workload: large enough that every block
/// tensor clears the compression threshold and the aggregate phase does
/// real work per step.
pub const WIDTH: usize = 256;
/// Residual blocks in the bench model.
pub const BLOCKS: usize = 2;
/// Thread counts measured. Only the serial samples are gated (see the
/// module docs); the 4-thread samples are recorded for the sharded
/// aggregate-CPU picture.
pub const THREADS: [usize; 2] = [1, 4];
/// `apply_step` calls folded into one timed sample.
const STEP_BATCH: usize = 8;
/// Allowed fractional regression of a mode's aggregate phase against
/// the calibration-scaled baseline. As loose as the policy gate's
/// decide threshold: the measured quantity is microseconds per step,
/// where scheduler noise is proportionally large.
pub const MAX_REGRESSION: f64 = 0.5;

/// One (mode, threads) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeSample {
    /// Aggregation mode name (`f32`, `exact`, `compressed`).
    pub mode: String,
    /// Server shard budget for this sample.
    pub threads: usize,
    /// Best-of-N wall nanoseconds for one full `apply_step`.
    pub step_ns: f64,
    /// Best-of-N per-step CPU nanoseconds decoding payloads to symbols
    /// (or to floats, on the f32 path — recorded under the same
    /// histogram for comparability).
    pub symbol_decode_ns: f64,
    /// Best-of-N per-step CPU nanoseconds accumulating the decoded
    /// pushes into the mean gradient.
    pub accumulate_ns: f64,
    /// `symbol_decode_ns + accumulate_ns` — the gated aggregate phase.
    pub aggregate_ns: f64,
}

/// An aggregate-phase measurement run, as written to `BENCH_pr10.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateBenchReport {
    /// Hardware parallelism of the measuring host.
    pub host_cpus: usize,
    /// Nanoseconds for the fixed calibration workload on this host.
    pub calibration_ns: f64,
    /// Workers in the measured workload.
    pub workers: usize,
    /// Model width of the measured workload.
    pub width: usize,
    /// Residual blocks of the measured workload.
    pub blocks: usize,
    /// One sample per mode × thread count.
    pub samples: Vec<ModeSample>,
}

fn bench_config(mode: AggregateMode, width: usize, blocks: usize) -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.0),
        workers: WORKERS,
        batch_per_worker: 8,
        total_steps: u64::MAX, // stepped manually; never reached
        model_width: width,
        model_blocks: blocks,
        eval_every: 0,
        seed: 11,
        aggregate: mode,
        ..Default::default()
    }
}

/// Prices one (mode, threads) cell: builds the problem, has each worker
/// encode one realistic push, then times `apply_step` replaying those
/// payloads. Decode purity makes the replay legitimate — the server
/// does identical aggregate-phase work every call; only its model and
/// schedule advance.
fn measure_mode(
    mode: AggregateMode,
    threads: usize,
    reps: usize,
    w: usize,
    b: usize,
) -> ModeSample {
    let config = bench_config(mode, w, b);
    let problem = Problem::build(&config);
    let mut server = ServerCore::new(&problem);
    server.set_threads(threads);

    let mut payloads = Vec::with_capacity(config.workers);
    let mut residual_l2 = 0.0f64;
    for w in 0..config.workers {
        let mut replica = WorkerReplica::new(&problem, w);
        let (_, grads) = replica.compute(&problem.data, config.batch_per_worker);
        payloads.push(replica.encode_push(grads).payloads);
        residual_l2 += replica.residual_l2();
    }

    let reg = threelc_obs::global();
    let decode_h = reg.histogram("engine.aggregate.symbol_decode_seconds");
    let accumulate_h = reg.histogram("engine.aggregate.accumulate_seconds");
    server
        .apply_step(&payloads, config.workers, residual_l2)
        .expect("bench payloads are all accepted"); // warm-up
    let (mut step_ns, mut decode_ns, mut acc_ns) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let d0 = decode_h.snapshot().sum;
        let a0 = accumulate_h.snapshot().sum;
        let t0 = Instant::now();
        for _ in 0..STEP_BATCH {
            black_box(
                server
                    .apply_step(black_box(&payloads), config.workers, residual_l2)
                    .expect("bench payloads are all accepted"),
            );
        }
        let wall = t0.elapsed().as_secs_f64();
        let per = 1e9 / STEP_BATCH as f64;
        step_ns = step_ns.min(wall * per);
        decode_ns = decode_ns.min((decode_h.snapshot().sum - d0) * per);
        acc_ns = acc_ns.min((accumulate_h.snapshot().sum - a0) * per);
    }
    ModeSample {
        mode: mode.name().to_string(),
        threads,
        step_ns,
        symbol_decode_ns: decode_ns,
        accumulate_ns: acc_ns,
        aggregate_ns: decode_ns + acc_ns,
    }
}

fn measure_sized(reps: usize, width: usize, blocks: usize) -> AggregateBenchReport {
    let mut samples = Vec::new();
    for mode in [
        AggregateMode::F32,
        AggregateMode::Exact,
        AggregateMode::Compressed,
    ] {
        for threads in THREADS {
            samples.push(measure_mode(mode, threads, reps, width, blocks));
        }
    }
    AggregateBenchReport {
        host_cpus: threelc::parallel::available_threads(),
        calibration_ns: calibrate(reps),
        workers: WORKERS,
        width,
        blocks,
        samples,
    }
}

/// Measures every mode × thread-count cell, best of `reps`.
pub fn measure(reps: usize) -> AggregateBenchReport {
    measure_sized(reps, WIDTH, BLOCKS)
}

impl AggregateBenchReport {
    /// The sample for `mode` at `threads`, if measured.
    pub fn sample(&self, mode: &str, threads: usize) -> Option<&ModeSample> {
        self.samples
            .iter()
            .find(|s| s.mode == mode && s.threads == threads)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host_cpus {}  calibration {:.0} ns  workload {} workers × width {} × {} blocks",
            self.host_cpus, self.calibration_ns, self.workers, self.width, self.blocks
        );
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>14} {:>14} {:>14} {:>14}",
            "mode", "threads", "step ns", "decode ns", "accumulate ns", "aggregate ns"
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
                s.mode, s.threads, s.step_ns, s.symbol_decode_ns, s.accumulate_ns, s.aggregate_ns
            );
        }
        if let (Some(f32s), Some(exact)) = (self.sample("f32", 1), self.sample("exact", 1)) {
            let _ = writeln!(
                out,
                "exact aggregate speedup over f32 (serial): {:.2}×",
                f32s.aggregate_ns / exact.aggregate_ns
            );
        }
        out
    }
}

/// Compares `current` against `baseline`: the `exact` aggregate phase
/// must beat the f32 path both within the fresh report and against the
/// calibration-scaled baseline, and no mode's serial aggregate phase
/// may regress more than [`MAX_REGRESSION`] past its scaled baseline.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any check
/// fails.
pub fn gate(
    current: &AggregateBenchReport,
    baseline: &AggregateBenchReport,
) -> Result<String, String> {
    let mut violations = Vec::new();
    if (current.workers, current.width, current.blocks)
        != (baseline.workers, baseline.width, baseline.blocks)
    {
        return Err(format!(
            "workloads differ: current {}w×{}×{}b, baseline {}w×{}×{}b",
            current.workers,
            current.width,
            current.blocks,
            baseline.workers,
            baseline.width,
            baseline.blocks
        ));
    }
    let scale = if current.calibration_ns > 0.0 && baseline.calibration_ns > 0.0 {
        current.calibration_ns / baseline.calibration_ns
    } else {
        1.0
    };
    let need = |report: &AggregateBenchReport, mode: &str| {
        report.sample(mode, 1).cloned().ok_or_else(|| {
            format!("report is missing the serial `{mode}` sample; re-run bench_aggregate")
        })
    };
    let (f32_now, exact_now) = match (need(current, "f32"), need(current, "exact")) {
        (Ok(f), Ok(e)) => (f, e),
        (Err(e), _) | (_, Err(e)) => return Err(e),
    };
    if exact_now.aggregate_ns <= 0.0 || exact_now.aggregate_ns >= f32_now.aggregate_ns {
        violations.push(format!(
            "exact aggregate phase does not beat f32 on this host: {:.0} ns vs {:.0} ns per step",
            exact_now.aggregate_ns, f32_now.aggregate_ns
        ));
    }
    match need(baseline, "f32") {
        Ok(f32_base) => {
            let bar = f32_base.aggregate_ns * scale;
            if exact_now.aggregate_ns >= bar {
                violations.push(format!(
                    "exact aggregate phase lost to the calibration-scaled f32 baseline: \
                     {:.0} ns vs {:.0} (baseline {:.0} × host scale {:.2})",
                    exact_now.aggregate_ns, bar, f32_base.aggregate_ns, scale
                ));
            }
        }
        Err(e) => violations.push(e),
    }
    for mode in ["f32", "exact", "compressed"] {
        let (Some(now), Some(base)) = (current.sample(mode, 1), baseline.sample(mode, 1)) else {
            continue; // missing-sample errors are reported above for the gated modes
        };
        let allowed = base.aggregate_ns * scale * (1.0 + MAX_REGRESSION);
        if now.aggregate_ns > allowed {
            violations.push(format!(
                "{mode} aggregate phase regressed: {:.0} ns/step vs allowed {:.0} \
                 (baseline {:.0} × host scale {:.2} × {:.0}%)",
                now.aggregate_ns,
                allowed,
                base.aggregate_ns,
                scale,
                (1.0 + MAX_REGRESSION) * 100.0
            ));
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "aggregate bench gate passed: exact {:.0} ns/step beats f32 {:.0} ns/step ({:.2}×)",
            exact_now.aggregate_ns,
            f32_now.aggregate_ns,
            f32_now.aggregate_ns / exact_now.aggregate_ns
        ))
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mode: &str, threads: usize, aggregate_ns: f64) -> ModeSample {
        ModeSample {
            mode: mode.into(),
            threads,
            step_ns: aggregate_ns * 3.0,
            symbol_decode_ns: aggregate_ns * 0.6,
            accumulate_ns: aggregate_ns * 0.4,
            aggregate_ns,
        }
    }

    fn report(f32_ns: f64, exact_ns: f64, compressed_ns: f64) -> AggregateBenchReport {
        AggregateBenchReport {
            host_cpus: 4,
            calibration_ns: 1000.0,
            workers: WORKERS,
            width: WIDTH,
            blocks: BLOCKS,
            samples: vec![
                sample("f32", 1, f32_ns),
                sample("exact", 1, exact_ns),
                sample("compressed", 1, compressed_ns),
            ],
        }
    }

    #[test]
    fn gate_accepts_exact_beating_f32() {
        let r = report(1000.0, 600.0, 400.0);
        let summary = gate(&r, &r).expect("identical reports pass");
        assert!(summary.contains("passed"), "{summary}");
        assert!(summary.contains("1.67×"), "{summary}");
    }

    #[test]
    fn gate_rejects_exact_losing_to_f32() {
        let bad = report(1000.0, 1200.0, 400.0);
        let err = gate(&bad, &report(1000.0, 600.0, 400.0)).unwrap_err();
        assert!(err.contains("does not beat f32"), "{err}");
    }

    #[test]
    fn gate_rejects_losing_to_the_scaled_f32_baseline() {
        // A faster host (calibration 500 vs 1000) halves the baseline
        // bar: exact at 700 ns beats the local f32 (1500) but not the
        // scaled baseline f32 (1000 × 0.5 = 500).
        let mut current = report(1500.0, 700.0, 400.0);
        current.calibration_ns = 500.0;
        let err = gate(&current, &report(1000.0, 600.0, 400.0)).unwrap_err();
        assert!(err.contains("calibration-scaled f32 baseline"), "{err}");
    }

    #[test]
    fn gate_rejects_an_aggregate_regression() {
        let slow = report(5000.0, 2000.0, 400.0);
        let err = gate(&slow, &report(1000.0, 600.0, 400.0)).unwrap_err();
        assert!(err.contains("exact aggregate phase regressed"), "{err}");
        assert!(err.contains("f32 aggregate phase regressed"), "{err}");
    }

    #[test]
    fn gate_rejects_mismatched_workloads() {
        let mut other = report(1000.0, 600.0, 400.0);
        other.width = 64;
        let err = gate(&report(1000.0, 600.0, 400.0), &other).unwrap_err();
        assert!(err.contains("workloads differ"), "{err}");
    }

    #[test]
    fn measurement_holds_together_on_a_tiny_workload() {
        // One rep on a toy model keeps this cheap in a debug build; the
        // point is that the payload replay and histogram-delta plumbing
        // work, not the release-build speedup (ci.sh gates that).
        let r = measure_sized(1, 32, 1);
        assert_eq!(r.samples.len(), 6);
        for s in &r.samples {
            assert!(s.step_ns > 0.0, "{s:?}");
            assert!(s.aggregate_ns > 0.0, "{s:?}");
            assert!(
                (s.aggregate_ns - (s.symbol_decode_ns + s.accumulate_ns)).abs() < 1e-6,
                "{s:?}"
            );
        }
        let rendered = r.render();
        assert!(rendered.contains("aggregate ns"), "{rendered}");
        let json = serde_json::to_string(&r).unwrap();
        let back: AggregateBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
